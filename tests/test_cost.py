"""Unit tests for the Eq (1) cost model, ranks, and order search."""

import pytest

from repro.optimizer.cost import (
    best_order_exhaustive,
    cost_of_order,
    greedy_rank_order,
    greedy_rank_suffix,
    rank,
)
from repro.query.joingraph import JoinGraph, JoinPredicate


class DictProvider:
    """Test double: fixed (JC, PC) per alias; driving (CLEG, scan PC)."""

    def __init__(self, driving, inner):
        self.driving = driving
        self.inner = inner

    def driving_params(self, alias):
        return self.driving[alias]

    def inner_params(self, alias, bound):
        return self.inner[alias]


def star_graph():
    return JoinGraph(
        ["a", "b", "c"],
        [JoinPredicate("a", "k", "b", "k"), JoinPredicate("a", "k", "c", "k")],
    )


class TestRank:
    def test_formula(self):
        assert rank(3.0, 2.0) == pytest.approx(1.0)

    def test_negative_for_selective_joins(self):
        assert rank(0.5, 1.0) < 0

    def test_zero_pc_guarded(self):
        assert rank(2.0, 0.0) > 0  # no division error


class TestCostOfOrder:
    def test_empty_order(self):
        assert cost_of_order([], DictProvider({}, {})) == 0.0

    def test_single_leg_is_scan_cost(self):
        provider = DictProvider({"a": (10.0, 7.0)}, {})
        assert cost_of_order(["a"], provider) == 7.0

    def test_eq1_accumulates_flow(self):
        provider = DictProvider(
            {"a": (10.0, 5.0)},
            {"b": (2.0, 3.0), "c": (1.0, 4.0)},
        )
        # 5 + 10*3 + (10*2)*4 = 115
        assert cost_of_order(["a", "b", "c"], provider) == pytest.approx(115.0)

    def test_paper_figure1_numbers(self):
        """Fig 1 / Sec 3.2: plan (a) costs 251p, plan (b) costs 176p."""

        class Fig1Provider:
            def driving_params(self, alias):
                return {"T1": 50.0, "T2": 50.0}[alias], 1.0

            def inner_params(self, alias, bound):
                jc = {
                    ("T2", frozenset({"T1"})): 2.0,
                    ("T3", frozenset({"T1", "T2"})): 1.0,
                    ("T4", frozenset({"T1", "T2", "T3"})): 1.5,
                    ("T1", frozenset({"T2"})): 1.0,
                    ("T4", frozenset({"T1", "T2"})): 1.5,
                    ("T3", frozenset({"T1", "T2", "T4"})): 2.0,
                }[(alias, bound)]
                return jc, 1.0

        provider = Fig1Provider()
        assert cost_of_order(("T1", "T2", "T3", "T4"), provider) == 251.0
        assert cost_of_order(("T2", "T1", "T4", "T3"), provider) == 176.0


class TestGreedyRank:
    def test_orders_by_ascending_rank(self):
        provider = DictProvider(
            {"a": (10.0, 1.0)},
            {"b": (2.0, 1.0), "c": (0.5, 1.0)},  # rank(b)=1, rank(c)=-0.5
        )
        order = greedy_rank_order("a", ["b", "c"], star_graph(), provider)
        assert order == ("a", "c", "b")

    def test_respects_connectivity(self):
        # chain a-b-c: c cannot precede b even with a better rank.
        graph = JoinGraph(
            ["a", "b", "c"],
            [JoinPredicate("a", "k", "b", "k"), JoinPredicate("b", "j", "c", "j")],
        )
        provider = DictProvider(
            {"a": (10.0, 1.0)},
            {"b": (5.0, 1.0), "c": (0.1, 1.0)},
        )
        order = greedy_rank_order("a", ["b", "c"], graph, provider)
        assert order == ("a", "b", "c")

    def test_suffix_keeps_prefix(self):
        provider = DictProvider({}, {"b": (2.0, 1.0), "c": (0.5, 1.0)})
        order = greedy_rank_suffix(("a", "b"), ["c"], star_graph(), provider)
        assert order == ("a", "b", "c")


class TestExhaustive:
    def test_finds_optimum(self):
        provider = DictProvider(
            {"a": (100.0, 1.0), "b": (10.0, 1.0), "c": (1000.0, 1.0)},
            {"a": (1.0, 1.0), "b": (1.0, 1.0), "c": (1.0, 1.0)},
        )
        order, cost = best_order_exhaustive(["a", "b", "c"], star_graph(), provider)
        # b has the smallest leg cardinality... but b cannot drive a
        # connected order (b only joins a). The best connected order is
        # evaluated by cost; verify against brute force below.
        candidates = {
            o: cost_of_order(o, provider)
            for o in star_graph().connected_orders()
        }
        assert cost == min(candidates.values())
        assert candidates[order] == cost

    def test_fixed_prefix(self):
        provider = DictProvider(
            {"a": (10.0, 1.0)},
            {"b": (2.0, 1.0), "c": (0.5, 1.0)},
        )
        order, _ = best_order_exhaustive(
            ["a", "b", "c"], star_graph(), provider, fixed_prefix=("a", "b")
        )
        assert order[:2] == ("a", "b")

    def test_agrees_with_rank_order_under_asi(self):
        """With position-independent params, rank order == optimum (ASI)."""
        provider = DictProvider(
            {"a": (20.0, 2.0)},
            {"b": (1.5, 3.0), "c": (0.2, 8.0), "d": (0.9, 1.0)},
        )
        graph = JoinGraph(
            ["a", "b", "c", "d"],
            [
                JoinPredicate("a", "k", "b", "k"),
                JoinPredicate("a", "k", "c", "k"),
                JoinPredicate("a", "k", "d", "k"),
            ],
        )
        ranked = greedy_rank_order("a", ["b", "c", "d"], graph, provider)
        best, best_cost = best_order_exhaustive(
            ["a", "b", "c", "d"], graph, provider, fixed_prefix=("a",)
        )
        assert cost_of_order(ranked, provider) == pytest.approx(best_cost)
