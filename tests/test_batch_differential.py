"""Differential property tests: the batched path is observably identical.

The batched executor (driving-leg chunks, merged-descent ``probe_batch``,
optional probe cache, and the mode-NONE turbo path) must be a pure
performance change. Sweeping batch sizes x cache settings x every
ReorderMode against the scalar executor, these tests pin down the contract:

* identical result multiset, always;
* identical adaptation event sequence and order history, always;
* identical WorkMeter totals with the cache off;
* with the cache on: identical monitor/reorder/emit counts and execution
  work no greater than scalar (cache hits may only *save* work).
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro import AdaptiveConfig, ReorderMode
from repro.dmv import four_table_workload, load_dmv, six_table_workload

BATCH_SIZES = (1, 7, 256)
CACHE_SIZES = (0, 512)

#: WorkMeter fields that must match scalar exactly when no cache is armed.
EXACT_METER_FIELDS = (
    "index_descends",
    "index_entries",
    "row_fetches",
    "predicate_evals",
    "rows_emitted",
    "monitor_updates",
    "reorder_checks",
)

#: Fields that must match scalar even when cache hits skip physical work.
CACHED_EXACT_FIELDS = ("monitor_updates", "reorder_checks", "rows_emitted")


@pytest.fixture(scope="module")
def dmv():
    db, _ = load_dmv(scale=0.02, extended=True)
    return db


@pytest.fixture(scope="module")
def workload():
    return six_table_workload(count=2) + four_table_workload(
        queries_per_template=1
    )


@pytest.mark.parametrize("mode", list(ReorderMode), ids=lambda m: m.name.lower())
def test_batched_matches_scalar(dmv, workload, mode):
    for query in workload:
        scalar = dmv.execute(query.sql, AdaptiveConfig(mode=mode))
        scalar_rows = sorted(scalar.rows)
        scalar_meter = asdict(scalar.stats.work)
        for batch_size in BATCH_SIZES:
            for cache_size in CACHE_SIZES:
                config = AdaptiveConfig(
                    mode=mode,
                    batched=True,
                    batch_size=batch_size,
                    probe_cache_size=cache_size,
                )
                batched = dmv.execute(query.sql, config)
                tag = f"{query.qid} bs={batch_size} cache={cache_size}"
                assert sorted(batched.rows) == scalar_rows, tag
                assert (
                    batched.stats.events == scalar.stats.events
                ), f"adaptation events diverged: {tag}"
                assert (
                    batched.stats.order_history == scalar.stats.order_history
                ), f"order history diverged: {tag}"
                meter = asdict(batched.stats.work)
                if cache_size == 0:
                    for field in EXACT_METER_FIELDS:
                        assert meter[field] == scalar_meter[field], (
                            f"meter.{field} diverged: {tag}"
                        )
                else:
                    for field in CACHED_EXACT_FIELDS:
                        assert meter[field] == scalar_meter[field], (
                            f"meter.{field} diverged: {tag}"
                        )
                    assert (
                        batched.stats.work.execution_units
                        <= scalar.stats.work.execution_units
                    ), f"cache increased execution work: {tag}"


def test_probe_cache_actually_hits(dmv, workload):
    """The cached sweep above is vacuous unless hits really occur."""
    config = AdaptiveConfig(
        mode=ReorderMode.NONE,
        batched=True,
        batch_size=256,
        probe_cache_size=512,
    )
    total_hits = 0
    for query in workload:
        outcome = dmv.execute(query.sql, config)
        total_hits += outcome.stats.work.probe_cache_hits
    assert total_hits > 0


def test_cache_savings_are_documented_in_meter(dmv, workload):
    """Execution units saved must be attributable to counted cache hits."""
    query = workload[0]
    scalar = dmv.execute(query.sql, AdaptiveConfig(mode=ReorderMode.NONE))
    cached = dmv.execute(
        query.sql,
        AdaptiveConfig(
            mode=ReorderMode.NONE,
            batched=True,
            probe_cache_size=512,
        ),
    )
    saved = (
        scalar.stats.work.execution_units - cached.stats.work.execution_units
    )
    if saved > 0:
        assert cached.stats.work.probe_cache_hits > 0
