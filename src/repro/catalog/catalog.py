"""The catalog: tables, indexes, and statistics under one roof.

All tables registered in one :class:`Catalog` share a single
:class:`~repro.storage.counters.WorkMeter`, so a query's total work is read
from one place regardless of how many tables it touched.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.catalog.statistics import (
    StatisticsLevel,
    TableStats,
    collect_table_stats,
)
from repro.errors import CatalogError
from repro.storage.backend import StorageBackend, get_backend
from repro.storage.counters import WorkMeter
from repro.storage.index import SortedIndex
from repro.storage.schema import Column, TableSchema
from repro.storage.table import HeapTable


class Catalog:
    """Registry of tables, their indexes, and their statistics."""

    def __init__(
        self,
        meter: WorkMeter | None = None,
        backend: str | StorageBackend = "row",
    ) -> None:
        self.meter = meter if meter is not None else WorkMeter()
        self.backend = get_backend(backend)
        self._tables: dict[str, HeapTable] = {}
        self._indexes: dict[str, dict[str, SortedIndex]] = {}
        self._stats: dict[str, TableStats] = {}
        # Active fault injector (chaos testing), shared with every table.
        self.faults = None

    # -- definition ------------------------------------------------------
    def create_table(self, name: str, columns: Sequence[Column]) -> HeapTable:
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        table = self.backend.make_table(TableSchema(name, columns), self.meter)
        self._tables[name] = table
        self._indexes[name] = {}
        return table

    def create_index(self, table_name: str, column: str) -> SortedIndex:
        """Create (or return the existing) single-column index."""
        table = self.table(table_name)
        per_table = self._indexes[table_name]
        if column in per_table:
            return per_table[column]
        index = self.backend.make_index(
            f"ix_{table_name}_{column}", table, column
        )
        per_table[column] = index
        return index

    # -- lookup ----------------------------------------------------------
    def table(self, name: str) -> HeapTable:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def indexes_of(self, table_name: str) -> dict[str, SortedIndex]:
        self.table(table_name)
        return dict(self._indexes[table_name])

    def index_on(self, table_name: str, column: str) -> SortedIndex | None:
        self.table(table_name)
        return self._indexes[table_name].get(column)

    # -- data + statistics -------------------------------------------------
    def insert_many(self, table_name: str, rows: Iterable[Sequence]) -> int:
        """Bulk-insert rows and refresh the table's indexes."""
        table = self.table(table_name)
        count = table.insert_many(rows)
        for index in self._indexes[table_name].values():
            index.refresh()
        return count

    def analyze(
        self,
        table_name: str | None = None,
        level: StatisticsLevel = StatisticsLevel.BASIC,
    ) -> None:
        """Collect statistics for one table (or all tables) at *level*."""
        names = [table_name] if table_name is not None else list(self._tables)
        for name in names:
            self._stats[name] = collect_table_stats(self.table(name), level)

    def stats(self, table_name: str) -> TableStats | None:
        """Statistics for *table_name*, or ``None`` if never analyzed."""
        self.table(table_name)
        return self._stats.get(table_name)

    # -- fault injection (chaos testing) ----------------------------------
    def install_faults(self, injector) -> None:
        """Arm *injector* on the catalog and every registered table.

        Storage operations (index lookups, cursor advances, hash probes)
        and the adaptation controller consult the injector at their trigger
        points; passing ``None`` disarms. Callers should disarm in a
        ``finally`` so one chaotic execution cannot leak into the next.
        """
        self.faults = injector
        for table in self._tables.values():
            table.faults = injector

    def clear_faults(self) -> None:
        self.install_faults(None)
