"""Differential tests: the columnar backend is observably the row store.

The storage backend is an implementation detail below the executor's
semantics: for every reorder mode, batch setting, worker count, and
probe-cache setting, the columnar backend must produce

* identical result rows **in identical order**,
* an identical final :class:`~repro.storage.counters.WorkMeter` (the
  deterministic work-unit accounting the paper's comparisons rest on),
* identical :class:`~repro.core.events.AdaptationEvent` sequences (same
  decisions at the same driving-row positions),

as the row backend running the same queries. This pins the tentpole
contract that columnar execution — typed columns, compiled predicates,
kernel-vectorized probes, and the whole-query cascade — is a pure speed
change, never a semantic one.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import AdaptiveConfig, ReorderMode
from repro.dmv import load_dmv, six_table_workload

SCALE = 0.02

#: Small joins exercise the two- and three-leg shapes (incl. a table-scan
#: driving leg); the six-table templates exercise deep adaptive pipelines.
SMALL_QUERIES = [
    "SELECT o.name, c.make FROM Car c, Owner o "
    "WHERE c.ownerid = o.id AND c.year >= 2005",
    "SELECT o.name, d.salary FROM Demographics d, Owner o, Car c "
    "WHERE d.ownerid = o.id AND c.ownerid = o.id AND d.salary > 50000 "
    "AND c.make = 'Mazda'",
]

CONFIGS = [
    ("scalar", {}),
    ("batched", {"batched": True}),
    ("batched-64", {"batched": True, "batch_size": 64}),
    ("cached", {"batched": True, "probe_cache_size": 256}),
    ("chunk", {"batched": True, "monitor_granularity": "chunk"}),
    ("chunk-cached", {
        "batched": True,
        "monitor_granularity": "chunk",
        "probe_cache_size": 256,
    }),
    ("workers-2", {"batched": True, "workers": 2}),
]


@pytest.fixture(scope="module")
def row_db():
    db, _ = load_dmv(scale=SCALE, extended=True, backend="row")
    yield db
    db.close()


@pytest.fixture(scope="module")
def columnar_db():
    db, _ = load_dmv(scale=SCALE, extended=True, backend="columnar")
    yield db
    db.close()


@pytest.fixture(scope="module")
def workload():
    return SMALL_QUERIES + [q.sql for q in six_table_workload(count=3)]


@pytest.mark.parametrize(
    "mode",
    [ReorderMode.NONE, ReorderMode.INNER_ONLY, ReorderMode.BOTH],
    ids=lambda m: m.name.lower(),
)
@pytest.mark.parametrize("name,overrides", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_columnar_bit_identical_to_row(
    row_db, columnar_db, workload, mode, name, overrides
):
    config = AdaptiveConfig(mode=mode, **overrides)
    for sql in workload:
        row = row_db.execute(sql, config)
        col = columnar_db.execute(sql, config)
        tag = f"{mode.name} {name}: {sql[:60]}"
        assert col.rows == row.rows, tag
        assert dataclasses.asdict(col.stats.work) == dataclasses.asdict(
            row.stats.work
        ), tag
        assert col.stats.events == row.stats.events, tag


def test_columnar_adapts_on_the_workload(columnar_db, workload):
    """Guard against vacuous event equality: mode BOTH must actually adapt
    somewhere on this workload, so the event comparison above compares
    non-empty sequences."""
    config = AdaptiveConfig(mode=ReorderMode.BOTH, batched=True)
    total = 0
    for sql in workload:
        total += len(columnar_db.execute(sql, config).stats.events)
    assert total > 0
