"""Command-line interface: explore the reproduction without writing code.

Subcommands
-----------
``generate``    build the synthetic DMV data set and print its Table 1
``query``       run one SQL statement against a DMV database, comparing
                static and adaptive execution
``stats``       per-table storage footprint of a DMV database
``shell``       interactive SQL shell over a DMV database
``serve``       concurrent multi-client query server (NDJSON over TCP)
``replay``      reconstruct a recorded query's adaptation timeline offline
``telemetry``   aggregate a telemetry directory into per-template analytics
``experiment``  run one of the paper's experiments and print its report

Examples::

    python -m repro generate --scale 0.05
    python -m repro serve --scale 0.05 --port 7654 --telemetry-dir telem/
    python -m repro query --scale 0.05 "SELECT COUNT(*) FROM Car c WHERE c.make = 'Mazda'"
    python -m repro query --scale 0.05 --backend columnar --batch-size 256 "SELECT ..."
    python -m repro stats --scale 0.05 --backend columnar
    python -m repro query --scale 0.02 --extended --telemetry-dir telem/ "SELECT ..."
    python -m repro replay --telemetry-dir telem/ --latest
    python -m repro replay --telemetry-dir telem/ --diff q-...-1 q-...-2
    python -m repro telemetry --telemetry-dir telem/
    python -m repro experiment fig7 --scale 0.05 --queries 10
    python -m repro shell --scale 0.02
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import (
    overhead_experiment,
    scatter_experiment,
    table1_experiment,
    template_ratio_experiment,
    window_sweep_experiment,
)
from repro.core.config import AdaptiveConfig, ReorderMode
from repro.db import Database
from repro.dmv import four_table_workload, load_dmv, six_table_workload
from repro.errors import BudgetExceeded, ReproError
from repro.obs import QueryObservability, render_explain_analyze
from repro.robustness.faults import FaultPlan
from repro.robustness.limits import ExecutionLimits


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="DMV scale factor; 1.0 = the paper's 100K owners (default 0.05)",
    )
    parser.add_argument("--seed", type=int, default=20070426)
    parser.add_argument(
        "--extended",
        action="store_true",
        help="include the Location/Time extension tables (Sec 5.5)",
    )
    parser.add_argument(
        "--backend",
        choices=["row", "columnar"],
        default="row",
        help="storage backend: reference row store or typed columnar "
        "arrays with compiled predicates (default: row)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Adaptively Reordering Joins during "
        "Query Execution' (ICDE 2007)",
    )
    parser.add_argument(
        "--profile",
        default=None,
        metavar="FILE",
        help="profile the whole command under cProfile and dump pstats "
        "data to FILE (inspect with `python -m pstats FILE`)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="build the DMV data set")
    _add_scale(generate)

    query = commands.add_parser("query", help="run one SQL statement")
    _add_scale(query)
    query.add_argument("sql", help="the SQL statement to run")
    query.add_argument(
        "--mode",
        choices=[mode.value for mode in ReorderMode],
        default=ReorderMode.BOTH.value,
        help="reordering mode for the adaptive run (default: both)",
    )
    query.add_argument(
        "--explain", action="store_true", help="print the static plan"
    )
    query.add_argument(
        "--explain-analyze",
        action="store_true",
        help="run once under --mode with full observability and print the "
        "EXPLAIN ANALYZE report (per-leg actuals vs. estimates, adaptation "
        "timeline, work breakdown)",
    )
    query.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a JSONL span trace of the run to FILE",
    )
    query.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics registry after the run",
    )
    query.add_argument(
        "--max-rows",
        type=int,
        default=None,
        help="abort with a budget error after this many result rows",
    )
    query.add_argument(
        "--timeout-ms",
        type=float,
        default=None,
        help="per-execution wall-clock deadline in milliseconds",
    )
    query.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="N",
        help="run on the batched executor with driving-leg chunks of N rows",
    )
    query.add_argument(
        "--probe-cache",
        type=int,
        default=None,
        metavar="N",
        help="arm the per-leg LRU probe cache with capacity N "
        "(implies the batched executor)",
    )
    query.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="run the adaptive execution range-partitioned across N worker "
        "processes (driving switches become coordinator barrier decisions)",
    )
    query.add_argument(
        "--fault-plan",
        default=None,
        metavar="JSON",
        help="fault-injection plan for the adaptive run: inline JSON "
        '(e.g. \'{"seed": 7, "faults": [{"site": "controller", '
        '"nth_call": 1, "kind": "permanent"}]}\') or a path to a JSON file',
    )
    query.add_argument(
        "--telemetry-dir",
        default=None,
        metavar="DIR",
        help="record a flight record (decision audit, per-leg q-errors, "
        "adaptation timeline) to DIR's rotating JSONL store; inspect it "
        "with `repro replay --telemetry-dir DIR --latest`",
    )
    query.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        metavar="MS",
        help="slow-query threshold for the flight recorder (records at/"
        "above MS wall-clock are flagged and logged in full)",
    )

    shell = commands.add_parser("shell", help="interactive SQL shell")
    _add_scale(shell)

    stats = commands.add_parser(
        "stats",
        help="per-table storage footprint of a DMV database",
    )
    _add_scale(stats)
    stats.add_argument(
        "--json",
        action="store_true",
        help="emit the storage-stats payload as JSON instead of the table",
    )
    stats.add_argument(
        "--metrics",
        action="store_true",
        help="also print the storage gauges in metrics-registry form",
    )

    serve = commands.add_parser(
        "serve",
        help="run the concurrent query server (newline-delimited JSON)",
    )
    _add_scale(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=7654,
        help="TCP port (0 = pick a free port and print it; default 7654)",
    )
    serve.add_argument(
        "--max-concurrency",
        type=int,
        default=4,
        metavar="N",
        help="queries executing concurrently (default 4)",
    )
    serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=32,
        metavar="N",
        help="bounded admission queue; full → REJECTED_OVERLOAD (default 32)",
    )
    serve.add_argument(
        "--queue-per-session",
        type=int,
        default=8,
        metavar="N",
        help="per-client cap inside the admission queue (default 8)",
    )
    serve.add_argument(
        "--rate-limit-qps",
        type=float,
        default=0.0,
        metavar="QPS",
        help="per-client token-bucket rate (0 disables; default 0)",
    )
    serve.add_argument(
        "--rate-limit-burst",
        type=float,
        default=8.0,
        metavar="N",
        help="token-bucket burst size (default 8)",
    )
    serve.add_argument(
        "--timeout-ms",
        type=float,
        default=10_000.0,
        metavar="MS",
        help="default per-query deadline, server-clamped (default 10000)",
    )
    serve.add_argument(
        "--engine-workers",
        "--workers",
        dest="engine_workers",
        type=int,
        default=1,
        metavar="N",
        help="intra-query parallel workers granted to fully-admitted "
        "queries (1 = serial; default 1; --workers is an alias)",
    )
    serve.add_argument(
        "--batch-size",
        type=int,
        default=256,
        metavar="N",
        help="batched-executor chunk size for served queries "
        "(0 = scalar path; default 256)",
    )
    serve.add_argument(
        "--plan-cache",
        type=int,
        default=256,
        metavar="N",
        help="shared plan-cache capacity in statements (0 disables; "
        "default 256)",
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        metavar="S",
        help="seconds to let in-flight queries finish on SIGTERM before "
        "cancelling them (default 10)",
    )
    serve.add_argument(
        "--telemetry-dir",
        default=None,
        metavar="DIR",
        help="drain per-query flight records to DIR's rotating JSONL "
        "store (the in-memory ring is always on)",
    )
    serve.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        metavar="MS",
        help="slow-query log threshold: queries at/above MS wall-clock "
        "are logged with their full flight record (default: off)",
    )

    replay = commands.add_parser(
        "replay",
        help="reconstruct a recorded query's adaptation timeline offline",
    )
    replay.add_argument(
        "query_id",
        nargs="?",
        default=None,
        help="flight-record query id (q-...); omit with --latest/--list",
    )
    replay.add_argument(
        "--telemetry-dir",
        required=True,
        metavar="DIR",
        help="telemetry directory holding the JSONL segments to read",
    )
    replay.add_argument(
        "--list",
        action="store_true",
        help="list the recorded queries instead of replaying one",
    )
    replay.add_argument(
        "--latest",
        action="store_true",
        help="replay the most recently recorded query",
    )
    replay.add_argument(
        "--diff",
        nargs=2,
        metavar=("A", "B"),
        default=None,
        help="compare two recorded executions side by side",
    )

    telemetry = commands.add_parser(
        "telemetry",
        help="aggregate a telemetry directory into per-template analytics",
    )
    telemetry.add_argument(
        "--telemetry-dir",
        required=True,
        metavar="DIR",
        help="telemetry directory holding the JSONL segments to read",
    )
    telemetry.add_argument(
        "--json",
        action="store_true",
        help="emit the aggregate as JSON (estimate-error feedback input) "
        "instead of the text report",
    )

    experiment = commands.add_parser(
        "experiment", help="run one of the paper's experiments"
    )
    _add_scale(experiment)
    experiment.add_argument(
        "name",
        choices=["table1", "fig7", "fig8", "fig9", "fig10", "fig11", "overhead"],
    )
    experiment.add_argument(
        "--queries", type=int, default=10, help="queries per template"
    )
    return parser


def _load(args) -> Database:
    started = time.perf_counter()
    backend = getattr(args, "backend", "row")
    db, summary = load_dmv(
        scale=args.scale,
        seed=args.seed,
        extended=args.extended,
        backend=backend,
    )
    elapsed = time.perf_counter() - started
    print(
        f"loaded DMV at scale {args.scale} ({backend} backend) "
        f"in {elapsed:.1f}s:",
        file=sys.stderr,
    )
    for name, count in summary.as_rows():
        print(f"  {name:14s} {count:10,d} rows", file=sys.stderr)
    return db


def _parse_fault_plan(value: str | None) -> FaultPlan | None:
    if value is None:
        return None
    text = value.strip()
    if not text.startswith("{"):
        with open(text, "r", encoding="utf-8") as handle:
            text = handle.read()
    return FaultPlan.from_json(text)


# Warn at most once per process when a CLI option silently disqualifies
# the vectorized cascade on a columnar database (satellite of the chunked
# adaptive engine: the fallback is correct but much slower, so name the
# failed gate instead of degrading quietly).
_vector_gate_warned = False


def _warn_vector_gate(result, cli_args) -> None:
    global _vector_gate_warned
    if _vector_gate_warned or cli_args is None:
        return
    if getattr(cli_args, "backend", "row") != "columnar":
        return
    stats = result.stats
    # "vector-adaptive+fast" is a mid-query handoff, not an option
    # problem; scalar runs never promised the cascade. Parallel runs
    # report per-partition engines: warn only when NO partition (nor the
    # serial continuation) ran a cascade — a partial demotion is a
    # per-worker gate, not an option problem.
    if stats.engine == "parallel":
        if not stats.worker_engines or any(
            engine.startswith("vector") for engine in stats.worker_engines
        ):
            return
    elif stats.engine not in ("batched", "turbo", "fast"):
        return
    if stats.vector_gate is None:
        return
    _vector_gate_warned = True
    print(
        f"note: vectorized cascade disabled ({stats.vector_gate}); "
        f"ran the {stats.engine!r} engine instead",
        file=sys.stderr,
    )


def _make_config(
    mode: ReorderMode, cli_args, serial: bool = False
) -> AdaptiveConfig:
    """AdaptiveConfig for *mode* with the CLI's executor knobs applied.

    ``serial=True`` drops ``--workers`` — used for the static baseline of
    a comparison run so work comparisons keep meaning. A standalone run
    (including ``--mode none``, which partitions the static vectorized
    cascade on the columnar backend) gets the partitioned path.
    """
    batch_size = getattr(cli_args, "batch_size", None)
    probe_cache = getattr(cli_args, "probe_cache", None)
    workers = getattr(cli_args, "workers", 1) or 1
    kwargs: dict = {"mode": mode}
    if workers > 1 and not serial:
        kwargs["workers"] = workers
    if batch_size is not None or probe_cache is not None:
        kwargs["batched"] = True
        if batch_size is not None:
            kwargs["batch_size"] = batch_size
        if probe_cache is not None:
            kwargs["probe_cache_size"] = probe_cache
    return AdaptiveConfig(**kwargs)


def _run_query(
    db: Database,
    sql: str,
    mode: ReorderMode,
    explain: bool,
    limits: ExecutionLimits | None = None,
    fault_plan: FaultPlan | None = None,
    cli_args=None,
) -> None:
    if explain:
        print(db.explain(sql))
        print()
    try:
        static = db.execute(
            sql,
            _make_config(
                ReorderMode.NONE,
                cli_args,
                serial=mode is not ReorderMode.NONE,
            ),
            limits=limits,
        )
    except BudgetExceeded as error:
        print(f"static:   budget exceeded — {error.progress_summary()}")
        return
    _warn_vector_gate(static, cli_args)
    for row in static.rows[:25]:
        print(row)
    if len(static.rows) > 25:
        print(f"... ({len(static.rows)} rows total)")
    print(f"\nstatic:   {static.stats.total_work:12,.0f} work units "
          f"({static.stats.wall_seconds * 1000:.1f} ms)")
    if mode is not ReorderMode.NONE:
        try:
            adaptive = db.execute(
                sql,
                _make_config(mode, cli_args),
                limits=limits,
                fault_plan=fault_plan,
            )
        except BudgetExceeded as error:
            print(f"adaptive: budget exceeded — {error.progress_summary()}")
            return
        _warn_vector_gate(adaptive, cli_args)
        matches = sorted(adaptive.rows) == sorted(static.rows)
        print(f"adaptive: {adaptive.stats.total_work:12,.0f} work units "
              f"({adaptive.stats.wall_seconds * 1000:.1f} ms), "
              f"{adaptive.stats.total_switches} switch(es), "
              f"results {'match' if matches else 'MISMATCH!'}")
        speedup = static.stats.total_work / max(adaptive.stats.total_work, 1e-9)
        print(f"speedup:  {speedup:12.2f}x")
        if adaptive.stats.critical_path_work is not None:
            parallel = static.stats.total_work / max(
                adaptive.stats.critical_path_work, 1e-9
            )
            print(
                f"parallel: {parallel:12.2f}x critical-path speedup over "
                f"the serial baseline ({adaptive.stats.workers} workers, "
                f"{adaptive.stats.critical_path_work:,.0f} critical-path "
                f"work units)"
            )
        if adaptive.stats.degraded:
            print("DEGRADED: the adaptive layer failed and was disabled; "
                  "the query completed on its static order")
        if adaptive.stats.events:
            print("adaptation events:")
            for event in adaptive.stats.events:
                print(f"  {event.describe()}")


def _make_recorder(args):
    """A FlightRecorder draining to --telemetry-dir, or None."""
    directory = getattr(args, "telemetry_dir", None)
    if not directory:
        return None
    from repro.obs.recorder import FlightRecorder, TelemetryStore

    return FlightRecorder(
        store=TelemetryStore(directory),
        slow_query_ms=getattr(args, "slow_query_ms", None),
    )


def _run_observed_query(
    db: Database,
    sql: str,
    mode: ReorderMode,
    args,
    limits: ExecutionLimits | None,
    fault_plan: FaultPlan | None,
) -> int:
    """One observed execution: --explain-analyze / --trace / --metrics /
    --telemetry-dir."""
    config = _make_config(mode, args)
    recorder = _make_recorder(args)
    if args.explain_analyze or args.trace or args.metrics:
        obs = QueryObservability.armed(sample_every=config.check_frequency)
    else:
        # Telemetry-only: keep the bundle cold so the run pays no per-row
        # observability overhead (the decision audit rides the controller's
        # already-metered check points).
        obs = QueryObservability()
    if recorder is not None:
        obs = recorder.arm(config, base=obs)

    def dump_trace() -> None:
        if args.trace and obs.tracer is not None:
            obs.tracer.write_jsonl(args.trace)
            print(
                f"trace: {len(obs.tracer.spans)} span(s) written to {args.trace}",
                file=sys.stderr,
            )

    def record_flight(result=None, outcome="ok", error=None, wall_ms=None) -> None:
        if recorder is None:
            return
        record = recorder.finish_query(
            obs,
            result,
            sql=sql,
            config=config,
            outcome=outcome,
            error=error,
            wall_ms=wall_ms,
        )
        recorder.close()
        print(
            f"telemetry: flight record {record.query_id} "
            f"({record.adaptations} adaptation(s), "
            f"{len(record.decisions)} decision(s)) written to "
            f"{args.telemetry_dir}",
            file=sys.stderr,
        )

    started = time.perf_counter()
    try:
        result = db.execute(
            sql, config, limits=limits, fault_plan=fault_plan, obs=obs
        )
    except BudgetExceeded as error:
        print(f"budget exceeded — {error.progress_summary()}")
        dump_trace()
        record_flight(
            outcome="budget_exceeded",
            error=error,
            wall_ms=(time.perf_counter() - started) * 1000.0,
        )
        return 0
    _warn_vector_gate(result, args)
    if args.explain_analyze:
        print(render_explain_analyze(result, limits))
    else:
        for row in result.rows[:25]:
            print(row)
        if len(result.rows) > 25:
            print(f"... ({len(result.rows)} rows total)")
        print(
            f"\n{result.stats.total_work:,.0f} work units "
            f"({result.stats.wall_seconds * 1000:.1f} ms), "
            f"{result.stats.total_switches} switch(es)"
        )
    if args.metrics and result.metrics is not None:
        print("\nmetrics:")
        print(result.metrics.render())
    dump_trace()
    record_flight(result)
    return 0


def cmd_generate(args) -> int:
    _, summary = load_dmv(
        scale=args.scale,
        seed=args.seed,
        extended=args.extended,
        backend=args.backend,
    )
    print(table1_experiment(summary, args.scale).report())
    return 0


def cmd_query(args) -> int:
    try:
        fault_plan = _parse_fault_plan(args.fault_plan)
    except (OSError, ValueError) as error:
        print(f"error: invalid --fault-plan: {error}", file=sys.stderr)
        return 2
    limits = None
    if args.max_rows is not None or args.timeout_ms is not None:
        try:
            limits = ExecutionLimits(
                max_rows=args.max_rows,
                timeout_seconds=(
                    args.timeout_ms / 1000.0
                    if args.timeout_ms is not None
                    else None
                ),
            )
        except ValueError as error:
            print(f"error: invalid limits: {error}", file=sys.stderr)
            return 2
    db = _load(args)
    if args.explain_analyze or args.trace or args.metrics or args.telemetry_dir:
        if args.explain:
            print(db.explain(args.sql))
            print()
        return _run_observed_query(
            db,
            args.sql,
            ReorderMode(args.mode),
            args,
            limits=limits,
            fault_plan=fault_plan,
        )
    _run_query(
        db,
        args.sql,
        ReorderMode(args.mode),
        args.explain,
        limits=limits,
        fault_plan=fault_plan,
        cli_args=args,
    )
    return 0


def cmd_stats(args) -> int:
    import json

    from repro.obs.metrics import MetricsRegistry, record_storage_gauges

    db = _load(args)
    storage = db.storage_stats()
    if args.json:
        print(json.dumps(storage, indent=2))
    else:
        print(f"backend: {storage['backend']}")
        print(f"{'table':14s} {'rows':>10s} {'bytes':>14s}")
        for entry in storage["per_table"]:
            print(
                f"{entry['table']:14s} {entry['rows']:10,d} "
                f"{entry['bytes']:14,d}"
            )
        print(
            f"{'total':14s} {'':>10s} {storage['total_bytes']:14,d} "
            f"({storage['table_count']} tables)"
        )
    if args.metrics:
        registry = MetricsRegistry()
        record_storage_gauges(registry, storage)
        print("\nmetrics:")
        print(registry.render())
    return 0


def cmd_shell(args) -> int:
    db = _load(args)
    print("repro SQL shell — end statements with Enter; "
          "commands: .explain SQL | .quit", file=sys.stderr)
    while True:
        try:
            line = input("repro> ").strip()
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        if not line:
            continue
        if line in (".quit", ".exit", "\\q"):
            return 0
        try:
            if line.startswith(".explain"):
                print(db.explain(line[len(".explain"):].strip()))
            else:
                _run_query(db, line, ReorderMode.BOTH, explain=False)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)


def cmd_serve(args) -> int:
    import asyncio

    from repro.server import QueryServer, ServerConfig

    try:
        config = ServerConfig(
            host=args.host,
            port=args.port,
            max_concurrency=args.max_concurrency,
            max_queue_depth=args.max_queue_depth,
            max_queue_per_session=args.queue_per_session,
            default_timeout_ms=min(args.timeout_ms, 60_000.0),
            rate_limit_qps=args.rate_limit_qps,
            rate_limit_burst=args.rate_limit_burst,
            engine_workers=args.engine_workers,
            engine_batch_size=args.batch_size,
            plan_cache_size=args.plan_cache,
            drain_grace_seconds=args.drain_grace,
            telemetry_dir=args.telemetry_dir,
            slow_query_ms=args.slow_query_ms,
        )
    except ValueError as error:
        print(f"error: invalid server config: {error}", file=sys.stderr)
        return 2
    db = _load(args)
    server = QueryServer(db, config)

    def on_ready(srv: QueryServer) -> None:
        print(
            f"listening on {config.host}:{srv.port} "
            f"(concurrency={config.max_concurrency}, "
            f"queue={config.max_queue_depth}, "
            f"workers={config.engine_workers}); SIGTERM drains",
            file=sys.stderr,
            flush=True,
        )

    return asyncio.run(server.serve_forever(on_ready=on_ready))


def cmd_replay(args) -> int:
    from repro.obs.audit import (
        find_record,
        latest_record,
        load_records,
        render_diff,
        render_listing,
        render_replay,
    )

    records = load_records(args.telemetry_dir)
    if not records:
        print(
            f"error: no finalized telemetry segments in {args.telemetry_dir!r} "
            "(a live server finalizes its active segment on drain)",
            file=sys.stderr,
        )
        return 1
    if args.list:
        print(render_listing(records))
        return 0
    if args.diff is not None:
        pair = []
        for query_id in args.diff:
            record = find_record(records, query_id)
            if record is None:
                print(f"error: no record {query_id!r}", file=sys.stderr)
                return 1
            pair.append(record)
        print(render_diff(pair[0], pair[1]))
        return 0
    if args.latest:
        record = latest_record(records)
    elif args.query_id:
        record = find_record(records, args.query_id)
        if record is None:
            print(
                f"error: no record {args.query_id!r} "
                f"({len(records)} record(s) available; try --list)",
                file=sys.stderr,
            )
            return 1
    else:
        print(
            "error: give a query id, or --latest / --list / --diff A B",
            file=sys.stderr,
        )
        return 2
    assert record is not None
    print(render_replay(record))
    return 0


def cmd_telemetry(args) -> int:
    import json

    from repro.obs.analytics import TelemetryAnalytics
    from repro.obs.audit import load_records

    records = load_records(args.telemetry_dir)
    if not records:
        print(
            f"error: no finalized telemetry segments in {args.telemetry_dir!r}",
            file=sys.stderr,
        )
        return 1
    analytics = TelemetryAnalytics.from_records(records)
    if args.json:
        print(json.dumps(analytics.as_dict(), indent=2, default=str))
    else:
        print(analytics.render())
    return 0


def cmd_experiment(args) -> int:
    if args.name == "table1":
        _, summary = load_dmv(
            scale=args.scale,
            seed=args.seed,
            extended=args.extended,
            backend=args.backend,
        )
        print(table1_experiment(summary, args.scale).report())
        return 0
    if args.name == "fig11":
        db, _ = load_dmv(
            scale=args.scale,
            seed=args.seed,
            extended=True,
            backend=args.backend,
        )
        workload = six_table_workload(count=max(args.queries * 2, 10))
        print(scatter_experiment(db, workload).report("Fig 11 — six-table joins"))
        return 0
    db = _load(args)
    workload = four_table_workload(queries_per_template=args.queries)
    if args.name == "fig7":
        print(scatter_experiment(db, workload).report("Fig 7 — scatter"))
    elif args.name == "fig8":
        print(
            template_ratio_experiment(db, workload, ReorderMode.INNER_ONLY)
            .report("Fig 8 — inner-only reordering")
        )
    elif args.name == "fig9":
        print(
            template_ratio_experiment(db, workload, ReorderMode.DRIVING_ONLY)
            .report("Fig 9 — driving-only reordering")
        )
    elif args.name == "fig10":
        print(window_sweep_experiment(db, workload).report())
    elif args.name == "overhead":
        print(overhead_experiment(db, workload).report())
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": cmd_generate,
        "query": cmd_query,
        "stats": cmd_stats,
        "shell": cmd_shell,
        "serve": cmd_serve,
        "replay": cmd_replay,
        "telemetry": cmd_telemetry,
        "experiment": cmd_experiment,
    }
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            return handlers[args.command](args)
        finally:
            profiler.disable()
            profiler.dump_stats(args.profile)
            print(
                f"profile: pstats dump written to {args.profile} "
                f"(inspect with `python -m pstats {args.profile}`)",
                file=sys.stderr,
            )
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
