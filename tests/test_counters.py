"""Unit tests for repro.storage.counters."""

from repro.storage import counters
from repro.storage.counters import WorkMeter


class TestCharges:
    def test_execution_units_weighting(self):
        meter = WorkMeter()
        meter.charge_index_descend()
        meter.charge_index_entries(2)
        meter.charge_row_fetch()
        meter.charge_predicate_eval(4)
        expected = (
            counters.INDEX_DESCEND_COST
            + 2 * counters.INDEX_ENTRY_COST
            + counters.ROW_FETCH_COST
            + 4 * counters.PREDICATE_EVAL_COST
        )
        assert meter.execution_units == expected
        assert meter.adaptation_units == 0.0

    def test_adaptation_units_separate(self):
        meter = WorkMeter()
        meter.charge_monitor_update(3)
        meter.charge_reorder_check()
        assert meter.execution_units == 0.0
        assert meter.adaptation_units == (
            3 * counters.MONITOR_UPDATE_COST + counters.REORDER_CHECK_COST
        )

    def test_total_is_sum(self):
        meter = WorkMeter()
        meter.charge_row_fetch()
        meter.charge_reorder_check()
        assert meter.total_units == meter.execution_units + meter.adaptation_units

    def test_rows_emitted(self):
        meter = WorkMeter()
        meter.charge_row_emitted(5)
        assert meter.rows_emitted == 5


class TestSnapshotAndDiff:
    def test_snapshot_is_independent(self):
        meter = WorkMeter()
        meter.charge_row_fetch()
        snap = meter.snapshot()
        meter.charge_row_fetch()
        assert snap.row_fetches == 1
        assert meter.row_fetches == 2

    def test_subtraction(self):
        meter = WorkMeter()
        meter.charge_row_fetch(3)
        before = meter.snapshot()
        meter.charge_row_fetch(2)
        meter.charge_index_descend()
        delta = meter - before
        assert delta.row_fetches == 2
        assert delta.index_descends == 1

    def test_reset(self):
        meter = WorkMeter()
        meter.charge_row_fetch()
        meter.charge_monitor_update()
        meter.reset()
        assert meter.total_units == 0.0
        assert meter.rows_emitted == 0


class TestThreadScopedMeter:
    def test_delegates_to_base_outside_scope(self):
        from repro.storage.counters import ThreadScopedMeter

        base = WorkMeter()
        scoped = ThreadScopedMeter(base)
        scoped.charge_row_fetch(3)
        assert base.row_fetches == 3
        assert scoped.total_units == base.total_units

    def test_scoped_isolates_and_merges(self):
        from repro.storage.counters import ThreadScopedMeter

        base = WorkMeter()
        scoped = ThreadScopedMeter(base)
        scoped.charge_row_fetch(1)  # outside: straight to base
        with scoped.scoped() as local:
            scoped.charge_row_fetch(5)
            assert local.row_fetches == 5, "charges go to the local meter"
            assert base.row_fetches == 1, "base untouched inside the scope"
        assert base.row_fetches == 6, "local merges into base on exit"

    def test_nested_scope_rejected(self):
        import pytest

        from repro.storage.counters import ThreadScopedMeter

        scoped = ThreadScopedMeter(WorkMeter())
        with scoped.scoped():
            with pytest.raises(RuntimeError):
                with scoped.scoped():
                    pass

    def test_concurrent_threads_measure_independent_work(self):
        import threading

        from repro.storage.counters import ThreadScopedMeter

        base = WorkMeter()
        scoped = ThreadScopedMeter(base)
        barrier = threading.Barrier(4)
        measured = {}

        def worker(index):
            barrier.wait()
            with scoped.scoped() as local:
                for _ in range(index + 1):
                    scoped.charge_row_fetch(10)
                measured[index] = local.row_fetches

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert measured == {0: 10, 1: 20, 2: 30, 3: 40}
        assert base.row_fetches == 100, "every scope merged exactly once"

    def test_direct_stores_route_to_scoped_meter(self):
        """`meter.field += n` (the batched executor's charge style) must
        land on the thread's meter, never create attributes on the facade."""
        from repro.storage.counters import ThreadScopedMeter

        base = WorkMeter()
        facade = ThreadScopedMeter(base)
        facade.row_fetches += 2  # outside a scope: straight to base
        assert base.row_fetches == 2
        with facade.scoped() as local:
            facade.index_descends += 5
            facade.row_fetches += 3
            assert local.index_descends == 5
            assert local.row_fetches == 3
            assert base.index_descends == 0, "base untouched inside scope"
            assert base.row_fetches == 2
        assert base.index_descends == 5, "direct stores merge on exit"
        assert base.row_fetches == 5
        assert "index_descends" not in vars(facade), (
            "stores must not shadow the facade's __getattr__ routing"
        )

    def test_batched_execution_charges_scoped_meter(self):
        """End-to-end: the batched executor path (direct `+=` charges)
        reports its work through a scoped meter, not onto the facade —
        its scoped work accounting must equal the scalar path's."""
        from tests.conftest import build_three_table_db

        from repro.core.config import AdaptiveConfig, ReorderMode

        db = build_three_table_db()
        facade = db.enable_concurrent_metering()
        base = facade.base
        sql = (
            "SELECT O.id FROM Owner O, Car C "
            "WHERE O.id = C.ownerid AND C.make = 'Rare'"
        )
        plan = db.plan(sql)
        with facade.scoped():
            scalar = db.execute(plan, AdaptiveConfig(mode=ReorderMode.BOTH))
        before = base.snapshot()
        batched_config = AdaptiveConfig(
            mode=ReorderMode.BOTH, batched=True, batch_size=64
        )
        with facade.scoped() as local:
            batched = db.execute(plan, batched_config)
            assert base.total_units == before.total_units, (
                "base must not be charged while a scope is active"
            )
            assert local.total_units == batched.stats.total_work
        assert sorted(batched.rows) == sorted(scalar.rows)
        assert batched.stats.total_work == scalar.stats.total_work, (
            "batched-path direct stores must land in the scoped meter"
        )
        assert not set(vars(facade)) & set(WorkMeter.__dataclass_fields__), (
            "no counter attribute may shadow the facade's routing"
        )
        assert base.total_units > before.total_units, "scope merged into base"
