"""Table and column statistics.

Three statistics levels mirror the paper's evaluation (Sec 5):

* **CARDINALITY** — only table cardinalities ("statistics giving table
  sizes and average row sizes", Sec 5; "data value distributions were
  assumed to be uniform during optimization"). Local-predicate
  selectivities fall back to textbook defaults, so the optimizer makes
  exactly the class of mistakes the paper's experiments exploit. This is
  the level the main experiments (Secs 5.1-5.2, 5.4, 5.5) run at.
* **BASIC** — adds per-column min/max and distinct counts. The optimizer
  still assumes uniformity within a column and independence across
  columns.
* **DETAILED** — adds top-N frequent values per column, emulating the
  "tool to collect more sophisticated statistics, such as data
  distributions and frequent values" of Sec 5.3. Skewed equality
  predicates are then estimated accurately, but cross-column correlation
  remains invisible — so adaptive reordering still wins (the paper reports
  up to two-fold speedups in that setting).
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.storage.table import HeapTable

DEFAULT_FREQUENT_VALUES = 20


class StatisticsLevel(enum.Enum):
    CARDINALITY = "cardinality"
    BASIC = "basic"
    DETAILED = "detailed"


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for one column."""

    ndv: int  # number of distinct non-null values
    null_count: int
    min_value: Any
    max_value: Any
    frequent_values: Mapping[Any, int] = field(default_factory=dict)

    @property
    def has_frequent_values(self) -> bool:
        return bool(self.frequent_values)


@dataclass(frozen=True)
class TableStats:
    """Statistics for one table."""

    cardinality: int
    columns: Mapping[str, ColumnStats]

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name)


def collect_column_stats(
    values: list[Any], with_frequent_values: bool = False, top_n: int = DEFAULT_FREQUENT_VALUES
) -> ColumnStats:
    """Compute :class:`ColumnStats` over raw column values."""
    non_null = [value for value in values if value is not None]
    null_count = len(values) - len(non_null)
    if not non_null:
        return ColumnStats(ndv=0, null_count=null_count, min_value=None, max_value=None)
    counts = Counter(non_null)
    frequent: dict[Any, int] = {}
    if with_frequent_values:
        frequent = dict(counts.most_common(top_n))
    return ColumnStats(
        ndv=len(counts),
        null_count=null_count,
        min_value=min(non_null),
        max_value=max(non_null),
        frequent_values=frequent,
    )


def collect_table_stats(
    table: HeapTable,
    level: StatisticsLevel = StatisticsLevel.BASIC,
    top_n: int = DEFAULT_FREQUENT_VALUES,
) -> TableStats:
    """Compute :class:`TableStats` for *table* at the given level.

    This is the reproduction's ANALYZE / RUNSTATS equivalent; it reads the
    heap without charging work units (statistics collection is off the query
    path in the paper's setting).
    """
    if level is StatisticsLevel.CARDINALITY:
        return TableStats(cardinality=len(table), columns={})
    with_frequent = level is StatisticsLevel.DETAILED
    columns = {
        column.name: collect_column_stats(
            table.column_values(column.name), with_frequent, top_n
        )
        for column in table.schema.columns
    }
    return TableStats(cardinality=len(table), columns=columns)
