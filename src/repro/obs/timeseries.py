"""Time-series sampling of the run-time monitors' estimates.

The paper's estimator-convergence story (Sec 4.3, Eq 5-11; the Fig 10
window ablation) is about how monitored selectivities evolve as rows flow.
An :class:`EstimateSampler` snapshots every monitored estimate each ``c``
driving rows, so convergence plots come from recorded series instead of
ad-hoc bench instrumentation.

Each :class:`EstimateSample` captures, per leg:

* inner legs — window fill, join cardinality ``JC`` (Eq 11), measured
  probe cost ``PC``, index match rate (``O_1/I_1``), index join-predicate
  selectivity ``S_JP`` (Eq 7) with its optimizer prior, and residual
  selectivity ``S_LPR`` (Eq 6/8);
* the driving leg — entries scanned, rows surviving residual locals, and
  its windowed ``S_LPR``;

plus the live pipeline order and the per-equivalence-class join
selectivity table the cost model is currently using.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.executor.pipeline import PipelineExecutor


@dataclass(frozen=True)
class EstimateSample:
    """One snapshot of the monitors' view of the pipeline."""

    driving_rows: int
    work_units: float
    order: tuple[str, ...]
    # alias -> {"role": ..., "jc": ..., "pc": ..., ...}; None = no data yet.
    legs: dict[str, dict[str, Any]] = field(default_factory=dict)
    class_selectivities: dict[int, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "driving_rows": self.driving_rows,
            "work_units": self.work_units,
            "order": list(self.order),
            "legs": self.legs,
            "class_selectivities": {
                str(cid): sel for cid, sel in self.class_selectivities.items()
            },
        }


def snapshot_legs(pipeline: "PipelineExecutor") -> dict[str, dict[str, Any]]:
    """Per-leg monitor estimates for the pipeline's current order."""
    legs: dict[str, dict[str, Any]] = {}
    for position, alias in enumerate(pipeline.order):
        leg = pipeline.legs[alias]
        if position == 0:
            monitor = leg.driving_monitor
            legs[alias] = {
                "role": "driving",
                "position": 0,
                "entries_scanned": monitor.entries_scanned if monitor else 0,
                "rows_survived": monitor.rows_survived if monitor else 0,
                "s_lpr": monitor.residual_selectivity() if monitor else None,
            }
            continue
        monitor = leg.monitor
        legs[alias] = {
            "role": "inner",
            "position": position,
            "window_fill": monitor.incoming_rows,
            "lifetime_incoming": monitor.lifetime_incoming,
            "jc": monitor.join_cardinality(),
            "pc": monitor.probe_cost(),
            "index_match_rate": monitor.index_match_rate(),
            "s_jp": monitor.index_join_selectivity(leg.base_cardinality),
            "s_jp_prior": _access_prior(pipeline, alias),
            "s_lpr": monitor.residual_selectivity(),
        }
    return legs


def _access_prior(pipeline: "PipelineExecutor", alias: str) -> float | None:
    """The optimizer's initial selectivity for the leg's access predicate."""
    leg = pipeline.legs[alias]
    config = leg.probe_config
    if config is None or config.access_predicate is None:
        return None
    predicate = config.access_predicate
    class_id = pipeline.join_graph.class_id(
        predicate.left, predicate.left_column
    )
    if class_id is None:
        return None
    return pipeline.plan.class_selectivities.get(class_id)


class EstimateSampler:
    """Samples the pipeline's monitored estimates every ``every`` rows."""

    def __init__(self, every: int = 10, max_samples: int = 100_000) -> None:
        if every < 1:
            raise ValueError("sampling interval must be >= 1")
        self.every = every
        self.max_samples = max_samples
        self.samples: list[EstimateSample] = []
        self._rows_since_sample = 0

    def on_driving_row(self, pipeline: "PipelineExecutor") -> None:
        """Called once per driving row; samples at the configured cadence."""
        self._rows_since_sample += 1
        if self._rows_since_sample < self.every:
            return
        self._rows_since_sample = 0
        self.sample(pipeline)

    def sample(self, pipeline: "PipelineExecutor") -> EstimateSample | None:
        """Record one snapshot immediately (also used for a final sample)."""
        if len(self.samples) >= self.max_samples:
            return None
        meter_before = pipeline.meter_before
        work = (
            (pipeline.catalog.meter - meter_before).total_units
            if meter_before is not None
            else 0.0
        )
        sample = EstimateSample(
            driving_rows=pipeline.driving_rows_total,
            work_units=work,
            order=tuple(pipeline.order),
            legs=snapshot_legs(pipeline),
            class_selectivities=dict(pipeline.class_selectivities),
        )
        self.samples.append(sample)
        return sample

    # ------------------------------------------------------------------
    def as_dicts(self) -> list[dict[str, Any]]:
        return [sample.as_dict() for sample in self.samples]

    def series(self, alias: str, key: str) -> list[tuple[int, Any]]:
        """(driving_rows, value) pairs of one leg's estimate over time."""
        out: list[tuple[int, Any]] = []
        for sample in self.samples:
            leg = sample.legs.get(alias)
            if leg is not None and key in leg:
                out.append((sample.driving_rows, leg[key]))
        return out

    def to_rows(self) -> list[tuple[Any, ...]]:
        """Flat (driving_rows, work, leg, key, value) rows for CSV export."""
        rows: list[tuple[Any, ...]] = []
        for sample in self.samples:
            for alias, data in sample.legs.items():
                for key, value in data.items():
                    if key in ("role", "position"):
                        continue
                    rows.append(
                        (sample.driving_rows, sample.work_units, alias, key, value)
                    )
        return rows
