"""SQL front end for the supported SELECT-FROM-WHERE subset."""

from repro.query.sql.lexer import Token, TokenKind, tokenize
from repro.query.sql.parser import parse_sql

__all__ = ["Token", "TokenKind", "parse_sql", "tokenize"]
