"""Tour of the DMV evaluation workload (Sec 5) at laptop scale.

Loads the synthetic DMV data set, runs a slice of the paper's 4-table query
workload under all four measurement modes (static / inner-only /
driving-only / both), and prints a per-query comparison — a miniature of
Figures 7-9.

Run with::

    python examples/dmv_workload_tour.py [scale]
"""

import sys

from repro.bench import format_table, run_workload, standard_configs
from repro.dmv import four_table_workload, load_dmv


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    print(f"Loading DMV data set at scale {scale} (1.0 = 100K owners)...")
    db, summary = load_dmv(scale=scale)
    for name, count in summary.as_rows():
        print(f"  {name:14s} {count:10,d} rows")

    workload = four_table_workload(queries_per_template=4)
    print(f"\nRunning {len(workload)} queries under 4 modes "
          "(results are verified to match across modes)...")
    result = run_workload(db, workload, standard_configs())

    static = result.by_mode("static")
    rows = []
    totals = {mode: 0.0 for mode in result.modes()}
    for qid, base in sorted(static.items()):
        row = [qid, f"{base.work:,.0f}"]
        for mode in ("inner-only", "driving-only", "both"):
            measurement = result.by_mode(mode)[qid]
            totals[mode] += measurement.work
            ratio = measurement.work / max(base.work, 1e-9)
            marker = "*" if measurement.order_changed else " "
            row.append(f"{ratio * 100:6.1f}%{marker}")
        totals["static"] += base.work
        rows.append(row)
    print()
    print(
        format_table(
            ["query", "static work", "inner-only", "driving-only", "both"],
            rows,
            title="Per-query work relative to the static plan "
            "(* = join order changed)",
        )
    )
    print()
    for mode in ("inner-only", "driving-only", "both"):
        improvement = (1 - totals[mode] / totals["static"]) * 100
        print(f"total improvement, {mode:13s}: {improvement:6.1f}%")


if __name__ == "__main__":
    main()
