"""Column types supported by the storage engine.

The engine stores rows as plain Python tuples; a :class:`ColumnType` names
the logical type of each slot and provides validation/coercion used on
insert. Only the types needed by the DMV workload (and by SQL literals) are
supported: integers, floats, and strings. ``NULL`` is represented by
``None`` and is permitted in any column unless the column is declared
``nullable=False``.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import StorageError


class ColumnType(enum.Enum):
    """Logical column types."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"

    def validate(self, value: Any, column_name: str = "?") -> Any:
        """Coerce *value* to this type, raising :class:`StorageError` on mismatch.

        Integers are accepted for FLOAT columns (widening); bools are
        rejected everywhere because they silently masquerade as ints.
        """
        if value is None:
            return None
        if isinstance(value, bool):
            raise StorageError(
                f"column {column_name!r}: bool is not a supported value type"
            )
        if self is ColumnType.INT:
            if isinstance(value, int):
                return value
            raise StorageError(
                f"column {column_name!r}: expected int, got {type(value).__name__}"
            )
        if self is ColumnType.FLOAT:
            if isinstance(value, (int, float)):
                return float(value)
            raise StorageError(
                f"column {column_name!r}: expected float, got {type(value).__name__}"
            )
        # STRING
        if isinstance(value, str):
            return value
        raise StorageError(
            f"column {column_name!r}: expected str, got {type(value).__name__}"
        )


def infer_type(value: Any) -> ColumnType:
    """Infer the :class:`ColumnType` of a Python literal (for SQL constants)."""
    if isinstance(value, bool):
        raise StorageError("bool is not a supported value type")
    if isinstance(value, int):
        return ColumnType.INT
    if isinstance(value, float):
        return ColumnType.FLOAT
    if isinstance(value, str):
        return ColumnType.STRING
    raise StorageError(f"unsupported value type: {type(value).__name__}")
