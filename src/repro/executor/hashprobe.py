"""Pipelined hash probes — the Sec 6 hash-join extension.

The paper closes with: "Although we focused our adaptive join reordering on
nested-loop joins, it is not difficult to see that this technique can be
extended to pipelined hash joins as well." This module implements that
extension: an inner leg may be probed through an in-memory hash table on
its access join column instead of a sorted index.

The hash table is built lazily on the leg's first probe, over the rows that
satisfy the leg's **local** predicates only. Positional predicates (the
driving-switch duplicate preventers) and residual join predicates are
evaluated per probe, never baked into the table — they change as the
pipeline adapts, while the build is immutable. Because the build keys on a
column, one build is reused across inner reorders and driving switches as
long as the leg's access column stays the same; a different access column
triggers a new build.

All the safe-point reasoning is unchanged: a hash-probed leg is depleted
exactly when its match list for the current outer row is drained, so
inner reordering and driving switching work identically (and are tested
against the same chaos schedules as the NLJN path).

Work accounting: each build entry charges a row fetch (reading the heap),
the local-predicate evaluations, and a ``HASH_BUILD_ENTRY``; each probe
charges one ``HASH_PROBE`` plus a ``HASH_MATCH`` per row in the bucket.
"""

from __future__ import annotations

from typing import Any

from repro.storage.counters import WorkMeter
from repro.storage.table import HeapTable, Row


class HashProbeTable:
    """An immutable hash table over one column of a (locally filtered) table."""

    def __init__(
        self,
        table: HeapTable,
        column: str,
        local_tests: list,
        meter: WorkMeter,
        local_counts: list | None = None,
    ) -> None:
        self.table = table
        self.column = column
        self._buckets: dict[Any, list[tuple[int, Row]]] = {}
        self.build_entries = 0
        self._build(local_tests, meter, local_counts)

    def _build(
        self, local_tests: list, meter: WorkMeter, local_counts: list | None
    ) -> None:
        slot = self.table.schema.position_of(self.column)
        for rid, row in enumerate(self.table.raw_rows()):
            meter.charge_row_fetch()
            passed_all = True
            for index, (_, test) in enumerate(local_tests):
                meter.charge_predicate_eval()
                passed = test(row)
                if local_counts is not None:
                    # Build-time counts are *table-wide* (unbiased by the
                    # join population) — strictly better input for the
                    # controller's leg-cardinality estimates.
                    counts = local_counts[index]
                    counts[0] += 1
                    counts[1] += 1 if passed else 0
                if not passed:
                    passed_all = False
                    break
            if not passed_all:
                continue
            key = row[slot]
            if key is None:
                continue  # NULL never matches an equi-join
            self._buckets.setdefault(key, []).append((rid, row))
            self.build_entries += 1
        meter.charge_hash_build(self.build_entries)

    def probe(self, key: Any, meter: WorkMeter) -> list[tuple[int, Row]]:
        """(rid, row) pairs whose build key equals *key*."""
        faults = self.table.faults
        if faults is not None:
            # The table is immutable once built, so probes are idempotent
            # and transient faults here are always retryable.
            faults.fire("hash-probe")
        matches = self._buckets.get(key, []) if key is not None else []
        meter.charge_hash_probe(len(matches))
        return matches

    def __len__(self) -> int:
        return self.build_entries
