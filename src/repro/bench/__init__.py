"""Benchmark harness: workload runner, experiment drivers, reporting."""

from repro.bench.experiments import (
    PAPER_TABLE1,
    AblationResult,
    OverheadResult,
    ScatterResult,
    Table1Result,
    TemplateRatioResult,
    WindowSweepResult,
    ablation_experiment,
    overhead_experiment,
    scatter_experiment,
    table1_experiment,
    template_ratio_experiment,
    window_sweep_experiment,
)
from repro.bench.reporting import (
    format_scatter_summary,
    format_table,
    to_csv,
    write_csv,
)
from repro.bench.runner import (
    QueryMeasurement,
    WorkloadResult,
    run_workload,
    standard_configs,
)

__all__ = [
    "PAPER_TABLE1",
    "AblationResult",
    "OverheadResult",
    "QueryMeasurement",
    "ScatterResult",
    "Table1Result",
    "TemplateRatioResult",
    "WindowSweepResult",
    "WorkloadResult",
    "ablation_experiment",
    "format_scatter_summary",
    "format_table",
    "overhead_experiment",
    "run_workload",
    "scatter_experiment",
    "standard_configs",
    "table1_experiment",
    "template_ratio_experiment",
    "to_csv",
    "window_sweep_experiment",
    "write_csv",
]
