"""Unit tests for frozen scan positions (Sec 4.2 duplicate prevention)."""

from repro.core.positions import PositionRegistry
from repro.storage.cursor import IndexScanCursor, KeyRange, TableScanCursor
from repro.storage.index import SortedIndex
from repro.storage.schema import Column, TableSchema
from repro.storage.table import HeapTable
from repro.storage.types import ColumnType


def make_table(values):
    schema = TableSchema(
        "t", [Column("k", ColumnType.INT), Column("v", ColumnType.STRING)]
    )
    table = HeapTable(schema)
    table.insert_many([(value, f"v{i}") for i, value in enumerate(values)])
    return table


class TestFreeze:
    def test_freeze_mid_scan(self):
        table = make_table([1, 2, 3])
        cursor = TableScanCursor(table)
        next(cursor)
        registry = PositionRegistry()
        registry.freeze("t", cursor)
        predicate = registry.predicate_for("t")
        assert not predicate.test(0, (1, "v0"))
        assert predicate.test(1, (2, "v1"))

    def test_freeze_before_first_row_means_no_restriction(self):
        table = make_table([1])
        registry = PositionRegistry()
        registry.freeze("t", TableScanCursor(table))
        assert registry.predicate_for("t") is None
        assert registry.has_driven("t")

    def test_unknown_alias(self):
        registry = PositionRegistry()
        assert registry.predicate_for("zz") is None
        assert registry.resume_cursor("zz") is None
        assert not registry.has_driven("zz")

    def test_switch_count(self):
        table = make_table([1, 2])
        registry = PositionRegistry()
        cursor = TableScanCursor(table)
        next(cursor)
        registry.freeze("t", cursor)
        registry.freeze("t", cursor)
        assert registry.switch_count == 2


class TestResume:
    def test_resume_cursor_identity(self):
        table = make_table([1, 2, 3])
        cursor = TableScanCursor(table)
        next(cursor)
        registry = PositionRegistry()
        registry.freeze("t", cursor)
        assert registry.resume_cursor("t") is cursor
        # Resuming continues exactly after the frozen position.
        assert [rid for rid, _ in registry.resume_cursor("t")] == [1, 2]


class TestIndexOrderFreeze:
    def test_composite_positional_predicate(self):
        table = make_table([5, 5, 7, 3])
        index = SortedIndex("ix", table, "k")
        cursor = IndexScanCursor(index, [KeyRange(low=3, high=7)])
        next(cursor)  # (3, 3)
        next(cursor)  # (5, 0)
        registry = PositionRegistry()
        registry.freeze("t", cursor)
        predicate = registry.predicate_for("t")
        # key > 5 OR (key = 5 AND rid > 0)
        assert not predicate.test(3, (3, "v3"))
        assert not predicate.test(0, (5, "v0"))
        assert predicate.test(1, (5, "v1"))
        assert predicate.test(2, (7, "v2"))
