"""Tests for IS [NOT] NULL predicates and explain_analyze."""

import pytest

from repro import AdaptiveConfig, Database, ReorderMode
from repro.catalog.statistics import StatisticsLevel
from repro.optimizer.selectivity import DEFAULT_NULL_SELECTIVITY, Estimator
from repro.query.predicates import IsNull
from repro.query.sql.parser import parse_sql

from tests.conftest import build_three_table_db


@pytest.fixture(scope="module")
def null_db():
    db = Database()
    db.create_table("T", [("id", "int"), ("v", "int"), ("w", "string")])
    db.create_index("T", "id")
    db.insert(
        "T",
        [(1, 10, "a"), (2, None, "b"), (3, 30, None), (4, None, None)],
    )
    db.analyze()
    return db


class TestIsNullPredicate:
    def test_parse_is_null(self):
        spec = parse_sql("SELECT T.id FROM T WHERE T.v IS NULL")
        (predicate,) = spec.locals_of("T")
        assert predicate == IsNull("v", negated=False)

    def test_parse_is_not_null(self):
        spec = parse_sql("SELECT T.id FROM T WHERE T.v IS NOT NULL")
        (predicate,) = spec.locals_of("T")
        assert predicate == IsNull("v", negated=True)

    def test_execute_is_null(self, null_db):
        rows = null_db.execute(
            "SELECT T.id FROM T WHERE T.v IS NULL ORDER BY T.id"
        ).rows
        assert rows == [(2,), (4,)]

    def test_execute_is_not_null(self, null_db):
        rows = null_db.execute(
            "SELECT T.id FROM T WHERE T.v IS NOT NULL ORDER BY T.id"
        ).rows
        assert rows == [(1,), (3,)]

    def test_combined_with_other_predicates(self, null_db):
        rows = null_db.execute(
            "SELECT T.id FROM T WHERE T.v IS NULL AND T.w IS NOT NULL"
        ).rows
        assert rows == [(2,)]

    def test_not_sargable(self):
        assert IsNull("v").key_ranges("v") is None

    def test_selectivity_from_null_count(self, null_db):
        estimator = Estimator(null_db.catalog.stats("T"))
        assert estimator.predicate_selectivity(IsNull("v")) == pytest.approx(0.5)
        assert estimator.predicate_selectivity(
            IsNull("v", negated=True)
        ) == pytest.approx(0.5)

    def test_selectivity_default_without_stats(self):
        estimator = Estimator(None)
        assert estimator.predicate_selectivity(IsNull("v")) == pytest.approx(
            DEFAULT_NULL_SELECTIVITY
        )

    def test_is_null_in_join_query(self, null_db):
        # IS NULL rows never join (NULL fails equality).
        null_db.catalog  # ensure db built
        db = build_three_table_db()
        rows = db.execute(
            "SELECT o.name FROM Owner o, Car c "
            "WHERE c.ownerid = o.id AND c.make IS NOT NULL"
        ).rows
        baseline = db.execute(
            "SELECT o.name FROM Owner o, Car c WHERE c.ownerid = o.id"
        ).rows
        assert sorted(rows) == sorted(baseline)  # generator emits no NULL makes


class TestExplainAnalyze:
    def test_reports_plan_and_events(self):
        db = build_three_table_db(owners=2000, seed=42)
        report = db.explain_analyze(
            "SELECT o.name FROM Owner o, Car c, Demo d "
            "WHERE c.ownerid = o.id AND o.id = d.ownerid "
            "AND c.make = 'Rare' AND o.country = 'DE' AND d.salary < 70000"
        )
        assert "PipelinePlan" in report
        assert "executed:" in report
        assert "driving-switch" in report
        assert "final order: c" in report

    def test_reports_no_events_for_stable_query(self, null_db):
        report = null_db.explain_analyze(
            "SELECT T.id FROM T WHERE T.id = 1",
            AdaptiveConfig(mode=ReorderMode.BOTH),
        )
        assert "none (the initial order held)" in report
