"""The engine-facing observability bundle.

A :class:`QueryObservability` groups an optional tracer, metrics
registry, and estimate sampler behind one object. Every instrumentation
site in the executor, access layer, and controller is guarded by a single
``if obs is not None`` check — with observability disabled the hot path
pays exactly one ``None`` comparison per site and performs no allocation,
no dict lookup, and no work-meter charge.

Probe-level tracing is **batched**: emitting a span per probe would dwarf
the execution itself, so probes are aggregated per leg and flushed as one
``probe-batch`` event every ``probe_batch`` incoming rows (and at query
end). Metrics counters are exact regardless of batching.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.obs.metrics import (
    MATCH_BUCKETS,
    RATIO_BUCKETS,
    MetricsRegistry,
)
from repro.obs.timeseries import EstimateSampler
from repro.obs.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.events import AdaptationEvent
    from repro.executor.pipeline import PipelineExecutor

DEFAULT_PROBE_BATCH = 64


class QueryObservability:
    """Bundle of tracer + metrics + sampler consulted by the engine."""

    def __init__(
        self,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        sampler: EstimateSampler | None = None,
        probe_batch: int = DEFAULT_PROBE_BATCH,
    ) -> None:
        if probe_batch < 1:
            raise ValueError("probe_batch must be >= 1")
        self.tracer = tracer
        self.metrics = metrics
        self.sampler = sampler
        self.probe_batch = probe_batch
        # Flight-recorder decision audit (obs/recorder.py). Fed only at the
        # controller's cold check points, so it does not make the bundle hot.
        self.audit = None
        # ``hot`` = some per-row/per-probe consumer is armed. The executor
        # only wires the hot hook sites (and gives up its turbo/fast batched
        # paths) for hot bundles; a recorder-only bundle stays on the exact
        # same code path as observability-off execution.
        self.hot = (
            tracer is not None or metrics is not None or sampler is not None
        )
        # Per-leg probe accumulators: [probes, index_matches, rows_out].
        self._batches: dict[str, list[int]] = {}
        if metrics is not None:
            m = metrics
            self._rows_emitted = m.counter(
                "query_rows_emitted_total", "rows emitted by the join pipeline"
            )
            self._driving_rows = m.counter(
                "driving_rows_total", "rows produced by the driving leg"
            )
            self._rows_in = m.counter(
                "leg_rows_in_total", "incoming outer rows probed at the leg"
            )
            self._index_matches = m.counter(
                "leg_index_matches_total", "access-method candidates at the leg"
            )
            self._rows_out = m.counter(
                "leg_rows_out_total", "rows surviving all of the leg's predicates"
            )
            self._scan_rows = m.counter(
                "scan_rows_total", "driving-scan rows fetched"
            )
            self._scan_survived = m.counter(
                "scan_rows_survived_total",
                "driving-scan rows surviving residual locals",
            )
            self._depletions = m.counter(
                "suffix_depletions_total", "depleted-state entries by position"
            )
            self._checks = m.counter(
                "reorder_checks_total", "reorder checks by kind and outcome"
            )
            self._events = m.counter(
                "adaptation_events_total", "applied adaptation events by kind"
            )
            self._retries = m.counter(
                "fault_retries_total", "transient-fault retries by site"
            )
            self._cache_hits = m.counter(
                "probe_cache_hits_total", "probe-cache hits by leg"
            )
            self._cache_misses = m.counter(
                "probe_cache_misses_total", "probe-cache misses by leg"
            )
            self._positions = m.gauge(
                "leg_position", "current pipeline position of the leg"
            )
            self._match_histogram = m.histogram(
                "probe_index_matches",
                MATCH_BUCKETS,
                "per-probe access-method candidate counts",
            )
            self._sel_error = m.histogram(
                "selectivity_error_ratio",
                RATIO_BUCKETS,
                "measured Eq (7) selectivity over the optimizer prior",
            )

    @classmethod
    def armed(
        cls,
        trace: bool = True,
        metrics: bool = True,
        sample_every: int | None = 10,
        probe_batch: int = DEFAULT_PROBE_BATCH,
    ) -> "QueryObservability":
        """A fully armed bundle (the ``obs=True`` facade default)."""
        return cls(
            tracer=Tracer() if trace else None,
            metrics=MetricsRegistry() if metrics else None,
            sampler=(
                EstimateSampler(every=sample_every)
                if sample_every is not None
                else None
            ),
            probe_batch=probe_batch,
        )

    # ------------------------------------------------------------------
    # Hot-path hooks (the engine guards each call with one None check)
    # ------------------------------------------------------------------
    def on_probe(self, alias: str, index_matches: int, rows_out: int) -> None:
        if self.metrics is not None:
            self._rows_in.inc(alias)
            self._index_matches.inc(alias, index_matches)
            self._rows_out.inc(alias, rows_out)
            self._match_histogram.observe(index_matches, alias)
        if self.tracer is not None:
            batch = self._batches.get(alias)
            if batch is None:
                batch = [0, 0, 0]
                self._batches[alias] = batch
            batch[0] += 1
            batch[1] += index_matches
            batch[2] += rows_out
            if batch[0] >= self.probe_batch:
                self._flush_batch(alias, batch)

    def on_probe_cache(self, alias: str, hit: bool) -> None:
        """A batched probe consulted the probe cache (hit or miss)."""
        if self.metrics is not None:
            (self._cache_hits if hit else self._cache_misses).inc(alias)

    def on_driving_batch(self, alias: str, size: int) -> None:
        """The batched executor pre-resolved *size* driving rows."""
        if self.tracer is not None:
            self.tracer.event(
                "driving-batch", kind="leg", leg=alias, rows=size
            )

    def on_scan_row(self, alias: str, survived: bool) -> None:
        if self.metrics is not None:
            self._scan_rows.inc(alias)
            if survived:
                self._scan_survived.inc(alias)

    def on_driving_row(self, pipeline: "PipelineExecutor") -> None:
        if self.metrics is not None:
            self._driving_rows.inc(pipeline.order[0])
        if self.sampler is not None:
            self.sampler.on_driving_row(pipeline)

    def on_rows_emitted(self, count: int = 1) -> None:
        if self.metrics is not None:
            self._rows_emitted.inc(amount=count)

    def on_suffix_depleted(self, position: int) -> None:
        if self.metrics is not None:
            self._depletions.inc(str(position))

    # ------------------------------------------------------------------
    # Structural hooks (cold path: opens, checks, events, faults)
    # ------------------------------------------------------------------
    def on_leg_open(self, alias: str, resumed: bool) -> None:
        if self.tracer is not None:
            self.tracer.event(
                "leg-open", kind="leg", leg=alias, resumed=resumed
            )

    def on_check(
        self,
        kind: str,
        applied: bool,
        driving_rows: int,
        position: int = 0,
    ) -> None:
        """A reorder check ran; *applied* says whether it changed the order."""
        if self.metrics is not None:
            # Catalogue labels: inner-reorder / inner-keep /
            # driving-switch / driving-keep.
            if applied:
                outcome = "reorder" if kind == "inner" else "switch"
            else:
                outcome = "keep"
            self._checks.inc(f"{kind}-{outcome}")
        if self.tracer is not None:
            self.tracer.event(
                "reorder-check",
                kind="check",
                check=kind,
                applied=applied,
                position=position,
                driving_rows=driving_rows,
            )

    def on_event(self, event: "AdaptationEvent") -> None:
        if self.metrics is not None:
            self._events.inc(event.kind.value)
        if self.tracer is not None:
            self.tracer.event(
                "adaptation",
                kind="adapt",
                event=event.kind.value,
                old_order=event.old_order,
                new_order=event.new_order,
                driving_rows=event.driving_rows_produced,
                est_current_cost=event.estimated_current_cost,
                est_new_cost=event.estimated_new_cost,
            )

    def on_order_change(self, order: tuple[str, ...]) -> None:
        if self.metrics is not None:
            for position, alias in enumerate(order):
                self._positions.set(position, alias)

    def on_fault_retry(self, site: str) -> None:
        if self.metrics is not None:
            self._retries.inc(site)
        if self.tracer is not None:
            self.tracer.event("fault-retry", kind="event", site=site)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _flush_batch(self, alias: str, batch: list[int]) -> None:
        assert self.tracer is not None
        self.tracer.event(
            "probe-batch",
            kind="leg",
            leg=alias,
            probes=batch[0],
            index_matches=batch[1],
            rows_out=batch[2],
        )
        batch[0] = batch[1] = batch[2] = 0

    def finish(self, pipeline: "PipelineExecutor | None" = None) -> None:
        """Flush batches, record final state, close dangling spans."""
        if self.tracer is not None:
            for alias, batch in self._batches.items():
                if batch[0] > 0:
                    self._flush_batch(alias, batch)
        if pipeline is not None:
            self.on_order_change(tuple(pipeline.order))
            if self.sampler is not None:
                self.sampler.sample(pipeline)
            if self.metrics is not None:
                self._observe_selectivity_errors(pipeline)
                self._observe_probe_cache_rates(pipeline)
            if self.audit is not None:
                self.audit.on_finish(pipeline)
        if self.tracer is not None:
            self.tracer.close_all()

    def _observe_probe_cache_rates(self, pipeline: "PipelineExecutor") -> None:
        """Per-leg probe-cache hit rate as a proper registry gauge.

        EXPLAIN ANALYZE reads the cache counts off the WorkMeter; here the
        per-leg ``probe_cache_hits_total`` / ``..._misses_total`` counters
        (exact, hot-path) are folded into one ``probe_cache_hit_rate{leg}``
        gauge so the rate shows up in ``stats`` / Prometheus exposition
        without consumers re-deriving it. Legs that never consulted the
        cache (cache off, or the scalar executor) report no series — the
        historical "default 0" quirk stays confined to EXPLAIN ANALYZE.
        """
        gauge = self.metrics.gauge(
            "probe_cache_hit_rate", "probe-cache hit rate by leg"
        )
        for alias in pipeline.order:
            hits = self._cache_hits.value(alias)
            misses = self._cache_misses.value(alias)
            lookups = hits + misses
            if lookups > 0:
                gauge.set(hits / lookups, alias)

    def _observe_selectivity_errors(self, pipeline: "PipelineExecutor") -> None:
        """Fold final measured-vs-prior selectivity ratios into the histogram."""
        for position, alias in enumerate(pipeline.order):
            if position == 0:
                continue
            leg = pipeline.legs[alias]
            config = leg.probe_config
            if config is None or config.access_predicate is None:
                continue
            measured = leg.monitor.index_join_selectivity(leg.base_cardinality)
            if measured is None or measured <= 0:
                continue
            predicate = config.access_predicate
            class_id = pipeline.join_graph.class_id(
                predicate.left, predicate.left_column
            )
            if class_id is None:
                continue
            prior = pipeline.plan.class_selectivities.get(class_id)
            if prior is None or prior <= 0:
                continue
            self._sel_error.observe(measured / prior, alias)

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        if self.metrics is not None:
            out["metrics"] = self.metrics.as_dict()
        if self.sampler is not None:
            out["samples"] = self.sampler.as_dicts()
        if self.tracer is not None:
            out["spans"] = [span.to_dict() for span in self.tracer.spans]
        return out
