"""Unit tests for repro.storage.table."""

import pytest

from repro.errors import StorageError
from repro.storage.schema import Column, TableSchema
from repro.storage.table import HeapTable
from repro.storage.types import ColumnType


def make_table() -> HeapTable:
    schema = TableSchema(
        "t", [Column("id", ColumnType.INT), Column("v", ColumnType.STRING)]
    )
    return HeapTable(schema)


class TestInsert:
    def test_rids_are_sequential(self):
        table = make_table()
        assert table.insert([1, "a"]) == 0
        assert table.insert([2, "b"]) == 1

    def test_insert_many_counts(self):
        table = make_table()
        assert table.insert_many([(i, "x") for i in range(5)]) == 5
        assert len(table) == 5

    def test_cardinality(self):
        table = make_table()
        table.insert([1, "a"])
        assert table.cardinality == 1

    def test_invalid_row_rejected(self):
        table = make_table()
        with pytest.raises(StorageError):
            table.insert(["not-int", "a"])


class TestFetch:
    def test_fetch_returns_row(self):
        table = make_table()
        table.insert([1, "a"])
        assert table.fetch(0) == (1, "a")

    def test_fetch_charges_work(self):
        table = make_table()
        table.insert([1, "a"])
        before = table.meter.row_fetches
        table.fetch(0)
        assert table.meter.row_fetches == before + 1

    def test_peek_does_not_charge(self):
        table = make_table()
        table.insert([1, "a"])
        before = table.meter.row_fetches
        table.peek(0)
        assert table.meter.row_fetches == before

    @pytest.mark.parametrize("rid", [-1, 1, 100])
    def test_bad_rid(self, rid):
        table = make_table()
        table.insert([1, "a"])
        with pytest.raises(StorageError, match="out of range"):
            table.fetch(rid)


class TestScan:
    def test_scan_order_is_rid_order(self):
        table = make_table()
        table.insert_many([(i, "x") for i in range(4)])
        assert [rid for rid, _ in table.scan()] == [0, 1, 2, 3]

    def test_scan_charges_per_row(self):
        table = make_table()
        table.insert_many([(i, "x") for i in range(4)])
        before = table.meter.row_fetches
        list(table.scan())
        assert table.meter.row_fetches == before + 4

    def test_column_values(self):
        table = make_table()
        table.insert_many([(1, "a"), (2, "b")])
        assert table.column_values("v") == ["a", "b"]
        assert table.column_values("id") == [1, 2]
