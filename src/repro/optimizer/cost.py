"""The pipelined-plan cost model (Sec 3.2) and rank ordering (Sec 3.3).

Cost of a pipelined plan (Eq 1)::

    Cost(plan) = sum_i  PC(T_o(i)) * prod_{j<i} JC(T_o(j))

with ``JC(T_o(0)) = 1`` and ``JC(T_o(1)) = C_LEG(T_o(1))``. The first term is
therefore the driving leg's *whole-scan* cost counted once; each inner leg's
probe cost is paid once per row flowing into it.

Rank of an inner leg (Eq 3)::

    rank(T) = (JC(T) - 1) / PC(T)

By the adjacent-sequence-interchange (ASI) property, for a fixed driving leg
and position-independent parameters, ordering inner legs by ascending rank
(Eq 4) minimises Eq 1.

The same model is used twice: at compile time with optimizer estimates, and
at run time with monitored values (Sec 4.3). Both sides implement
:class:`LegParamsProvider`; parameters are *position dependent* (``bound``
is the set of legs already in the pipeline before this one) because join
predicate availability changes with the order in cyclic graphs (Sec 4.3.4).

Probe-cost helpers model the engine's actual work-unit charges so that the
optimizer's PC and the meter's measured work agree in expectation.
"""

from __future__ import annotations

from typing import Iterable, Protocol, Sequence

from repro.query.joingraph import JoinGraph
from repro.storage import counters


class LegParamsProvider(Protocol):
    """Position-dependent (JC, PC) parameters for cost evaluation."""

    def driving_params(self, alias: str) -> tuple[float, float]:
        """Return (C_LEG, whole-scan PC) for *alias* as the driving leg."""
        ...

    def inner_params(self, alias: str, bound: frozenset[str]) -> tuple[float, float]:
        """Return (JC, per-row PC) for *alias* as an inner leg after *bound*."""
        ...


def rank(jc: float, pc: float) -> float:
    """Eq (3): rank(T) = (JC(T) - 1) / PC(T)."""
    return (jc - 1.0) / max(pc, 1e-12)


def cost_of_order(order: Sequence[str], provider: LegParamsProvider) -> float:
    """Eq (1) evaluated left to right over *order*."""
    if not order:
        return 0.0
    cleg, scan_pc = provider.driving_params(order[0])
    cost = scan_pc
    flow = cleg
    bound = {order[0]}
    for alias in order[1:]:
        jc, pc = provider.inner_params(alias, frozenset(bound))
        cost += flow * pc
        flow *= jc
        bound.add(alias)
    return cost


def greedy_rank_suffix(
    prefix: Sequence[str],
    remaining: Iterable[str],
    graph: JoinGraph,
    provider: LegParamsProvider,
) -> tuple[str, ...]:
    """Extend *prefix* with the remaining legs in ascending-rank order.

    Connectivity is respected: at each step only legs with at least one
    available join predicate are eligible, so no leg degenerates into a
    Cartesian product. (If the join graph itself is disconnected, the
    remaining legs are appended by rank as a last resort.)
    """
    order = list(prefix)
    remaining = [alias for alias in remaining if alias not in order]
    bound = set(order)
    while remaining:
        frozen = frozenset(bound)
        eligible = [
            alias
            for alias in remaining
            if graph.available_predicates(alias, frozen)
        ]
        if not eligible:
            eligible = list(remaining)
        ranked = min(
            eligible,
            key=lambda alias: rank(*provider.inner_params(alias, frozen)),
        )
        order.append(ranked)
        remaining.remove(ranked)
        bound.add(ranked)
    return tuple(order)


def greedy_rank_order(
    driving: str,
    inner_aliases: Iterable[str],
    graph: JoinGraph,
    provider: LegParamsProvider,
) -> tuple[str, ...]:
    """Full order for a fixed driving leg: Eq (4) ascending-rank greedily."""
    return greedy_rank_suffix((driving,), inner_aliases, graph, provider)


def best_order_exhaustive(
    aliases: Sequence[str],
    graph: JoinGraph,
    provider: LegParamsProvider,
    fixed_prefix: Sequence[str] = (),
) -> tuple[tuple[str, ...], float]:
    """Cheapest connected order by exhaustive enumeration.

    *fixed_prefix* pins the first legs (e.g. the already-running driving
    leg), so only the suffix is permuted. Suitable for the small pipelines
    (k <= 7) the paper evaluates; the search space is the set of connected
    orders, which is far smaller than k!.
    """
    best: tuple[str, ...] | None = None
    best_cost = float("inf")
    prefix = tuple(fixed_prefix)
    alias_set = set(aliases)
    for order in graph.connected_orders(prefix):
        if set(order) != alias_set:
            continue
        cost = cost_of_order(order, provider)
        if cost < best_cost:
            best, best_cost = order, cost
    if best is None:
        # Disconnected graph: fall back to the given order.
        best = tuple(aliases)
        best_cost = cost_of_order(best, provider)
    return best, best_cost


# ---------------------------------------------------------------------------
# Probe-cost models (aligned with WorkMeter charges)
# ---------------------------------------------------------------------------

def probe_cost_via_index(
    base_cardinality: float,
    index_match_fraction: float,
    residual_predicate_count: int,
) -> float:
    """Expected work units for one indexed probe of an inner leg.

    One index descend, then per matching entry: the entry touch, the heap
    fetch, and the residual predicate evaluations.
    """
    matches = max(base_cardinality * index_match_fraction, 0.0)
    per_match = (
        counters.INDEX_ENTRY_COST
        + counters.ROW_FETCH_COST
        + residual_predicate_count * counters.PREDICATE_EVAL_COST
    )
    return counters.INDEX_DESCEND_COST + matches * per_match


def probe_cost_via_scan(
    base_cardinality: float, predicate_count: int
) -> float:
    """Expected work units for one full-scan probe (no usable index)."""
    per_row = (
        counters.ROW_FETCH_COST
        + max(predicate_count, 1) * counters.PREDICATE_EVAL_COST
    )
    return base_cardinality * per_row


def probe_cost_via_hash(
    base_cardinality: float,
    match_fraction: float,
    residual_predicate_count: int,
) -> float:
    """Expected work units for one hash probe (Sec 6 extension).

    The one-off build cost is excluded: it is charged when the build
    happens and amortizes over the incoming rows (the monitored PC then
    calibrates the model).
    """
    matches = max(base_cardinality * match_fraction, 0.0)
    per_match = (
        counters.HASH_MATCH_COST
        + residual_predicate_count * counters.PREDICATE_EVAL_COST
    )
    return counters.HASH_PROBE_COST + matches * per_match


def driving_scan_cost_index(
    base_cardinality: float,
    index_selectivity: float,
    range_count: int,
    residual_predicate_count: int,
) -> float:
    """Whole-scan work units for an index-scan driving leg."""
    matches = max(base_cardinality * index_selectivity, 0.0)
    per_match = (
        counters.INDEX_ENTRY_COST
        + counters.ROW_FETCH_COST
        + residual_predicate_count * counters.PREDICATE_EVAL_COST
    )
    return max(range_count, 1) * counters.INDEX_DESCEND_COST + matches * per_match


def driving_scan_cost_table(
    base_cardinality: float, predicate_count: int
) -> float:
    """Whole-scan work units for a table-scan driving leg."""
    per_row = (
        counters.ROW_FETCH_COST
        + predicate_count * counters.PREDICATE_EVAL_COST
    )
    return base_cardinality * per_row
