"""The exception hierarchy is stable API: everything derives from ReproError."""

import pytest

from repro.errors import (
    CatalogError,
    ExecutionError,
    PlanError,
    QueryError,
    ReproError,
    SchemaError,
    SqlSyntaxError,
    StorageError,
)

ALL_ERRORS = [
    CatalogError,
    ExecutionError,
    PlanError,
    QueryError,
    SchemaError,
    SqlSyntaxError,
    StorageError,
]


@pytest.mark.parametrize("error_type", ALL_ERRORS)
def test_all_derive_from_repro_error(error_type):
    assert issubclass(error_type, ReproError)


def test_sql_syntax_error_is_query_error():
    assert issubclass(SqlSyntaxError, QueryError)


def test_sql_syntax_error_position():
    error = SqlSyntaxError("bad", position=7)
    assert error.position == 7
    assert "offset 7" in str(error)


def test_sql_syntax_error_without_position():
    error = SqlSyntaxError("bad")
    assert error.position is None
    assert str(error) == "bad"
