"""The DMV query workload: 5 four-table templates + the 6-table extension.

Sec 5 evaluates "five query templates whose query execution plans ... were
mostly pipelined index nested-loop joins", all 4-table joins "with different
local predicate combinations", about 300 queries total; Sec 5.5 adds a
6-table workload of 100 queries over the Location/Time extension.

Our templates instantiate the paper's own example queries:

* **T1** — Example 1: ``make IN (standard, luxury)`` with country and salary
  predicates; the mid-scan flip workload.
* **T2** — Example 3: correlated ``make``+``model`` and ``country3``+``city``
  pairs with an age predicate; the independence-assumption killer.
* **T3** — range-heavy: car year range, country, salary band.
* **T4** — accident-centric: damage and accident-year predicates; the
  optimizer must guess which index to drive with (the Sec 5.3 access-path
  failure mode).
* **T5** — join-cardinality trap: only Car and Accidents carry predicates,
  so the optimizer's default range selectivity makes Accidents look safe to
  probe early (estimated JC < 1); its true JC is well above 1, multiplying
  the flow into the unfiltered Owner/Demographics legs — exactly the
  inversion inner-leg reordering repairs at the first depleted state.

Every query is produced deterministically from (template grid, seed):
the grid mixes frequent and rare values so that some static plans are good
(no reorder should fire — the overhead population of Sec 5.4) and some are
badly wrong (the speedup population).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

# Parameter pools (values exist in the generated data; mixes of frequent
# and rare values are intentional — see module docstring).
MAKE_PAIRS = [
    ("Chevrolet", "Mercedes"),
    ("Ford", "BMW"),
    ("Toyota", "Lexus"),
    ("Mazda", "Audi"),
    ("Honda", "Porsche"),
]
COUNTRIES1 = ["Germany", "United States", "France", "Japan", "Egypt", "Sweden"]
SALARY_CUTS = [40_000, 55_000, 80_000]
MAKE_MODEL = [
    ("Chevrolet", "Caprice"),
    ("Mazda", "323"),
    ("Mercedes", "S500"),
    ("Ford", "F150"),
    ("Toyota", "Corolla"),
    ("BMW", "740i"),
]
COUNTRY3_CITY = [
    ("US", "Augusta"),
    ("EG", "Cairo"),
    ("DE", "Munich"),
    ("FR", "Paris"),
    ("JP", "Tokyo"),
]
AGE_CUTS = [35, 52, 70]
YEAR_RANGES = [(1985, 1992), (1993, 1999), (2000, 2006)]
SALARY_BANDS = [(20_000, 45_000), (45_000, 75_000), (75_000, 110_000)]
DAMAGE_CUTS = [2_000, 10_000, 30_000]
ACCIDENT_YEARS = [1998, 2001, 2004]
ACCIDENT_MIN_YEARS = [1996, 2000, 2003]
SINGLE_MAKES = ["Chevrolet", "Mazda", "Mercedes", "Porsche"]
CITIES = ["Augusta", "Berlin", "Cairo", "Paris", "Tokyo", "Stockholm"]
MODELS = ["Caprice", "323", "Civic", "S500", "911", "Golf"]

_FOUR_TABLE_FROM = (
    "FROM Owner o, Car c, Demographics d, Accidents a\n"
    "WHERE c.ownerid = o.id AND o.id = d.ownerid AND c.id = a.carid"
)


@dataclass(frozen=True)
class WorkloadQuery:
    """One generated query of the experimental workload."""

    qid: str
    template: int
    sql: str


def _t1(params: tuple) -> str:
    (make_a, make_b), country, salary = params
    return (
        "SELECT o.name, a.driver\n"
        f"{_FOUR_TABLE_FROM}\n"
        f"AND (c.make = '{make_a}' OR c.make = '{make_b}')\n"
        f"AND o.country1 = '{country}' AND d.salary < {salary}"
    )


def _t2(params: tuple) -> str:
    (make, model), (country3, city), age = params
    return (
        "SELECT o.name, a.driver\n"
        f"{_FOUR_TABLE_FROM}\n"
        f"AND c.make = '{make}' AND c.model = '{model}'\n"
        f"AND o.country3 = '{country3}' AND o.city = '{city}' AND d.age < {age}"
    )


def _t3(params: tuple) -> str:
    (year_lo, year_hi), country, (salary_lo, salary_hi) = params
    return (
        "SELECT o.name, c.year\n"
        f"{_FOUR_TABLE_FROM}\n"
        f"AND c.year BETWEEN {year_lo} AND {year_hi}\n"
        f"AND o.country1 = '{country}'\n"
        f"AND d.salary BETWEEN {salary_lo} AND {salary_hi}"
    )


def _t4(params: tuple) -> str:
    damage, accident_year, make, age = params
    return (
        "SELECT o.name, a.damage\n"
        f"{_FOUR_TABLE_FROM}\n"
        f"AND a.damage > {damage} AND a.year = {accident_year}\n"
        f"AND c.make = '{make}' AND d.age < {age}"
    )


def _t5(params: tuple) -> str:
    model, damage, accident_year = params
    return (
        "SELECT o.name, d.salary\n"
        f"{_FOUR_TABLE_FROM}\n"
        f"AND c.model = '{model}' AND a.damage > {damage}\n"
        f"AND a.year >= {accident_year}"
    )


def _grid(*pools: Sequence) -> list[tuple]:
    combos: list[tuple] = [()]
    for pool in pools:
        combos = [prefix + (value,) for prefix in combos for value in pool]
    return combos


_TEMPLATES: list[tuple[Callable[[tuple], str], list[tuple]]] = [
    (_t1, _grid(MAKE_PAIRS, COUNTRIES1, SALARY_CUTS)),               # 90
    (_t2, _grid(MAKE_MODEL, COUNTRY3_CITY, AGE_CUTS)),               # 90
    (_t3, _grid(YEAR_RANGES, COUNTRIES1, SALARY_BANDS)),             # 54
    (_t4, _grid(DAMAGE_CUTS, ACCIDENT_YEARS, SINGLE_MAKES, AGE_CUTS)),  # 108
    (_t5, _grid(MODELS, DAMAGE_CUTS, ACCIDENT_MIN_YEARS)),           # 54
]


def template_count() -> int:
    return len(_TEMPLATES)


def four_table_workload(
    queries_per_template: int = 60, seed: int = 5
) -> list[WorkloadQuery]:
    """The Sec 5.1/5.2/5.3 workload: 5 templates x N queries.

    The paper uses ~300 queries over 5 templates; the default grid sample
    matches that at 60 per template. Sampling is deterministic in *seed*.
    """
    rng = random.Random(seed)
    workload: list[WorkloadQuery] = []
    for template_no, (build, grid) in enumerate(_TEMPLATES, start=1):
        count = min(queries_per_template, len(grid))
        chosen = rng.sample(grid, count) if count < len(grid) else list(grid)
        for index, params in enumerate(chosen):
            workload.append(
                WorkloadQuery(
                    qid=f"T{template_no}-{index:03d}",
                    template=template_no,
                    sql=build(params),
                )
            )
    return workload


# ---------------------------------------------------------------------------
# Six-table extension (Sec 5.5)
# ---------------------------------------------------------------------------

_SIX_TABLE_FROM = (
    "FROM Owner o, Car c, Demographics d, Accidents a, Location l, Time t\n"
    "WHERE c.ownerid = o.id AND o.id = d.ownerid AND c.id = a.carid\n"
    "AND a.locationid = l.id AND a.timeid = t.id"
)

STATES = ["Maine", "Texas", "California", "Nevada"]
TIME_YEARS_POOL = [2002, 2004, 2006]
MONTHS = [1, 6, 12]


def _x1(params: tuple) -> str:
    (make_a, make_b), country, state, year = params
    return (
        "SELECT o.name, l.city, t.month\n"
        f"{_SIX_TABLE_FROM}\n"
        f"AND (c.make = '{make_a}' OR c.make = '{make_b}')\n"
        f"AND o.country1 = '{country}' AND l.state = '{state}' AND t.year = {year}"
    )


def _x2(params: tuple) -> str:
    make, salary, month, damage = params
    return (
        "SELECT o.name, a.damage, t.year\n"
        f"{_SIX_TABLE_FROM}\n"
        f"AND c.make = '{make}' AND d.salary < {salary}\n"
        f"AND l.urban = 1 AND t.month = {month} AND a.damage > {damage}"
    )


_SIX_TEMPLATES: list[tuple[Callable[[tuple], str], list[tuple]]] = [
    (_x1, _grid(MAKE_PAIRS[:4], COUNTRIES1[:4], STATES, TIME_YEARS_POOL)),
    (_x2, _grid(SINGLE_MAKES, SALARY_CUTS, MONTHS, DAMAGE_CUTS)),
]


def six_table_workload(count: int = 100, seed: int = 55) -> list[WorkloadQuery]:
    """The Sec 5.5 workload: 100 six-table joins over the extended schema."""
    rng = random.Random(seed)
    per_template = count // len(_SIX_TEMPLATES)
    workload: list[WorkloadQuery] = []
    for template_no, (build, grid) in enumerate(_SIX_TEMPLATES, start=1):
        take = min(per_template, len(grid))
        chosen = rng.sample(grid, take) if take < len(grid) else list(grid)
        for index, params in enumerate(chosen):
            workload.append(
                WorkloadQuery(
                    qid=f"X{template_no}-{index:03d}",
                    template=template_no,
                    sql=build(params),
                )
            )
    return workload
