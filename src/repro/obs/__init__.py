"""Observability for the adaptive executor: tracing, metrics, sampling.

The subsystem is **nullable by default**: the engine carries one optional
:class:`QueryObservability` reference and every instrumentation site costs
a single ``is None`` check when observability is off. Nothing in this
package ever charges the deterministic work meter — armed observability
changes wall-clock time only, never work units or query results.

Pieces (see each module's docstring for the full contract):

* :mod:`repro.obs.trace` — structured spans (parse/optimize/execute,
  leg opens, probe batches, reorder checks, adaptations) with JSONL and
  tree rendering;
* :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket histograms
  under Prometheus-style names;
* :mod:`repro.obs.timeseries` — periodic snapshots of the monitors'
  Eq (5-11) estimates for convergence analysis;
* :mod:`repro.obs.observer` — the engine-facing bundle of all three;
* :mod:`repro.obs.explain` — the EXPLAIN ANALYZE report renderer;
* :mod:`repro.obs.recorder` — the always-on flight recorder (per-query
  records with the decision audit, ring buffer + rotating JSONL store);
* :mod:`repro.obs.audit` — offline replay of recorded queries ("why did
  the driving leg switch at row N");
* :mod:`repro.obs.analytics` — per-template aggregates over recorded
  telemetry (estimate-error feedback input);
* :mod:`repro.obs.schema` — the declarative JSONL schemas shared by the
  validators and ``scripts/validate_trace.py``.
"""

from repro.obs.analytics import TelemetryAnalytics
from repro.obs.audit import (
    load_records,
    reconstruct_events,
    render_diff,
    render_listing,
    render_replay,
)
from repro.obs.explain import render_explain_analyze
from repro.obs.metrics import (
    MATCH_BUCKETS,
    RATIO_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.observer import QueryObservability
from repro.obs.recorder import (
    DecisionRecord,
    FlightRecord,
    FlightRecorder,
    FlightRecording,
    RankTerm,
    TelemetryStore,
)
from repro.obs.timeseries import EstimateSample, EstimateSampler
from repro.obs.trace import JSONL_KEYS, SPAN_KINDS, Span, Tracer

__all__ = [
    "Counter",
    "DecisionRecord",
    "EstimateSample",
    "EstimateSampler",
    "FlightRecord",
    "FlightRecorder",
    "FlightRecording",
    "Gauge",
    "Histogram",
    "JSONL_KEYS",
    "MATCH_BUCKETS",
    "MetricsRegistry",
    "QueryObservability",
    "RATIO_BUCKETS",
    "RankTerm",
    "SPAN_KINDS",
    "Span",
    "TelemetryAnalytics",
    "TelemetryStore",
    "Tracer",
    "load_records",
    "reconstruct_events",
    "render_diff",
    "render_listing",
    "render_replay",
    "render_explain_analyze",
]
