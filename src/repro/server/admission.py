"""Admission control: bounded queues, worker slots, degradation ladder.

The server never buffers without bound. A query is either

1. **admitted** — it takes a queue slot (global and per-session caps) and
   later a worker slot (the concurrency semaphore), or
2. **rejected** — an explicit ``REJECTED_OVERLOAD`` / ``RATE_LIMITED`` /
   ``SHUTTING_DOWN`` response, immediately, while the session stays
   healthy.

Between "fully admitted" and "rejected" sits the **degradation ladder**
(Sec "graceful degradation" of the serving design): as queue pressure
rises the server first strips intra-query parallelism (``serial``), then
strips the adaptive layer entirely and runs the static plan
(``static``) — both are strictly-less-work execution modes with identical
results — and only rejects once the bounded queue is actually full.

State machine per query::

    submit ──draining───────────────────────▶ SHUTTING_DOWN
       │
       ├─queue full (global or session)─────▶ REJECTED_OVERLOAD
       │
       ├─rate bucket empty──────────────────▶ RATE_LIMITED
       │
       ▼
    QUEUED ──scheduler round-robin──▶ RUNNING(shed level from pressure)
       │                                 │
       │ disconnect: dropped             ├─ ok / BUDGET_EXCEEDED / CANCELLED
       ▼                                 ▼
     (dropped, no response)           response
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import AdaptiveConfig, ReorderMode
from repro.robustness.limits import CancellationToken, ExecutionLimits
from repro.server.protocol import ErrorCode, QueryRequest
from repro.server.session import Session

#: Degradation ladder levels, mildest first. On the columnar backend the
#: rungs map onto the vectorized engines: ``none`` runs the parallel
#: vectorized cascades (per-worker adaptive chunks), ``serial`` the
#: single-process adaptive cascade, and ``static`` the non-adaptive
#: whole-query cascade — each rung sheds coordination cost, never the
#: kernel execution itself.
SHED_NONE = "none"      # requested config, parallelism allowed
SHED_SERIAL = "serial"  # strip intra-query parallelism
SHED_STATIC = "static"  # strip the adaptive layer: static plan, serial


@dataclass(frozen=True)
class ServerConfig:
    """QoS knobs of one server instance (all enforced server-side)."""

    host: str = "127.0.0.1"
    port: int = 7654
    # Worker slots: queries executing concurrently (the semaphore width).
    max_concurrency: int = 4
    # Bounded admission queue (beyond the executing queries); full → reject.
    max_queue_depth: int = 32
    # Per-session cap inside the global queue, so one pipelining client
    # cannot occupy the whole admission budget.
    max_queue_per_session: int = 8
    # Per-request budget defaults and server-side maxima. A client may ask
    # for less than the default or more — up to the max — never beyond.
    default_timeout_ms: float = 10_000.0
    max_timeout_ms: float = 60_000.0
    default_max_rows: int = 100_000
    max_max_rows: int = 1_000_000
    # Optional per-query work-unit ceiling (None = unlimited).
    max_work_units: float | None = None
    # Token bucket per session; rate <= 0 disables rate limiting.
    rate_limit_qps: float = 0.0
    rate_limit_burst: float = 8.0
    # Degradation ladder thresholds as fractions of max_queue_depth.
    shed_serial_at: float = 0.25
    shed_static_at: float = 0.50
    # Intra-query parallelism granted to fully-admitted queries (1 = off).
    # Parallel-granted queries trade their row/work caps for barrier-
    # enforced deadline+cancellation (see executor/parallel.py).
    engine_workers: int = 1
    # Batched executor settings for served queries (0 batch = scalar path).
    engine_batch_size: int = 256
    # Shared plan-cache capacity (normalized statements; 0 disables).
    plan_cache_size: int = 256
    # Seconds to wait for in-flight queries on SIGTERM before cancelling.
    drain_grace_seconds: float = 10.0
    # Flight recorder: every query leaves a record in a bounded in-memory
    # ring; setting a directory additionally drains records to rotating
    # JSONL segments (size-capped, atomic finalization, oldest pruned).
    telemetry_dir: str | None = None
    telemetry_ring: int = 256
    telemetry_segment_bytes: int = 1_048_576
    telemetry_segments: int = 16
    # Slow-query log: queries at/above this wall-clock threshold are kept
    # in a dedicated ring and logged with their full flight record
    # (None disables the slow log; records are still captured).
    slow_query_ms: float | None = None

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.max_queue_per_session < 1:
            raise ValueError("max_queue_per_session must be >= 1")
        if not 0.0 <= self.shed_serial_at <= 1.0:
            raise ValueError("shed_serial_at must be in [0, 1]")
        if not self.shed_serial_at <= self.shed_static_at <= 1.0:
            raise ValueError(
                "shed thresholds must satisfy serial <= static <= 1"
            )
        if self.default_timeout_ms > self.max_timeout_ms:
            raise ValueError("default_timeout_ms must be <= max_timeout_ms")
        if self.default_max_rows > self.max_max_rows:
            raise ValueError("default_max_rows must be <= max_max_rows")
        if self.engine_workers < 1:
            raise ValueError("engine_workers must be >= 1")
        if self.telemetry_ring < 1:
            raise ValueError("telemetry_ring must be >= 1")
        if self.telemetry_segment_bytes < 1:
            raise ValueError("telemetry_segment_bytes must be >= 1")
        if self.telemetry_segments < 1:
            raise ValueError("telemetry_segments must be >= 1")
        if self.slow_query_ms is not None and self.slow_query_ms <= 0:
            raise ValueError("slow_query_ms must be positive (or None)")


@dataclass
class AdmissionDecision:
    """Outcome of one submit: either admitted or a rejection code."""

    admitted: bool
    reject_code: str | None = None
    reject_reason: str | None = None


@dataclass
class AdmissionController:
    """Bounded admission state shared by every session.

    Queue accounting lives here (the scheduler owns the actual FIFOs);
    worker-slot accounting (`in_flight`) is incremented by the server's
    worker loops. Everything runs on the event loop thread — no locks.
    """

    config: ServerConfig
    queued: int = 0
    in_flight: int = 0
    draining: bool = False
    # Lifetime counters, surfaced by the stats op.
    accepted_total: int = 0
    rejected_overload_total: int = 0
    rejected_rate_limit_total: int = 0
    rejected_draining_total: int = 0
    shed_totals: dict = field(
        default_factory=lambda: {SHED_SERIAL: 0, SHED_STATIC: 0}
    )

    def submit(self, session: Session) -> AdmissionDecision:
        """Decide admission for one more query from *session*."""
        if self.draining:
            self.rejected_draining_total += 1
            return AdmissionDecision(
                False,
                ErrorCode.SHUTTING_DOWN,
                "server is draining; no new queries accepted",
            )
        # Queue-capacity checks run before the rate bucket so an overload
        # rejection never also burns a token — otherwise retrying clients
        # would be double-penalized exactly when backoff is wanted.
        if self.queued >= self.config.max_queue_depth:
            self.rejected_overload_total += 1
            session.rejected += 1
            return AdmissionDecision(
                False,
                ErrorCode.REJECTED_OVERLOAD,
                f"admission queue full ({self.queued} queued)",
            )
        if len(session.queue) >= self.config.max_queue_per_session:
            self.rejected_overload_total += 1
            session.rejected += 1
            return AdmissionDecision(
                False,
                ErrorCode.REJECTED_OVERLOAD,
                f"session queue full "
                f"({len(session.queue)} queued by {session.name})",
            )
        if not session.bucket.try_take():
            self.rejected_rate_limit_total += 1
            session.rejected += 1
            return AdmissionDecision(
                False,
                ErrorCode.RATE_LIMITED,
                f"rate limit exceeded "
                f"({self.config.rate_limit_qps:g} queries/s, "
                f"burst {self.config.rate_limit_burst:g})",
            )
        self.accepted_total += 1
        self.queued += 1
        return AdmissionDecision(True)

    def on_dequeued(self, count: int = 1) -> None:
        self.queued = max(0, self.queued - count)

    # -- degradation ladder -------------------------------------------
    def shed_level(self) -> str:
        """Current rung of the degradation ladder, from queue pressure."""
        pressure = self.queued / self.config.max_queue_depth
        if pressure >= self.config.shed_static_at:
            return SHED_STATIC
        if pressure >= self.config.shed_serial_at:
            return SHED_SERIAL
        return SHED_NONE

    def apply_shed(
        self, request: QueryRequest, shed: str
    ) -> AdaptiveConfig:
        """The :class:`AdaptiveConfig` actually executed for *request*.

        ``none``   → requested mode, parallel workers as granted;
        ``serial`` → requested mode, workers forced to 1;
        ``static`` → mode NONE (static plan, no monitors), workers 1.
        Sheds are recorded in :attr:`shed_totals`.
        """
        config = self.config
        if shed == SHED_STATIC:
            self.shed_totals[SHED_STATIC] += 1
            mode, workers = ReorderMode.NONE, 1
        elif shed == SHED_SERIAL:
            self.shed_totals[SHED_SERIAL] += 1
            mode, workers = request.mode, 1
        else:
            granted = min(request.workers or 1, config.engine_workers)
            mode, workers = request.mode, max(granted, 1)
        batched = config.engine_batch_size > 0
        return AdaptiveConfig(
            mode=mode,
            workers=workers,
            batched=batched,
            batch_size=config.engine_batch_size if batched else 256,
            monitor_granularity="chunk" if (batched and mode.monitors) else "exact",
        )

    def build_limits(
        self,
        request: QueryRequest,
        applied: AdaptiveConfig,
        token: CancellationToken | None = None,
    ) -> tuple[ExecutionLimits, CancellationToken]:
        """Server-clamped budgets for one request.

        Client-requested budgets are clamped to the server maxima; absent
        budgets get the server defaults. Parallel-granted executions drop
        the row/work caps (enforced per-process only) and keep the
        deadline + cancellation pair, which the parallel coordinator
        enforces at wave barriers. *token* is the query's cancellation
        token — created at admission time so a disconnect can cancel the
        query while it is still queued.
        """
        config = self.config
        if token is None:
            token = CancellationToken()
        timeout_ms = min(
            request.timeout_ms or config.default_timeout_ms,
            config.max_timeout_ms,
        )
        if applied.workers > 1:
            max_rows = None
            max_work = None
        else:
            max_rows = min(
                request.max_rows or config.default_max_rows,
                config.max_max_rows,
            )
            max_work = config.max_work_units
        return (
            ExecutionLimits(
                max_rows=max_rows,
                max_work_units=max_work,
                timeout_seconds=timeout_ms / 1000.0,
                cancellation=token,
            ),
            token,
        )
