"""A shared cross-query plan cache with single-flight stampede protection.

Keyed by the **normalized statement text** (whitespace-canonical, literals
preserved — see :func:`repro.server.protocol.normalize_sql`): a
:class:`~repro.optimizer.plans.PipelinePlan` embeds its predicate
constants, so only semantically identical statements may share a plan.
The :func:`~repro.server.protocol.template_signature` (literals → ``?``)
is carried per entry for metrics grouping only.

Single-flight: when N worker threads miss on the same key at once, one
becomes the *leader* and plans; the other N-1 block on the entry's event
and reuse the leader's plan — the optimizer runs once per statement per
catalog generation, never once per concurrent request (the classic cache
stampede). If the leader fails, a waiter is promoted and retries, so one
poisoned request cannot wedge the key.

Entries are LRU-bounded and invalidated by catalog generation (the same
fingerprint that invalidates the parallel fork pool), so DDL between
queries can never serve a stale plan. Thread-safe: worker threads plan,
the event loop reads stats.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable

from repro.server.protocol import normalize_sql, template_signature

#: get_or_plan outcomes (also used as metrics labels).
HIT = "hit"
MISS = "miss"
WAIT = "wait"  # blocked on another thread's in-flight planning, then hit


class _InFlight:
    """Leader/waiter rendezvous for one key being planned."""

    __slots__ = ("event", "plan", "error", "generation")

    def __init__(self, generation: tuple) -> None:
        self.event = threading.Event()
        self.plan: Any = None
        self.error: BaseException | None = None
        # The catalog generation the leader plans under; waiters admitted
        # under a different generation must not reuse the leader's plan.
        self.generation = generation


class PlanCache:
    """LRU plan cache with generation invalidation and single-flight."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        # key -> (plan, generation); OrderedDict for LRU order.
        self._entries: "OrderedDict[str, tuple[Any, tuple]]" = OrderedDict()
        self._in_flight: dict[str, _InFlight] = {}
        self.hits = 0
        self.misses = 0
        self.waits = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def key_of(sql: str) -> str:
        return normalize_sql(sql)

    def get_or_plan(
        self,
        sql: str,
        generation: tuple,
        planner: Callable[[str], Any],
    ) -> tuple[Any, str]:
        """Return ``(plan, outcome)`` where outcome is hit/miss/wait.

        *planner* is invoked (outside the cache lock) by at most one
        thread per key at a time; its exceptions propagate to the leader
        and every waiter of that round.
        """
        if self.capacity <= 0:
            self.misses += 1
            return planner(sql), MISS
        key = self.key_of(sql)
        while True:
            with self._lock:
                cached = self._entries.get(key)
                if cached is not None:
                    plan, cached_generation = cached
                    if cached_generation == generation:
                        self._entries.move_to_end(key)
                        self.hits += 1
                        return plan, HIT
                    # Stale: the catalog changed since this was planned.
                    del self._entries[key]
                    self.invalidations += 1
                flight = self._in_flight.get(key)
                if flight is None:
                    flight = _InFlight(generation)
                    self._in_flight[key] = flight
                    leader = True
                else:
                    leader = False
            if leader:
                try:
                    plan = planner(sql)
                    flight.plan = plan
                except BaseException as error:
                    flight.error = error
                    raise
                finally:
                    with self._lock:
                        self._in_flight.pop(key, None)
                        if flight.error is None and flight.plan is not None:
                            self._entries[key] = (flight.plan, generation)
                            self._entries.move_to_end(key)
                            self._evict_over_capacity()
                        self.misses += 1
                    flight.event.set()
                return plan, MISS
            flight.event.wait()
            if (
                flight.error is None
                and flight.plan is not None
                and flight.generation == generation
            ):
                with self._lock:
                    self.waits += 1
                return flight.plan, WAIT
            # Leader failed, or planned under a different catalog
            # generation than ours — loop around and retry as a new
            # leader (the locked lookup re-validates the cached entry).

    def _evict_over_capacity(self) -> None:
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "single_flight_waits": self.waits,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }

    def entry_templates(self) -> list[str]:
        """Template signatures of the cached statements (metrics/debug)."""
        with self._lock:
            keys = list(self._entries)
        return [template_signature(key) for key in keys]
