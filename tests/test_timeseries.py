"""Estimate sampling and histogram quantile edge cases (obs plane).

``Histogram.quantile`` is an interpolating estimator over fixed cumulative
buckets (the Prometheus rule); its edge cases — nothing observed, a single
populated bucket, non-finite observations, and interleaved writers — must
degrade predictably because the stats plane and the analytics CLI both
consume it without further guards.
"""

from __future__ import annotations

import math
import threading
from types import SimpleNamespace

import pytest

from repro import AdaptiveConfig, QueryObservability, ReorderMode
from repro.obs.metrics import MetricsRegistry, Histogram
from repro.obs.timeseries import EstimateSampler


# ---------------------------------------------------------------------------
# Histogram.quantile edge cases
# ---------------------------------------------------------------------------
class TestHistogramQuantileEdges:
    def make(self, boundaries=(1.0, 2.0, 4.0, 8.0)) -> Histogram:
        return Histogram("h", boundaries)

    def test_empty_histogram_returns_none(self):
        h = self.make()
        assert h.quantile(0.5) is None
        assert h.quantile(1.0) is None
        assert h.mean() is None

    def test_invalid_q_rejected(self):
        h = self.make()
        h.observe(1.0)
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                h.quantile(bad)

    def test_single_bucket_interpolates_within_it(self):
        h = self.make()
        for _ in range(10):
            h.observe(1.5)  # everything lands in the (1, 2] bucket
        for q in (0.1, 0.5, 0.9, 1.0):
            estimate = h.quantile(q)
            assert 1.0 <= estimate <= 2.0
        # The first finite bucket interpolates from zero.
        g = self.make()
        g.observe(0.5)
        assert 0.0 <= g.quantile(0.5) <= 1.0

    def test_overflow_bucket_clamps_to_highest_boundary(self):
        h = self.make()
        h.observe(100.0)  # +Inf bucket
        assert h.quantile(0.5) == 8.0
        assert h.quantile(1.0) == 8.0

    def test_nan_and_inf_observations_are_dropped(self):
        h = self.make()
        h.observe(2.5)
        for poison in (float("nan"), float("inf"), float("-inf")):
            h.observe(poison)
        assert h.count() == 1
        assert h.sum() == 2.5
        assert math.isfinite(h.quantile(0.5))
        assert math.isfinite(h.mean())

    def test_quantile_monotone_in_q(self):
        h = self.make()
        for value in (0.2, 0.9, 1.1, 1.7, 2.5, 3.9, 5.0, 7.5, 9.0, 50.0):
            h.observe(value)
        grid = [i / 20 for i in range(1, 21)]
        estimates = [h.quantile(q) for q in grid]
        assert estimates == sorted(estimates)

    def test_monotone_under_interleaved_writers(self):
        """Concurrent observers never break cumulative-count monotonicity."""
        h = self.make()

        def writer(offset: float) -> None:
            for i in range(500):
                h.observe(offset + (i % 10), label="leg")

        threads = [
            threading.Thread(target=writer, args=(off,)) for off in (0.0, 0.5)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count("leg") == 1000
        grid = [i / 10 for i in range(1, 11)]
        estimates = [h.quantile(q, "leg") for q in grid]
        assert estimates == sorted(estimates)
        # Bucket counts reconcile with the total count.
        assert sum(h.buckets("leg").values()) == h.count("leg")

    def test_labels_are_independent(self):
        h = self.make()
        h.observe(1.5, "a")
        h.observe(7.5, "b")
        assert h.quantile(1.0, "a") <= 2.0
        assert h.quantile(1.0, "b") > 4.0
        assert h.quantile(0.5, "missing") is None

    def test_boundary_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", ())
        with pytest.raises(ValueError):
            Histogram("h", (2.0, 1.0))


# ---------------------------------------------------------------------------
# Prometheus exposition (consumed by the server's telemetry op)
# ---------------------------------------------------------------------------
class TestPrometheusExposition:
    def test_counter_gauge_histogram_series(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "served requests").inc("a", 3)
        registry.gauge("depth", "queue depth").set(2.0)
        h = registry.histogram("latency", (1.0, 2.0), "latency")
        h.observe(0.5, "leg")
        h.observe(5.0, "leg")
        text = registry.render_prometheus(label_name="leg")
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{leg="a"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 2" in text
        # Cumulative buckets: +Inf equals the count.
        assert 'latency_bucket{leg="leg",le="1"} 1' in text
        assert 'latency_bucket{leg="leg",le="+Inf"} 2' in text
        assert 'latency_count{leg="leg"} 2' in text
        assert text.endswith("\n")

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c").inc('we"ird\nlabel')
        text = registry.render_prometheus()
        assert 'c{label="we\\"ird\\nlabel"} 1' in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""


# ---------------------------------------------------------------------------
# EstimateSampler
# ---------------------------------------------------------------------------
def fake_pipeline(rows: int = 0):
    """The minimal pipeline surface snapshot_legs/sample consume."""
    return SimpleNamespace(
        order=("d",),
        driving_rows_total=rows,
        meter_before=None,
        catalog=SimpleNamespace(meter=None),
        class_selectivities={},
        legs={"d": SimpleNamespace(driving_monitor=None)},
    )


class TestEstimateSampler:
    def test_interval_validated(self):
        with pytest.raises(ValueError):
            EstimateSampler(every=0)

    def test_cadence_samples_every_n_rows(self):
        sampler = EstimateSampler(every=3)
        for row in range(1, 10):
            sampler.on_driving_row(fake_pipeline(rows=row))
        assert [s.driving_rows for s in sampler.samples] == [3, 6, 9]

    def test_max_samples_bounds_memory(self):
        sampler = EstimateSampler(every=1, max_samples=2)
        for row in range(5):
            sampler.on_driving_row(fake_pipeline(rows=row))
        assert len(sampler.samples) == 2
        assert sampler.sample(fake_pipeline()) is None

    def test_real_run_series_and_rows(self, three_table_db):
        obs = QueryObservability.armed(sample_every=2)
        result = three_table_db.execute(
            "SELECT o.name FROM Owner o, Car c, Demo d "
            "WHERE o.id = c.ownerid AND o.id = d.ownerid "
            "AND o.country = 'DE'",
            AdaptiveConfig(mode=ReorderMode.BOTH, check_frequency=2,
                           warmup_rows=2),
            obs=obs,
        )
        sampler = obs.sampler
        assert sampler.samples, "armed sampler recorded nothing"
        rows_axis = [s.driving_rows for s in sampler.samples]
        assert rows_axis == sorted(rows_axis)
        driving = sampler.samples[-1].order[0]
        series = sampler.series(driving, "s_lpr")
        assert series and all(len(pair) == 2 for pair in series)
        assert sampler.series("no_such_leg", "jc") == []
        flat = sampler.to_rows()
        assert flat
        assert all(len(row) == 5 for row in flat)
        keys = {row[3] for row in flat}
        assert "role" not in keys and "position" not in keys
        assert result.samples == tuple(sampler.samples)

    def test_as_dicts_json_shape(self):
        sampler = EstimateSampler(every=1)
        sampler.sample(fake_pipeline(rows=7))
        (payload,) = sampler.as_dicts()
        assert payload["driving_rows"] == 7
        assert payload["order"] == ["d"]
        assert payload["legs"]["d"]["role"] == "driving"
