"""Adaptation sandboxing: the adaptive layer may never fail a query.

The monitoring/controller layer (Sec 4.3) is pure *advice*: every query it
could answer adaptively, the static plan can answer too. The
:class:`SandboxedController` wraps any :class:`AdaptationHooks`
implementation so that an exception escaping the adaptive layer —
model-building bugs, injected faults, bad cost arithmetic — records a
``DEGRADED`` event, permanently disables further reordering for that
query, and lets execution continue under the current order.

The one case the sandbox will *not* absorb is a half-applied mutation: if
the controller raised *after* changing the pipeline's leg order or driving
cursor, continuing could violate the duplicate-prevention invariant, so
the exception is re-raised (chained) instead. In practice the mutation
primitives validate before they mutate, so this path indicates a genuine
executor bug rather than an adaptive-layer failure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.events import AdaptationEvent, EventKind
from repro.errors import ExecutionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.controller import AdaptationController
    from repro.executor.pipeline import PipelineExecutor


def describe_failure(exc: BaseException) -> str:
    """Flatten an exception and its ``__cause__`` chain into one line."""
    parts = []
    seen: set[int] = set()
    current: BaseException | None = exc
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        parts.append(f"{type(current).__name__}: {current}")
        current = current.__cause__ or current.__context__
    return " <- ".join(parts)


class SandboxedController:
    """Wraps an adaptation controller; implements the same hooks protocol."""

    def __init__(self, inner: "AdaptationController") -> None:
        self.inner = inner
        self.pipeline: "PipelineExecutor | None" = None
        self.disabled = False
        self.failure: BaseException | None = None

    # Delegate the controller surface the facade reads.
    @property
    def inner_checks(self) -> int:
        return self.inner.inner_checks

    @property
    def driving_checks(self) -> int:
        return self.inner.driving_checks

    def attach(self, pipeline: "PipelineExecutor") -> None:
        self.pipeline = pipeline
        self.inner.attach(pipeline)

    # ------------------------------------------------------------------
    # Sandboxed hook dispatch
    # ------------------------------------------------------------------
    def _degrade(self, exc: BaseException, position: int) -> None:
        pipeline = self.pipeline
        assert pipeline is not None
        self.disabled = True
        self.failure = exc
        order = tuple(pipeline.order)
        pipeline.record_event(
            AdaptationEvent(
                kind=EventKind.DEGRADED,
                driving_rows_produced=pipeline.driving_rows_total,
                old_order=order,
                new_order=order,
                estimated_current_cost=0.0,
                estimated_new_cost=0.0,
                position=position,
                reason=describe_failure(exc),
            )
        )

    def on_suffix_depleted(self, position: int) -> None:
        if self.disabled or self.pipeline is None:
            return
        order_before = tuple(self.pipeline.order)
        try:
            self.inner.on_suffix_depleted(position)
        except Exception as exc:
            if tuple(self.pipeline.order) != order_before:
                raise ExecutionError(
                    "adaptive layer failed mid-mutation during an inner "
                    f"reorder at position {position}; cannot degrade safely"
                ) from exc
            self._degrade(exc, position)

    def on_pipeline_depleted(self) -> bool:
        if self.disabled or self.pipeline is None:
            return False
        pipeline = self.pipeline
        order_before = tuple(pipeline.order)
        cursor_before = pipeline.driving_cursor
        try:
            return self.inner.on_pipeline_depleted()
        except Exception as exc:
            if (
                tuple(pipeline.order) != order_before
                or pipeline.driving_cursor is not cursor_before
            ):
                raise ExecutionError(
                    "adaptive layer failed mid-mutation during a driving "
                    "switch; cannot degrade safely"
                ) from exc
            self._degrade(exc, position=0)
            return False
