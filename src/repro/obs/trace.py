"""Structured query-lifecycle tracing.

A :class:`Tracer` records **spans** — named, timed intervals with
parent/child links — for the phases of a query (parse / optimize /
execute) and instant **events** for fine-grained run-time happenings
(leg opens, probe batches, reorder checks, applied reorders). Spans carry
free-form attributes for work-unit and row-count attribution.

The tracer is entirely passive: it never touches the
:class:`~repro.storage.counters.WorkMeter`, so an armed tracer changes
wall-clock time only, never the deterministic work-unit accounting. With
no tracer armed, every instrumentation site in the engine pays exactly
one ``is None`` check.

JSONL schema (one object per line, one line per span)::

    {
      "span_id":   int,          # unique within the trace, > 0
      "parent_id": int | null,   # span_id of the parent, null for roots
      "name":      str,          # e.g. "query", "execute", "probe-batch"
      "kind":      str,          # "phase" | "leg" | "check" | "adapt" | "event"
      "start_ms":  float,        # offset from trace start, milliseconds
      "end_ms":    float | null, # null only for spans never closed
      "attrs":     object        # JSON-safe key/value attributes
    }

Instant events are spans whose ``end_ms`` equals ``start_ms``.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

SPAN_KINDS = ("phase", "leg", "check", "adapt", "event")

#: Keys every JSONL trace line must carry (see module docstring).
JSONL_KEYS = (
    "span_id",
    "parent_id",
    "name",
    "kind",
    "start_ms",
    "end_ms",
    "attrs",
)


def _jsonable(value: Any) -> Any:
    """Coerce an attribute value into something ``json.dump`` accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return str(value)


@dataclass
class Span:
    """One traced interval (or instant event, when ``end_ms == start_ms``)."""

    span_id: int
    parent_id: int | None
    name: str
    kind: str
    start_ms: float
    end_ms: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ms(self) -> float | None:
        if self.end_ms is None:
            return None
        return self.end_ms - self.start_ms

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start_ms": round(self.start_ms, 3),
            "end_ms": None if self.end_ms is None else round(self.end_ms, 3),
            "attrs": {key: _jsonable(val) for key, val in self.attrs.items()},
        }


class Tracer:
    """Collects spans for one query execution.

    Open spans form a stack; new spans and events default their parent to
    the innermost open span, so instrumentation sites deep in the engine
    need no explicit parent plumbing.
    """

    def __init__(self) -> None:
        self._t0 = time.perf_counter()
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1

    # ------------------------------------------------------------------
    def _now_ms(self) -> float:
        return (time.perf_counter() - self._t0) * 1000.0

    def begin(self, name: str, kind: str = "phase", **attrs: Any) -> Span:
        """Open a span; it parents subsequent spans until :meth:`end`."""
        span = Span(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            kind=kind,
            start_ms=self._now_ms(),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span, **attrs: Any) -> None:
        """Close *span*, merging any final attributes."""
        span.end_ms = self._now_ms()
        span.attrs.update(attrs)
        if span in self._stack:
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
            if self._stack:
                self._stack.pop()

    @contextmanager
    def span(self, name: str, kind: str = "phase", **attrs: Any) -> Iterator[Span]:
        opened = self.begin(name, kind, **attrs)
        try:
            yield opened
        finally:
            self.end(opened)

    def event(self, name: str, kind: str = "event", **attrs: Any) -> Span:
        """Record an instant event under the innermost open span."""
        now = self._now_ms()
        span = Span(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            kind=kind,
            start_ms=now,
            end_ms=now,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def close_all(self) -> None:
        """Close any spans left open (crash/partial-execution safety)."""
        while self._stack:
            self.end(self._stack[-1])

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(span.to_dict()) for span in self.spans)

    def write_jsonl(self, path: str) -> None:
        """Write the trace atomically (temp file + rename)."""
        payload = self.to_jsonl() + "\n" if self.spans else ""
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload)
        os.replace(tmp, path)

    def render_tree(self) -> str:
        """Human-readable tree: indentation mirrors parent/child links."""
        children: dict[int | None, list[Span]] = {}
        for span in self.spans:
            children.setdefault(span.parent_id, []).append(span)

        lines: list[str] = []

        def visit(span: Span, depth: int) -> None:
            duration = span.duration_ms
            timing = (
                f"@{span.start_ms:.1f}ms"
                if duration is None or duration == 0.0
                else f"{duration:.1f}ms"
            )
            attrs = ""
            if span.attrs:
                inner = ", ".join(
                    f"{key}={_jsonable(val)}" for key, val in span.attrs.items()
                )
                attrs = f"  [{inner}]"
            lines.append(f"{'  ' * depth}{span.name} ({timing}){attrs}")
            for child in children.get(span.span_id, ()):
                visit(child, depth + 1)

        for root in children.get(None, ()):
            visit(root, 0)
        return "\n".join(lines)
