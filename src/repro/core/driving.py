"""Driving-leg switching (Sec 4.2, Fig 3) and dynamic access-path choice.

:func:`decide_driving_switch` implements Fig 3 steps 2-4: estimate the
remaining work of the current plan and the cost of plans led by every other
leg (using remaining-fraction-adjusted monitored parameters), and propose
the cheapest one if it beats the current plan by the configured margin. The
mechanics of the switch — freezing the scan position, adding the positional
predicate, resuming/resetting cursors (steps 5-7) — live in
:meth:`repro.executor.pipeline.PipelineExecutor.apply_driving_switch`.

:func:`dynamic_driving_spec` is the paper's future-work extension (Sec 6,
motivated by the Template 4 regression in Sec 5.3): before a leg drives for
the first time, re-choose its index access path using *monitored* local
selectivities instead of the optimizer's uniformity-based guess.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.core.config import AdaptiveConfig, InnerReorderPolicy
from repro.optimizer.cost import (
    best_order_exhaustive,
    cost_of_order,
    greedy_rank_suffix,
)
from repro.optimizer.params import ModelProvider
from repro.optimizer.plans import DrivingKind, DrivingSpec
from repro.storage.cursor import normalize_ranges

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.executor.access import RuntimeLeg
    from repro.executor.pipeline import PipelineExecutor


def decide_driving_switch(
    pipeline: "PipelineExecutor",
    provider: ModelProvider,
    config: AdaptiveConfig,
    audit_costs: dict[str, float] | None = None,
) -> list[str] | None:
    """A cheaper full order led by a different leg, or None.

    When *audit_costs* is given (the flight recorder's decision audit),
    every candidate's estimated full-order cost — after the anti-thrash
    penalty, exactly the number the comparison below uses — is recorded
    under its leading alias, plus the current order's cost under the
    current driving alias. Pure cost-model reads; never charges the meter.
    """
    order = pipeline.order
    graph = pipeline.join_graph
    current_cost = cost_of_order(order, provider)
    if audit_costs is not None:
        audit_costs[order[0]] = current_cost
    best_order: list[str] | None = None
    best_cost = current_cost
    for candidate in order:
        if candidate == order[0]:
            continue
        others = [alias for alias in order if alias != candidate]
        if config.inner_policy is InnerReorderPolicy.EXHAUSTIVE:
            candidate_order, cost = best_order_exhaustive(
                order, graph, provider, fixed_prefix=(candidate,)
            )
        else:
            candidate_order = greedy_rank_suffix(
                (candidate,), others, graph, provider
            )
            cost = cost_of_order(candidate_order, provider)
        abandoned = pipeline.abandon_counts.get(candidate, 0)
        if abandoned:
            # Anti-thrash: switching *back* to a leg we already abandoned
            # must clear an escalating bar, otherwise near-tie estimates
            # cause ping-ponging (the fluctuation Sec 5.4 observes for
            # small history windows).
            cost *= (1.0 + config.switch_benefit_threshold) ** abandoned
        if audit_costs is not None:
            audit_costs[candidate] = cost
        if cost < best_cost:
            best_cost = cost
            best_order = list(candidate_order)
    if best_order is None:
        return None
    if best_cost >= current_cost * (1.0 - config.switch_benefit_threshold):
        return None
    return best_order


def dynamic_driving_spec(leg: "RuntimeLeg") -> DrivingSpec | None:
    """Re-choose *leg*'s driving access path from monitored selectivities.

    Returns a new spec when some sargable indexed predicate measures more
    selective than the one the optimizer chose; None to keep the plan spec.
    """
    current = leg.plan_leg.driving
    best_column: str | None = None
    best_ranges = None
    best_sel = float("inf")
    for slot, (predicate, _) in enumerate(leg.local_tests):
        measured = leg.measured_local_selectivity(slot)
        if measured is None:
            continue
        for column in predicate.columns():
            if column not in leg.indexes:
                continue
            ranges = predicate.key_ranges(column)
            if ranges is None:
                continue
            if measured < best_sel:
                best_sel = measured
                best_column = column
                best_ranges = ranges
    if best_column is None:
        return None
    if (
        current.kind is DrivingKind.INDEX_SCAN
        and current.index_column == best_column
    ):
        return None
    return DrivingSpec(
        DrivingKind.INDEX_SCAN,
        index_column=best_column,
        ranges=tuple(normalize_ranges(list(best_ranges or []))),
        est_index_selectivity=best_sel,
    )


def apply_dynamic_spec(leg: "RuntimeLeg", spec: DrivingSpec) -> None:
    """Install a dynamically chosen driving spec on *leg*'s plan leg."""
    estimates = dataclasses.replace(
        leg.plan_leg.estimates,
        sel_local_index=spec.est_index_selectivity,
        sel_local_residual=min(
            leg.plan_leg.estimates.sel_local
            / max(spec.est_index_selectivity, 1e-12),
            1.0,
        ),
    )
    leg.plan_leg = dataclasses.replace(
        leg.plan_leg, driving=spec, estimates=estimates
    )
    leg._slpi_metadata = None  # the cached metadata S_LPI is for the old spec
