"""Integration tests on the six-table extended DMV workload (Sec 5.5)."""

import pytest

from repro import AdaptiveConfig, ReorderMode
from repro.dmv import load_dmv, six_table_workload


@pytest.fixture(scope="module")
def extended_dmv():
    return load_dmv(scale=0.02, extended=True)


class TestSixTableExecution:
    def test_modes_agree_on_workload_sample(self, extended_dmv):
        db, _ = extended_dmv
        configs = [
            AdaptiveConfig(mode=ReorderMode.NONE),
            AdaptiveConfig(mode=ReorderMode.INNER_ONLY),
            AdaptiveConfig(mode=ReorderMode.DRIVING_ONLY),
            AdaptiveConfig(mode=ReorderMode.BOTH, check_frequency=2, warmup_rows=2),
        ]
        for query in six_table_workload(count=6):
            reference = None
            for config in configs:
                rows = sorted(db.execute(query.sql, config).rows)
                if reference is None:
                    reference = rows
                assert rows == reference, (query.qid, config.mode)

    def test_six_leg_pipeline_order(self, extended_dmv):
        db, _ = extended_dmv
        (query, *_rest) = six_table_workload(count=2)
        result = db.execute(query.sql, AdaptiveConfig(mode=ReorderMode.NONE))
        assert len(result.final_order) == 6

    def test_aggressive_adaptation_stays_correct(self, extended_dmv):
        db, _ = extended_dmv
        aggressive = AdaptiveConfig(
            mode=ReorderMode.BOTH,
            check_frequency=1,
            warmup_rows=1,
            history_window=5,
            switch_benefit_threshold=0.0,
        )
        static = AdaptiveConfig(mode=ReorderMode.NONE)
        for query in six_table_workload(count=4):
            expected = sorted(db.execute(query.sql, static).rows)
            actual = sorted(db.execute(query.sql, aggressive).rows)
            assert actual == expected, query.qid

    def test_dimension_joins_filter(self, extended_dmv):
        db, _ = extended_dmv
        total = db.execute(
            "SELECT COUNT(*) FROM Accidents a, Location l "
            "WHERE a.locationid = l.id",
            AdaptiveConfig(mode=ReorderMode.NONE),
        ).rows[0][0]
        urban = db.execute(
            "SELECT COUNT(*) FROM Accidents a, Location l "
            "WHERE a.locationid = l.id AND l.urban = 1",
            AdaptiveConfig(mode=ReorderMode.NONE),
        ).rows[0][0]
        # Accidents skew toward urban locations (generator property).
        assert urban > total * 0.5
