"""The flight recorder: always-on, bounded per-query telemetry.

Every executed query leaves one :class:`FlightRecord` — the normalized
SQL and its template signature, the optimizer's plan, per-leg
estimated-vs-actual cardinalities and q-errors, every adaptation event
*with the rank-rule inputs that justified it* (captured as
:class:`DecisionRecord` at the controller's check points), the
budget/shed outcome, and end-to-end latency. Records land in a bounded
in-memory ring buffer and, when a telemetry directory is configured,
drain to a rotating JSONL store with atomic segment rotation.

Design constraints (PR 2's observability contract, extended):

* an armed recorder **never touches the deterministic WorkMeter** — the
  decision audit reads monitors and evaluates the (memoized, meter-free)
  cost model at check points the controller already paid for;
* the recorder-only bundle is **not hot** (``QueryObservability.hot`` is
  False): every per-row/per-probe hook site stays disabled and the
  batched executor keeps its turbo/fast paths, so the wall overhead on
  the six-table workload stays within the ≤5% budget enforced by
  ``benchmarks/bench_speedup.py --check``;
* the ring is bounded and the store is size-capped with segment
  retention — an always-on recorder cannot grow without bound.

Store layout: ``telemetry-NNNNNN.jsonl`` segments, newest index highest.
The active segment is written as ``telemetry-NNNNNN.jsonl.part`` and
finalized via ``os.replace`` on rotation or close, so readers only ever
see complete segments (atomic rotation).
"""

from __future__ import annotations

import itertools
import json
import logging
import math
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.events import AdaptationEvent, EventKind
from repro.obs.observer import QueryObservability
from repro.obs.timeseries import snapshot_legs
from repro.query.sql.normalize import normalize_sql, template_signature

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db import QueryResult
    from repro.executor.pipeline import PipelineExecutor
    from repro.optimizer.params import ModelProvider

logger = logging.getLogger(__name__)

#: The record type tag every telemetry line carries (see obs/schema.py).
FLIGHT_RECORD_TYPE = "flight"

_SEGMENT_PREFIX = "telemetry-"
_SEGMENT_SUFFIX = ".jsonl"


def _finite(value: Any) -> Any:
    """JSON-safe number: NaN/inf become None (JSONL must stay parseable)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def _clean(obj: Any) -> Any:
    if isinstance(obj, dict):
        return {str(key): _clean(val) for key, val in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_clean(item) for item in obj]
    return _finite(obj)


# ---------------------------------------------------------------------------
# Decision audit: the rank-rule inputs behind each check
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RankTerm:
    """One leg's Eq (3) rank inputs at its pipeline position."""

    alias: str
    position: int
    jc: float | None       # join cardinality (Eq 11)
    pc: float | None       # probe cost
    rank: float | None     # (jc - 1) / pc

    def as_dict(self) -> dict[str, Any]:
        return {
            "alias": self.alias,
            "position": self.position,
            "jc": _finite(self.jc),
            "pc": _finite(self.pc),
            "rank": _finite(self.rank),
        }


@dataclass
class DecisionRecord:
    """One controller check — kept or applied — with its model inputs.

    Captured at the two safe points (suffix-depleted, pipeline-depleted)
    whenever a recorder is armed. ``rank_terms`` carry the per-leg Eq (3)
    inputs of the order being judged; driving checks additionally list
    every candidate driving leg's estimated full-order cost (after the
    anti-thrash penalty), which is exactly what Fig 3 compares.
    """

    check: str                     # "inner" | "driving"
    applied: bool
    driving_rows: int
    position: int
    order_before: tuple[str, ...]
    order_after: tuple[str, ...] | None
    rank_terms: tuple[RankTerm, ...] = ()
    candidate_costs: dict[str, float] = field(default_factory=dict)
    estimated_current_cost: float | None = None
    estimated_new_cost: float | None = None
    window: dict[str, dict[str, Any]] = field(default_factory=dict)
    monitor_granularity: str = "exact"
    worker: int = -1

    @property
    def estimated_benefit(self) -> float | None:
        cur, new = self.estimated_current_cost, self.estimated_new_cost
        if cur is None or new is None or cur <= 0:
            return None
        return max(0.0, min(1.0, 1.0 - new / cur))

    def as_dict(self) -> dict[str, Any]:
        return {
            "check": self.check,
            "applied": self.applied,
            "driving_rows": self.driving_rows,
            "position": self.position,
            "order_before": list(self.order_before),
            "order_after": (
                None if self.order_after is None else list(self.order_after)
            ),
            "rank_terms": [term.as_dict() for term in self.rank_terms],
            "candidate_costs": {
                alias: _finite(cost)
                for alias, cost in sorted(self.candidate_costs.items())
            },
            "estimated_current_cost": _finite(self.estimated_current_cost),
            "estimated_new_cost": _finite(self.estimated_new_cost),
            "estimated_benefit": _finite(self.estimated_benefit),
            "window": _clean(self.window),
            "monitor_granularity": self.monitor_granularity,
            "worker": self.worker,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DecisionRecord":
        return cls(
            check=data["check"],
            applied=data["applied"],
            driving_rows=data["driving_rows"],
            position=data["position"],
            order_before=tuple(data["order_before"]),
            order_after=(
                None
                if data.get("order_after") is None
                else tuple(data["order_after"])
            ),
            rank_terms=tuple(
                RankTerm(
                    alias=term["alias"],
                    position=term["position"],
                    jc=term.get("jc"),
                    pc=term.get("pc"),
                    rank=term.get("rank"),
                )
                for term in data.get("rank_terms", ())
            ),
            candidate_costs=dict(data.get("candidate_costs", {})),
            estimated_current_cost=data.get("estimated_current_cost"),
            estimated_new_cost=data.get("estimated_new_cost"),
            window=data.get("window", {}),
            monitor_granularity=data.get("monitor_granularity", "exact"),
            worker=data.get("worker", -1),
        )


def rank_terms_for(
    order: list[str], position: int, provider: "ModelProvider"
) -> tuple[RankTerm, ...]:
    """Eq (3) rank inputs for the suffix at *position* of *order*.

    Pure cost-model evaluation: the provider memoizes its monitored
    parameters and never charges the WorkMeter, so audit capture is
    wall-time-only by construction.
    """
    from repro.optimizer.cost import rank  # local: avoid import cycles

    bound = frozenset(order[:position])
    terms: list[RankTerm] = []
    for offset, alias in enumerate(order[position:]):
        jc, pc = provider.inner_params(alias, bound)
        terms.append(
            RankTerm(
                alias=alias,
                position=position + offset,
                jc=jc,
                pc=pc,
                rank=rank(jc, pc) if pc else None,
            )
        )
        bound = bound | {alias}
    return tuple(terms)


class FlightRecording:
    """Per-query accumulator the controller feeds at decision points.

    Attached to a :class:`QueryObservability` as ``obs.audit``; the
    bundle stays *cold* (``hot`` False) when only the audit is armed, so
    every per-row hook site and the batched executor's turbo/fast paths
    behave exactly as with observability off.

    Kept checks — thousands per adaptive query, against a handful of
    applied ones — land on :meth:`on_kept`, which appends one plain
    tuple; they are materialized into slim :class:`DecisionRecord`
    envelopes lazily (and cached) the first time :attr:`decisions` is
    read. That keeps the per-check cost on the execution path to a tuple
    allocation, which is what holds the always-on recorder inside its
    ≤5% wall budget.
    """

    __slots__ = (
        "_entries",
        "_materialized",
        "final_legs",
        "max_decisions",
        "monitor_granularity",
        "truncated",
    )

    def __init__(
        self,
        max_decisions: int = 10_000,
        monitor_granularity: str = "exact",
    ) -> None:
        # DecisionRecord (full capture) and kept-check tuples, interleaved
        # in check order.
        self._entries: list[Any] = []
        self._materialized: tuple[int, list[DecisionRecord]] | None = None
        self.final_legs: dict[str, dict[str, Any]] = {}
        self.max_decisions = max_decisions
        self.monitor_granularity = monitor_granularity
        self.truncated = False

    @property
    def decisions(self) -> list[DecisionRecord]:
        """Every audited check, in order, as :class:`DecisionRecord`s."""
        cached = self._materialized
        if cached is not None and cached[0] == len(self._entries):
            return cached[1]
        granularity = self.monitor_granularity
        out: list[DecisionRecord] = []
        for entry in self._entries:
            if type(entry) is DecisionRecord:
                out.append(entry)
            else:
                check, driving_rows, position, order = entry
                out.append(
                    DecisionRecord(
                        check=check,
                        applied=False,
                        driving_rows=driving_rows,
                        position=position,
                        order_before=order,
                        order_after=None,
                        monitor_granularity=granularity,
                    )
                )
        self._materialized = (len(self._entries), out)
        return out

    def on_decision(self, record: DecisionRecord) -> None:
        if len(self._entries) >= self.max_decisions:
            self.truncated = True
            return
        self._entries.append(record)

    def on_kept(
        self,
        check: str,
        driving_rows: int,
        position: int,
        order: tuple[str, ...],
    ) -> None:
        """A check that kept the order: slim envelope, tuple-cheap."""
        if len(self._entries) >= self.max_decisions:
            self.truncated = True
            return
        self._entries.append((check, driving_rows, position, order))

    def on_finish(self, pipeline: "PipelineExecutor") -> None:
        """Final per-leg monitor snapshot (actuals for q-error reporting)."""
        self.final_legs = snapshot_legs(pipeline)


# ---------------------------------------------------------------------------
# The flight record itself
# ---------------------------------------------------------------------------
@dataclass
class FlightRecord:
    """Everything the recorder knows about one executed query."""

    query_id: str
    ts: float                      # unix seconds at finalization
    sql: str                       # normalized statement text
    template: str                  # literals replaced by ?
    mode: str
    outcome: str                   # ok | budget_exceeded | cancelled | ...
    wall_ms: float
    work_units: float
    rows: int
    plan_order: tuple[str, ...] = ()
    plan_cost: float | None = None
    final_order: tuple[str, ...] = ()
    monitor_granularity: str = "exact"
    batched: bool = False
    workers: int = 1
    # Which execution engine ran the pipeline (ExecutionStats.engine).
    engine: str = "unknown"
    # Parallel runs: per-partition engines in dispatch order, plus the
    # serial continuation's engine when one ran, and the first in-worker
    # cascade gate reason (ExecutionStats.worker_engines / vector_gate).
    worker_engines: list[str] = field(default_factory=list)
    vector_gate: str | None = None
    legs: dict[str, dict[str, Any]] = field(default_factory=dict)
    events: list[dict[str, Any]] = field(default_factory=list)
    decisions: list[DecisionRecord] = field(default_factory=list)
    error: str | None = None
    slow: bool = False
    # Server context (empty for embedded executions).
    session: str | None = None
    shed: str | None = None
    queued_ms: float | None = None

    @property
    def adaptations(self) -> int:
        return len(self.events)

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": FLIGHT_RECORD_TYPE,
            "query_id": self.query_id,
            "ts": self.ts,
            "sql": self.sql,
            "template": self.template,
            "mode": self.mode,
            "outcome": self.outcome,
            "wall_ms": _finite(round(self.wall_ms, 3)),
            "work_units": _finite(round(self.work_units, 3)),
            "rows": self.rows,
            "plan_order": list(self.plan_order),
            "plan_cost": _finite(self.plan_cost),
            "final_order": list(self.final_order),
            "monitor_granularity": self.monitor_granularity,
            "batched": self.batched,
            "workers": self.workers,
            "engine": self.engine,
            "worker_engines": list(self.worker_engines),
            "vector_gate": self.vector_gate,
            "legs": _clean(self.legs),
            "events": _clean(self.events),
            "decisions": [decision.as_dict() for decision in self.decisions],
            "error": self.error,
            "slow": self.slow,
            "session": self.session,
            "shed": self.shed,
            "queued_ms": _finite(self.queued_ms),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FlightRecord":
        return cls(
            query_id=data["query_id"],
            ts=data["ts"],
            sql=data["sql"],
            template=data["template"],
            mode=data["mode"],
            outcome=data["outcome"],
            wall_ms=data["wall_ms"] or 0.0,
            work_units=data["work_units"] or 0.0,
            rows=data["rows"],
            plan_order=tuple(data.get("plan_order", ())),
            plan_cost=data.get("plan_cost"),
            final_order=tuple(data.get("final_order", ())),
            monitor_granularity=data.get("monitor_granularity", "exact"),
            batched=data.get("batched", False),
            workers=data.get("workers", 1),
            engine=data.get("engine", "unknown"),
            worker_engines=list(data.get("worker_engines", ())),
            vector_gate=data.get("vector_gate"),
            legs=data.get("legs", {}),
            events=data.get("events", []),
            decisions=[
                DecisionRecord.from_dict(decision)
                for decision in data.get("decisions", ())
            ],
            error=data.get("error"),
            slow=data.get("slow", False),
            session=data.get("session"),
            shed=data.get("shed"),
            queued_ms=data.get("queued_ms"),
        )


def event_to_dict(event: AdaptationEvent) -> dict[str, Any]:
    return {
        "kind": event.kind.value,
        "driving_rows": event.driving_rows_produced,
        "old_order": list(event.old_order),
        "new_order": list(event.new_order),
        "estimated_current_cost": _finite(event.estimated_current_cost),
        "estimated_new_cost": _finite(event.estimated_new_cost),
        "estimated_benefit": _finite(event.estimated_benefit),
        "position": event.position,
        "reason": event.reason,
        "worker": event.worker,
    }


def event_from_dict(data: dict[str, Any]) -> AdaptationEvent:
    return AdaptationEvent(
        kind=EventKind(data["kind"]),
        driving_rows_produced=data["driving_rows"],
        old_order=tuple(data["old_order"]),
        new_order=tuple(data["new_order"]),
        estimated_current_cost=data.get("estimated_current_cost") or 0.0,
        estimated_new_cost=data.get("estimated_new_cost") or 0.0,
        position=data.get("position", 0),
        reason=data.get("reason", ""),
        worker=data.get("worker", -1),
    )


# ---------------------------------------------------------------------------
# Rotating JSONL store
# ---------------------------------------------------------------------------
class TelemetryStore:
    """Size-capped rotating JSONL segments with atomic finalization.

    Appends go to ``telemetry-NNNNNN.jsonl.part``; when the active
    segment exceeds ``max_segment_bytes`` (or on :meth:`close`) it is
    renamed to its final ``.jsonl`` name via ``os.replace`` — readers
    never observe a half-written segment. At most ``max_segments``
    finalized segments are retained; the oldest are deleted.
    """

    def __init__(
        self,
        directory: str,
        max_segment_bytes: int = 1_048_576,
        max_segments: int = 16,
    ) -> None:
        if max_segment_bytes < 1:
            raise ValueError("max_segment_bytes must be >= 1")
        if max_segments < 1:
            raise ValueError("max_segments must be >= 1")
        self.directory = directory
        self.max_segment_bytes = max_segment_bytes
        self.max_segments = max_segments
        os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        self._handle = None
        self._active_index = self._next_index()
        self._active_bytes = 0
        self.appended_total = 0
        self.rotations_total = 0

    # -- paths ---------------------------------------------------------
    def _segment_name(self, index: int) -> str:
        return f"{_SEGMENT_PREFIX}{index:06d}{_SEGMENT_SUFFIX}"

    def _part_path(self, index: int) -> str:
        return os.path.join(self.directory, self._segment_name(index) + ".part")

    def _final_path(self, index: int) -> str:
        return os.path.join(self.directory, self._segment_name(index))

    def _next_index(self) -> int:
        highest = 0
        for name in os.listdir(self.directory):
            if not name.startswith(_SEGMENT_PREFIX):
                continue
            stem = name[len(_SEGMENT_PREFIX):]
            for suffix in (_SEGMENT_SUFFIX + ".part", _SEGMENT_SUFFIX):
                if stem.endswith(suffix):
                    stem = stem[: -len(suffix)]
                    break
            else:
                continue
            try:
                highest = max(highest, int(stem))
            except ValueError:
                continue
        return highest + 1

    def segment_paths(self) -> list[str]:
        """Finalized segment paths, oldest first."""
        names = [
            name
            for name in os.listdir(self.directory)
            if name.startswith(_SEGMENT_PREFIX)
            and name.endswith(_SEGMENT_SUFFIX)
        ]
        return [os.path.join(self.directory, name) for name in sorted(names)]

    # -- writes --------------------------------------------------------
    def append(self, payload: dict[str, Any]) -> None:
        line = json.dumps(payload, separators=(",", ":"), default=str) + "\n"
        data = line.encode("utf-8")
        with self._lock:
            if self._handle is None:
                self._handle = open(
                    self._part_path(self._active_index), "a", encoding="utf-8"
                )
                self._active_bytes = self._handle.tell()
            self._handle.write(line)
            self._handle.flush()
            self._active_bytes += len(data)
            self.appended_total += 1
            if self._active_bytes >= self.max_segment_bytes:
                self._rotate_locked()

    def _rotate_locked(self) -> None:
        assert self._handle is not None
        self._handle.close()
        os.replace(
            self._part_path(self._active_index),
            self._final_path(self._active_index),
        )
        self._handle = None
        self._active_index += 1
        self._active_bytes = 0
        self.rotations_total += 1
        self._prune_locked()

    def _prune_locked(self) -> None:
        segments = self.segment_paths()
        while len(segments) > self.max_segments:
            victim = segments.pop(0)
            try:
                os.remove(victim)
            except OSError:  # pragma: no cover - concurrent external delete
                break

    def rotate(self) -> None:
        """Finalize the active segment now (if it has any records)."""
        with self._lock:
            if self._handle is not None:
                self._rotate_locked()

    def close(self) -> None:
        """Finalize the active segment; idempotent."""
        self.rotate()

    # -- reads ---------------------------------------------------------
    @staticmethod
    def iter_records(directory: str) -> "list[dict[str, Any]]":
        """Every record in *directory*'s finalized segments, oldest first.

        Malformed lines are skipped (a crash can truncate at most the
        tail of a ``.part`` file, which is not read here at all — but be
        forgiving anyway).
        """
        records: list[dict[str, Any]] = []
        if not os.path.isdir(directory):
            return records
        names = sorted(
            name
            for name in os.listdir(directory)
            if name.startswith(_SEGMENT_PREFIX)
            and name.endswith(_SEGMENT_SUFFIX)
        )
        for name in names:
            path = os.path.join(directory, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    for line in handle:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            obj = json.loads(line)
                        except json.JSONDecodeError:
                            continue
                        if isinstance(obj, dict):
                            records.append(obj)
            except OSError:  # pragma: no cover - segment pruned mid-read
                continue
        return records


# ---------------------------------------------------------------------------
# The recorder
# ---------------------------------------------------------------------------
class FlightRecorder:
    """Process-level recorder: ring buffer + optional rotating store.

    Thread-safe: the server's worker threads call :meth:`arm` /
    :meth:`finish_query` concurrently. ``query_id`` values are unique
    across process restarts (``q-<pid hex>-<seq>``).
    """

    def __init__(
        self,
        capacity: int = 256,
        store: TelemetryStore | None = None,
        slow_query_ms: float | None = None,
        clock=time.time,
    ) -> None:
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self._ring: deque[FlightRecord] = deque(maxlen=capacity)
        self._slow: deque[FlightRecord] = deque(maxlen=min(capacity, 64))
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._prefix = f"q-{os.getpid():x}-{int(clock() * 1000) & 0xFFFFFF:x}"
        self._clock = clock
        self.store = store
        self.slow_query_ms = slow_query_ms
        self.recorded_total = 0
        self.slow_total = 0

    # -- per-query -----------------------------------------------------
    def arm(
        self,
        config,
        base: QueryObservability | None = None,
        max_decisions: int = 10_000,
    ) -> QueryObservability:
        """An observability bundle with the decision audit armed.

        Without *base* the bundle is recorder-only (not hot: tracer,
        metrics, and sampler all None — the executor keeps its fast
        paths). With *base*, the audit is attached to the caller's
        already-armed bundle.
        """
        bundle = base if base is not None else QueryObservability()
        bundle.audit = FlightRecording(
            max_decisions=max_decisions,
            monitor_granularity=config.monitor_granularity,
        )
        return bundle

    def finish_query(
        self,
        bundle: QueryObservability,
        result: "QueryResult | None" = None,
        *,
        sql: str,
        config,
        outcome: str = "ok",
        error: BaseException | None = None,
        wall_ms: float | None = None,
        session: str | None = None,
        shed: str | None = None,
        queued_ms: float | None = None,
    ) -> FlightRecord:
        """Finalize one query's flight record and append it everywhere."""
        audit = bundle.audit
        decisions = list(audit.decisions) if audit is not None else []
        final_legs = dict(audit.final_legs) if audit is not None else {}
        plan = result.plan if result is not None else None
        record = FlightRecord(
            query_id=f"{self._prefix}-{next(self._seq)}",
            ts=self._clock(),
            sql=normalize_sql(sql),
            template=template_signature(sql),
            mode=config.mode.value,
            outcome=outcome,
            wall_ms=(
                wall_ms
                if wall_ms is not None
                else (
                    result.stats.wall_seconds * 1000.0
                    if result is not None
                    else 0.0
                )
            ),
            work_units=result.stats.total_work if result is not None else 0.0,
            rows=len(result.rows) if result is not None else 0,
            plan_order=tuple(plan.order) if plan is not None else (),
            plan_cost=plan.estimated_cost if plan is not None else None,
            final_order=result.final_order if result is not None else (),
            monitor_granularity=config.monitor_granularity,
            batched=config.batched,
            workers=result.stats.workers if result is not None else 1,
            engine=result.stats.engine if result is not None else "unknown",
            worker_engines=(
                list(result.stats.worker_engines)
                if result is not None
                else []
            ),
            vector_gate=(
                result.stats.vector_gate if result is not None else None
            ),
            legs=_build_legs(plan, final_legs),
            events=(
                [event_to_dict(event) for event in result.stats.events]
                if result is not None
                else []
            ),
            decisions=decisions,
            error=f"{type(error).__name__}: {error}" if error else None,
            session=session,
            shed=shed,
            queued_ms=queued_ms,
        )
        threshold = self.slow_query_ms
        record.slow = threshold is not None and record.wall_ms >= threshold
        with self._lock:
            self._ring.append(record)
            self.recorded_total += 1
            if record.slow:
                self._slow.append(record)
                self.slow_total += 1
        if record.slow:
            logger.warning(
                "slow query %s (%.1f ms >= %.1f ms): %s",
                record.query_id,
                record.wall_ms,
                threshold,
                json.dumps(record.to_dict(), default=str),
            )
        if self.store is not None:
            self.store.append(record.to_dict())
        return record

    # -- introspection -------------------------------------------------
    def recent(self, limit: int | None = None) -> list[FlightRecord]:
        with self._lock:
            records = list(self._ring)
        return records[-limit:] if limit else records

    def slow_queries(self, limit: int | None = None) -> list[FlightRecord]:
        with self._lock:
            records = list(self._slow)
        return records[-limit:] if limit else records

    def find(self, query_id: str) -> FlightRecord | None:
        with self._lock:
            for record in reversed(self._ring):
                if record.query_id == query_id:
                    return record
        return None

    def close(self) -> None:
        if self.store is not None:
            self.store.close()


def _build_legs(
    plan, final_legs: dict[str, dict[str, Any]]
) -> dict[str, dict[str, Any]]:
    """Per-leg estimated-vs-actual summary: plan estimates + final window.

    ``q_error`` compares the monitors' measured Eq (7) index-join
    selectivity against the optimizer's prior for the same access
    predicate — max(m/p, p/m), the standard cardinality q-error — where
    both are available.
    """
    legs: dict[str, dict[str, Any]] = {}
    aliases = set(final_legs)
    if plan is not None:
        aliases.update(plan.order)
    for alias in aliases:
        entry: dict[str, Any] = {}
        if plan is not None and alias in plan.order:
            plan_leg = plan.leg(alias)
            entry["plan_position"] = plan.order.index(alias)
            entry["est_cardinality"] = plan_leg.estimates.leg_cardinality
        window = final_legs.get(alias)
        if window:
            entry.update(window)
            s_jp = window.get("s_jp")
            prior = window.get("s_jp_prior")
            if s_jp and prior and s_jp > 0 and prior > 0:
                entry["q_error"] = max(s_jp / prior, prior / s_jp)
        legs[alias] = entry
    return legs
