"""Exception hierarchy for the repro database engine.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch engine failures without also swallowing programming errors
such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro engine."""


class SchemaError(ReproError):
    """A table or column definition is invalid or inconsistent."""


class CatalogError(ReproError):
    """A referenced table, column, or index does not exist."""


class StorageError(ReproError):
    """Low-level storage failure (bad RID, type mismatch on insert, ...)."""


class QueryError(ReproError):
    """A query specification is malformed (unknown alias, bad predicate, ...)."""


class SqlSyntaxError(QueryError):
    """The SQL text could not be parsed.

    Carries the offending position so callers can point at the error.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class PlanError(ReproError):
    """The optimizer could not build a valid pipelined plan for the query."""


class ExecutionError(ReproError):
    """The executor entered an inconsistent state at run time."""
