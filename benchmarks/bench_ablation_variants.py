"""Ablation — Sec 4.2 switch variants and the Sec 6 future-work extension.

* ``key-boundary`` — postpone driving switches until the index-scan cursor
  crosses a key boundary, so the positional predicate is a plain
  ``key > v`` (the paper's "postpone the change" alternative to the
  composite ``key > v OR (key = v AND rid > r)`` predicate).
* ``dynamic-access`` — re-choose a new driving leg's index access path from
  monitored local selectivities (Sec 6 future work; addresses the Template
  4 regression the paper attributes to a statically chosen index).

Shape: both variants stay correct and land in the same performance regime
as the default; dynamic access path never does worse than the default by
more than noise.
"""

from conftest import emit_report

from repro.bench import ablation_experiment
from repro.core.config import AdaptiveConfig, ReorderMode


def test_switch_variants(benchmark, dmv_db, workload_small):
    variants = {
        "static": AdaptiveConfig(mode=ReorderMode.NONE),
        "default": AdaptiveConfig(
            mode=ReorderMode.BOTH, switch_benefit_threshold=0.2
        ),
        "key-boundary": AdaptiveConfig(
            mode=ReorderMode.BOTH,
            switch_benefit_threshold=0.2,
            switch_at_key_boundary=True,
        ),
        "dynamic-access": AdaptiveConfig(
            mode=ReorderMode.BOTH,
            switch_benefit_threshold=0.2,
            dynamic_access_path=True,
        ),
    }
    result = benchmark.pedantic(
        lambda: ablation_experiment(dmv_db, workload_small, variants, "static"),
        rounds=1,
        iterations=1,
    )
    emit_report(
        "ablation_variants",
        result.report("Ablation — switch variants (total work)"),
    )
    static_work = result.series["static"][0]
    assert result.series["default"][0] < static_work
    assert result.series["dynamic-access"][0] < static_work
    # Key-boundary postponement misses some switch windows by design; it
    # must stay in the same regime (never meaningfully worse than static).
    assert result.series["key-boundary"][0] < static_work * 1.03
