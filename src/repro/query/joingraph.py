"""Join predicates and the query's join graph.

The join graph has one node per table alias and one edge per equality join
predicate. The adaptive layer consults it to answer two questions:

* which join predicates are *available* to an inner leg given the set of
  already-bound legs (this changes with the order for cyclic graphs —
  Sec 4.3.4, Fig 6), and
* whether a candidate leg order keeps every inner leg connected to its
  prefix, so no leg degenerates into a Cartesian product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import QueryError


@dataclass(frozen=True)
class JoinPredicate:
    """An equality join predicate ``left.left_column = right.right_column``."""

    left: str
    left_column: str
    right: str
    right_column: str

    def __post_init__(self) -> None:
        if self.left == self.right:
            raise QueryError(
                f"join predicate joins {self.left!r} with itself"
            )

    def aliases(self) -> frozenset[str]:
        return frozenset((self.left, self.right))

    def touches(self, alias: str) -> bool:
        return alias == self.left or alias == self.right

    def column_of(self, alias: str) -> str:
        """The column this predicate constrains on table *alias*."""
        if alias == self.left:
            return self.left_column
        if alias == self.right:
            return self.right_column
        raise QueryError(f"predicate {self} does not touch alias {alias!r}")

    def other(self, alias: str) -> str:
        """The alias on the opposite side of *alias*."""
        if alias == self.left:
            return self.right
        if alias == self.right:
            return self.left
        raise QueryError(f"predicate {self} does not touch alias {alias!r}")

    def __str__(self) -> str:
        return (
            f"{self.left}.{self.left_column} = {self.right}.{self.right_column}"
        )


class JoinGraph:
    """Nodes are table aliases; edges are equality join predicates.

    Equality predicates are transitive, so the graph computes **column
    equivalence classes** over (alias, column) endpoints — the standard
    optimizer technique. ``c.ownerid = o.id`` and ``o.id = d.ownerid`` put
    all three columns in one class, which *derives* the implied predicate
    ``c.ownerid = d.ownerid``: Demographics may then be ordered before
    Owner, the freedom the paper's Example 1 exploits.

    :meth:`available_predicates` therefore returns at most one predicate
    per equivalence class (redundant members of a class filter the same
    rows), synthesizing a derived predicate when only an implied edge
    connects the leg to the bound prefix.
    """

    def __init__(
        self, aliases: Sequence[str], predicates: Iterable[JoinPredicate]
    ) -> None:
        self.aliases = tuple(aliases)
        alias_set = set(self.aliases)
        if len(alias_set) != len(self.aliases):
            raise QueryError("duplicate table aliases in join graph")
        self.predicates = tuple(predicates)
        for predicate in self.predicates:
            missing = predicate.aliases() - alias_set
            if missing:
                raise QueryError(
                    f"join predicate {predicate} references unknown "
                    f"alias(es): {sorted(missing)}"
                )
        self._by_alias: dict[str, list[JoinPredicate]] = {
            alias: [] for alias in self.aliases
        }
        for predicate in self.predicates:
            self._by_alias[predicate.left].append(predicate)
            self._by_alias[predicate.right].append(predicate)
        self._build_classes()
        # available_predicates is a pure function of (alias, bound-set) on
        # this immutable graph, and the adaptation controller evaluates it
        # for every candidate order at every reorder check — memoize it.
        self._available_cache: dict[
            tuple[str, frozenset[str]], tuple[JoinPredicate, ...]
        ] = {}
        self._structure_cache: dict[
            tuple[str, frozenset[str], frozenset[str]],
            tuple[tuple[int, ...], int, tuple[int, ...], tuple[int, ...]],
        ] = {}
        # Per-alias endpoint view of _class_of, in _class_of iteration
        # order, so cache misses walk only this alias's join columns
        # instead of every endpoint in the graph.
        self._alias_endpoints: dict[
            str, list[tuple[str, tuple[tuple[str, str], ...]]]
        ] = {}
        for endpoint, class_id in self._class_of.items():
            self._alias_endpoints.setdefault(endpoint[0], []).append(
                (endpoint[1], self.classes[class_id])
            )

    def _build_classes(self) -> None:
        """Union-find over (alias, column) endpoints."""
        parent: dict[tuple[str, str], tuple[str, str]] = {}

        def find(node: tuple[str, str]) -> tuple[str, str]:
            while parent[node] != node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        for predicate in self.predicates:
            for endpoint in (
                (predicate.left, predicate.left_column),
                (predicate.right, predicate.right_column),
            ):
                parent.setdefault(endpoint, endpoint)
            left = find((predicate.left, predicate.left_column))
            right = find((predicate.right, predicate.right_column))
            if left != right:
                parent[left] = right

        roots: dict[tuple[str, str], int] = {}
        self._class_of: dict[tuple[str, str], int] = {}
        classes: dict[int, list[tuple[str, str]]] = {}
        for endpoint in parent:
            root = find(endpoint)
            class_id = roots.setdefault(root, len(roots))
            self._class_of[endpoint] = class_id
            classes.setdefault(class_id, []).append(endpoint)
        self.classes: tuple[tuple[tuple[str, str], ...], ...] = tuple(
            tuple(sorted(classes[class_id])) for class_id in sorted(classes)
        )

    def class_id(self, alias: str, column: str) -> int | None:
        """Equivalence-class id of a join column, or None if not a join column."""
        return self._class_of.get((alias, column))

    def class_members(self, class_id: int) -> tuple[tuple[str, str], ...]:
        return self.classes[class_id]

    def predicates_of(self, alias: str) -> list[JoinPredicate]:
        try:
            return self._by_alias[alias]
        except KeyError:
            raise QueryError(f"unknown alias {alias!r}") from None

    def available_predicates(
        self, alias: str, bound: Iterable[str]
    ) -> list[JoinPredicate]:
        """Join predicates usable by leg *alias* when *bound* legs precede it.

        At most one predicate per (equivalence class, column of *alias*);
        derived predicates are synthesized when the connection is implied by
        transitivity rather than written in the query.
        """
        if alias not in self._by_alias:
            raise QueryError(f"unknown alias {alias!r}")
        bound_set = frozenset(bound)
        cached = self._available_cache.get((alias, bound_set))
        if cached is not None:
            return list(cached)
        available: list[JoinPredicate] = []
        for column, members in self._alias_endpoints.get(alias, ()):
            for other, other_column in members:
                if other in bound_set:
                    available.append(
                        JoinPredicate(alias, column, other, other_column)
                    )
                    break
        self._available_cache[(alias, bound_set)] = tuple(available)
        return available

    def inner_structure(
        self,
        alias: str,
        bound: frozenset[str],
        indexed_columns: frozenset[str],
    ) -> tuple[tuple[int, ...], int, tuple[int, ...], tuple[int, ...]]:
        """Class-id skeleton of :meth:`available_predicates` for cost evaluation.

        Returns ``(distinct_class_ids, available_count, indexed_class_ids,
        all_class_ids)`` where every tuple preserves the iteration order of
        :meth:`available_predicates`, so a cost model multiplying
        per-class selectivities over ``distinct_class_ids`` (first
        occurrence per class, like the historical seen-set dedup) or taking
        ``min`` over the others reproduces the predicate-object computation
        bit for bit. Everything here is structural — which predicates
        exist, which are indexed on *alias* — so it is cached for the
        graph's lifetime, leaving only the selectivity lookups to run per
        reorder check.
        """
        key = (alias, bound, indexed_columns)
        cached = self._structure_cache.get(key)
        if cached is not None:
            return cached
        available = self.available_predicates(alias, bound)
        distinct: list[int] = []
        seen: set[int] = set()
        indexed: list[int] = []
        all_ids: list[int] = []
        for predicate in available:
            column = predicate.column_of(alias)
            class_id = self._class_of[(alias, column)]
            all_ids.append(class_id)
            if class_id not in seen:
                seen.add(class_id)
                distinct.append(class_id)
            if column in indexed_columns:
                indexed.append(class_id)
        result = (
            tuple(distinct),
            len(available),
            tuple(indexed),
            tuple(all_ids),
        )
        self._structure_cache[key] = result
        return result

    def neighbors(self, alias: str) -> set[str]:
        """Aliases sharing an equivalence class with *alias* (incl. derived)."""
        result: set[str] = set()
        for endpoint, class_id in self._class_of.items():
            if endpoint[0] != alias:
                continue
            for other, _ in self.classes[class_id]:
                if other != alias:
                    result.add(other)
        return result

    def is_connected_order(self, order: Sequence[str]) -> bool:
        """True when every leg after the first joins to some earlier leg."""
        if not order:
            return False
        bound = {order[0]}
        for alias in order[1:]:
            if not self.available_predicates(alias, bound):
                return False
            bound.add(alias)
        return True

    def is_connected(self) -> bool:
        """True when the whole graph is one connected component."""
        if not self.aliases:
            return False
        seen = {self.aliases[0]}
        frontier = [self.aliases[0]]
        while frontier:
            alias = frontier.pop()
            for neighbor in self.neighbors(alias):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(self.aliases)

    def is_cyclic(self) -> bool:
        """True when the graph has more edges than a spanning tree needs."""
        distinct_edges = {predicate.aliases() for predicate in self.predicates}
        return len(distinct_edges) > len(self.aliases) - 1

    def connected_orders(self, prefix: Sequence[str] = ()) -> Iterator[tuple[str, ...]]:
        """Yield all connected total orders extending *prefix* (for search)."""
        prefix = tuple(prefix)
        remaining = [alias for alias in self.aliases if alias not in prefix]
        if not remaining:
            yield prefix
            return
        bound = set(prefix)
        for alias in remaining:
            connects = not prefix or bool(self.available_predicates(alias, bound))
            if connects:
                yield from self.connected_orders(prefix + (alias,))
