"""The wire protocol: newline-delimited JSON requests and responses.

One JSON object per line in each direction. Requests carry an ``op`` and
an optional client-chosen ``id`` that is echoed verbatim on the response,
so clients may pipeline requests and match answers out of band.

Requests::

    {"op": "query", "id": 7, "sql": "SELECT ...", "mode": "both",
     "timeout_ms": 2000, "max_rows": 1000, "workers": 1}
    {"op": "stats"}
    {"op": "telemetry", "limit": 20}            # recent/slow flight records
    {"op": "telemetry", "format": "prometheus"}  # metrics exposition text
    {"op": "ping"}

Responses::

    {"id": 7, "status": "ok", "rows": [[...], ...], "row_count": 2,
     "stats": {"work_units": ..., "wall_ms": ..., "switches": ...,
               "shed": "none", "plan_cache": "hit", ...}}
    {"id": 7, "status": "error", "code": "REJECTED_OVERLOAD",
     "error": "admission queue full (32 queued)"}

Every error response carries a machine-readable ``code`` from
:class:`ErrorCode`; ``REJECTED_OVERLOAD`` and ``RATE_LIMITED`` are *load
signals*, not failures — the session stays healthy and the client may
retry with backoff.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.core.config import ReorderMode

#: Hard cap on one request line; longer lines are a protocol error (and
#: asyncio's readline enforces it before the JSON parse).
MAX_LINE_BYTES = 1_048_576


class ErrorCode:
    """Machine-readable error codes carried by error responses."""

    BAD_REQUEST = "BAD_REQUEST"            # malformed JSON / unknown op / bad field
    SQL_ERROR = "SQL_ERROR"                # parse / plan / catalog failure
    BUDGET_EXCEEDED = "BUDGET_EXCEEDED"    # row, work, or deadline budget hit
    CANCELLED = "CANCELLED"                # cancellation token fired
    RATE_LIMITED = "RATE_LIMITED"          # session token bucket empty
    REJECTED_OVERLOAD = "REJECTED_OVERLOAD"  # admission queue full
    SHUTTING_DOWN = "SHUTTING_DOWN"        # server is draining
    INTERNAL = "INTERNAL"                  # unexpected engine failure


class ProtocolError(ValueError):
    """A request line that cannot be honoured; maps to ``BAD_REQUEST``."""


_MODE_VALUES = {mode.value for mode in ReorderMode}


@dataclass(frozen=True)
class QueryRequest:
    """A validated ``op=query`` request."""

    sql: str
    request_id: Any = None
    mode: ReorderMode = ReorderMode.BOTH
    timeout_ms: float | None = None
    max_rows: int | None = None
    workers: int | None = None


def _positive_number(msg: dict, key: str) -> float | None:
    value = msg.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{key} must be a number, got {value!r}")
    if value <= 0:
        raise ProtocolError(f"{key} must be > 0, got {value!r}")
    return float(value)


def decode_request(line: str | bytes) -> dict:
    """Parse one request line into a dict; raises :class:`ProtocolError`."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"request is not valid UTF-8: {exc}") from exc
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("request line exceeds the 1 MiB limit")
    try:
        msg = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(msg, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(msg).__name__}"
        )
    op = msg.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError("request is missing the 'op' field")
    return msg


def parse_query_request(msg: dict) -> QueryRequest:
    """Validate an ``op=query`` message into a :class:`QueryRequest`."""
    sql = msg.get("sql")
    if not isinstance(sql, str) or not sql.strip():
        raise ProtocolError("query request needs a non-empty 'sql' string")
    mode_value = msg.get("mode", ReorderMode.BOTH.value)
    if mode_value not in _MODE_VALUES:
        raise ProtocolError(
            f"mode {mode_value!r} not one of {sorted(_MODE_VALUES)}"
        )
    timeout_ms = _positive_number(msg, "timeout_ms")
    max_rows = msg.get("max_rows")
    if max_rows is not None:
        if isinstance(max_rows, bool) or not isinstance(max_rows, int):
            raise ProtocolError(f"max_rows must be an int, got {max_rows!r}")
        if max_rows < 1:
            raise ProtocolError(f"max_rows must be >= 1, got {max_rows!r}")
    workers = msg.get("workers")
    if workers is not None:
        if isinstance(workers, bool) or not isinstance(workers, int):
            raise ProtocolError(f"workers must be an int, got {workers!r}")
        if workers < 1:
            raise ProtocolError(f"workers must be >= 1, got {workers!r}")
    return QueryRequest(
        sql=sql,
        request_id=msg.get("id"),
        mode=ReorderMode(mode_value),
        timeout_ms=timeout_ms,
        max_rows=max_rows,
        workers=workers,
    )


def ok_response(
    request_id: Any,
    rows: list[tuple],
    stats: dict[str, Any],
) -> dict:
    return {
        "id": request_id,
        "status": "ok",
        "rows": [list(row) for row in rows],
        "row_count": len(rows),
        "stats": stats,
    }


def error_response(
    request_id: Any, code: str, message: str, **extra: Any
) -> dict:
    payload: dict[str, Any] = {
        "id": request_id,
        "status": "error",
        "code": code,
        "error": message,
    }
    payload.update(extra)
    return payload


def encode_response(payload: dict) -> bytes:
    """One response line: compact JSON + newline."""
    return (
        json.dumps(payload, separators=(",", ":"), default=str) + "\n"
    ).encode("utf-8")


# ---------------------------------------------------------------------------
# SQL normalization (plan-cache keys and template grouping) now lives in
# repro.query.sql.normalize so the observability layer can share it without
# importing the server package; re-exported here for existing callers.
# ---------------------------------------------------------------------------
from repro.query.sql.normalize import (  # noqa: E402,F401
    normalize_sql,
    template_signature,
)
