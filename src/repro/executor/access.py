"""Run-time access operators: one :class:`RuntimeLeg` per table in the plan.

A leg can serve either role of the pipeline at any time:

* **driving** — it owns a resumable scan cursor built from its
  :class:`~repro.optimizer.plans.DrivingSpec` (or resumed from a frozen
  scan after a switch-back, Sec 4.2);
* **inner** — it is probed once per incoming outer row through a
  :class:`ProbeConfig` compiled for the *current* leg order: the most
  selective available join predicate with an index becomes the access
  predicate, everything else (other join predicates, all local predicates,
  and the duplicate-prevention positional predicate) is checked residually.

Probe configs are compiled when the order changes, not per row — this is
what keeps the paper's approach cheaper than row routing: adaptation state
lives in the pipeline, and each row only pays the predicates themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro.catalog.catalog import Catalog
from repro.core.config import HashProbePolicy
from repro.core.monitor import DrivingMonitor, LegMonitor
from repro.errors import ExecutionError
from repro.executor.hashprobe import HashProbeTable
from repro.robustness.faults import DEFAULT_RETRY_POLICY, RetryPolicy, call_with_retry
from repro.optimizer.plans import DrivingKind, PlanLeg
from repro.query.joingraph import JoinPredicate
from repro.query.predicates import PositionalPredicate
from repro.storage.cursor import IndexScanCursor, TableScanCursor
from repro.storage.index import SortedIndex
from repro.storage.table import Row

Binding = dict[str, Row]
Cursor = TableScanCursor | IndexScanCursor


@dataclass
class ProbeConfig:
    """Compiled probe strategy for a leg at its current pipeline position."""

    access_index: SortedIndex | None
    access_predicate: JoinPredicate | None
    # Extracts the probe key from the outer binding (None for scan probes).
    key_getter: Callable[[Binding], Any] | None
    # Residual equality join predicates: (outer getter, our column slot).
    residual_joins: tuple[tuple[Callable[[Binding], Any], int], ...]
    # Which join predicates are available at this position (for JC model).
    available_predicates: tuple[JoinPredicate, ...]
    # Sec 6 extension: probe via an in-memory hash table on this column
    # instead of an index (built lazily on first probe).
    hash_column: str | None = None


class RuntimeLeg:
    """Run-time state of one table in the pipeline."""

    def __init__(
        self,
        plan_leg: PlanLeg,
        catalog: Catalog,
        history_window: int,
        monitoring_enabled: bool,
        hash_policy: HashProbePolicy = HashProbePolicy.OFF,
    ) -> None:
        self.plan_leg = plan_leg
        self.alias = plan_leg.alias
        self.table = catalog.table(plan_leg.table_name)
        self.schema = self.table.schema
        self.meter = self.table.meter
        self.indexes = catalog.indexes_of(plan_leg.table_name)
        self.monitoring_enabled = monitoring_enabled
        self.monitor = LegMonitor(history_window)
        self.driving_monitor: DrivingMonitor | None = None
        self.positional: PositionalPredicate | None = None
        self._history_window = history_window
        # (predicate, compiled test) pairs; predicate objects kept for
        # per-predicate monitoring and dynamic access-path selection.
        self.local_tests = [
            (predicate, predicate.bind(self.schema))
            for predicate in plan_leg.local_predicates
        ]
        # Per-local-predicate (evaluated, passed) counters for the
        # dynamic-access-path extension.
        self.local_counts = [[0, 0] for _ in self.local_tests]
        self.probe_config: ProbeConfig | None = None
        self.incoming_since_check = 0
        self.hash_policy = hash_policy
        # Transient-fault retry (only consulted while a fault injector is
        # armed; the production path never pays the wrapper).
        self.retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY
        # Oracle mode: probe() additionally records the RIDs of its matches
        # (aligned with the returned rows) in self.match_rids.
        self.collect_rids = False
        self.match_rids: list[int] = []
        # Observability bundle (set by the executor); every hook site below
        # pays one None check when observability is off.
        self.obs = None
        # Monitoring is advisory: if it raises, it is disabled for this leg
        # and the failure reported through degrade_hook (set by the
        # executor) instead of aborting the query.
        self.degrade_hook: Callable[[str, BaseException], None] | None = None
        self.monitor_failure: BaseException | None = None
        # Hash builds are cached per access column: reorders and driving
        # switches that keep the same access column reuse the build.
        self._hash_tables: dict[str, HashProbeTable] = {}
        # Cached index-metadata S_LPI of the driving spec (see
        # RuntimeModelBuilder._index_selectivity); invalidated when the
        # dynamic access-path extension replaces the spec.
        self._slpi_metadata: float | None = None

    @property
    def base_cardinality(self) -> int:
        return len(self.table)

    # ------------------------------------------------------------------
    # Inner-leg role
    # ------------------------------------------------------------------
    def compile_probe(
        self,
        preceding: Sequence[str],
        graph: Any,
        schemas: dict[str, Any],
        sel_of: Callable[[JoinPredicate], float],
    ) -> None:
        """(Re)compile the probe strategy for the current leg order.

        *preceding* are the aliases bound before this leg; *graph* is the
        query's :class:`~repro.query.joingraph.JoinGraph` (it supplies
        derived predicates from column equivalence classes); *schemas* maps
        alias -> TableSchema of every leg (to compile outer-side getters);
        *sel_of* estimates a join predicate's selectivity, used to pick the
        most selective indexed access predicate.
        """
        available = graph.available_predicates(self.alias, preceding)
        if not available and len(schemas) > 1:
            raise ExecutionError(
                f"leg {self.alias!r} has no available join predicate; "
                "the order is disconnected"
            )
        indexed = [
            predicate
            for predicate in available
            if predicate.column_of(self.alias) in self.indexes
        ]
        access: JoinPredicate | None = None
        hash_column: str | None = None
        if available and self.hash_policy is HashProbePolicy.ALWAYS:
            access = min(available, key=sel_of)
            hash_column = access.column_of(self.alias)
        elif indexed:
            access = min(indexed, key=sel_of)
        elif available and self.hash_policy is HashProbePolicy.FALLBACK:
            # No usable index: a hash build beats a full scan per probe.
            access = min(available, key=sel_of)
            hash_column = access.column_of(self.alias)
        residual = [p for p in available if p is not access]

        def getter_for(predicate: JoinPredicate) -> Callable[[Binding], Any]:
            other = predicate.other(self.alias)
            slot = schemas[other].position_of(predicate.column_of(other))

            def get(binding: Binding) -> Any:
                return binding[other][slot]

            return get

        key_getter = getter_for(access) if access is not None else None
        residual_compiled = tuple(
            (getter_for(p), self.schema.position_of(p.column_of(self.alias)))
            for p in residual
        )
        self.probe_config = ProbeConfig(
            access_index=self.indexes[access.column_of(self.alias)]
            if access is not None and hash_column is None
            else None,
            access_predicate=access,
            key_getter=key_getter,
            residual_joins=residual_compiled,
            available_predicates=tuple(available),
            hash_column=hash_column,
        )
        self.incoming_since_check = 0

    def probe(self, binding: Binding) -> list[Row]:
        """All rows of this leg matching the outer *binding*.

        Returns fully filtered rows (access + residual joins + locals +
        positional predicate) and feeds the leg monitor.
        """
        config = self.probe_config
        if config is None:
            raise ExecutionError(f"leg {self.alias!r} has no probe config")
        meter = self.meter
        work_before = meter.execution_units if self.monitoring_enabled else 0.0
        faulty = self.table.faults is not None

        skip_locals = False
        if config.hash_column is not None and config.key_getter is not None:
            key = config.key_getter(binding)
            hash_table = self._hash_table_for(config.hash_column)
            if faulty:
                candidates = call_with_retry(
                    lambda: hash_table.probe(key, meter),
                    self.retry_policy,
                    on_retry=self._retry_hook("hash-probe"),
                )
            else:
                candidates = hash_table.probe(key, meter)
            # Hash builds are pre-filtered by the local predicates.
            skip_locals = True
        elif config.access_index is not None and config.key_getter is not None:
            key = config.key_getter(binding)
            index = config.access_index
            if faulty:
                rids = call_with_retry(
                    lambda: index.lookup_rids(key),
                    self.retry_policy,
                    on_retry=self._retry_hook("index-lookup"),
                )
            else:
                rids = index.lookup_rids(key)
            candidates = [(rid, self.table.fetch(rid)) for rid in rids]
        else:
            candidates = list(self.table.scan())
        index_matches = len(candidates)

        matches: list[Row] = []
        match_rids: list[int] = []
        for rid, row in candidates:
            if not self._passes_residuals(binding, rid, row, config, skip_locals):
                continue
            matches.append(row)
            if self.collect_rids:
                match_rids.append(rid)
        if self.collect_rids:
            self.match_rids = match_rids

        if self.monitoring_enabled:
            try:
                if faulty:
                    self.table.faults.fire("monitor")
                work = meter.execution_units - work_before
                self.monitor.record_probe(index_matches, len(matches), work)
                meter.charge_monitor_update()
                self.incoming_since_check += 1
            except Exception as exc:
                self._degrade_monitoring(exc)
        if self.obs is not None:
            self.obs.on_probe(self.alias, index_matches, len(matches))
        return matches

    def _retry_hook(self, site: str):
        """Per-retry observability callback for a fault site (or None)."""
        if self.obs is None:
            return None
        return lambda: self.obs.on_fault_retry(site)

    def _degrade_monitoring(self, exc: BaseException) -> None:
        """Disable this leg's monitoring after a failure inside it.

        Monitoring is pure observation: losing it costs estimate freshness,
        never correctness, so the query continues. The executor's hook
        records a ``DEGRADED`` event; without a hook the failure is kept on
        ``monitor_failure`` for post-mortem inspection.
        """
        self.monitoring_enabled = False
        self.monitor_failure = exc
        if self.degrade_hook is not None:
            self.degrade_hook(self.alias, exc)

    def _hash_table_for(self, column: str) -> HashProbeTable:
        table = self._hash_tables.get(column)
        if table is None:
            table = HashProbeTable(
                self.table,
                column,
                self.local_tests,
                self.meter,
                local_counts=self.local_counts if self.monitoring_enabled else None,
            )
            self._hash_tables[column] = table
        return table

    def _passes_residuals(
        self,
        binding: Binding,
        rid: int,
        row: Row,
        config: ProbeConfig,
        skip_locals: bool = False,
    ) -> bool:
        # Local predicates first: they also reject rows whose scan-order key
        # is NULL, so the positional comparison below never sees NULLs.
        # (Hash candidates were filtered at build time; rows with NULL
        # scan-order keys fail the pushed local predicate there too.)
        for slot, (_, test) in enumerate(self.local_tests):
            if skip_locals:
                break
            self.meter.charge_predicate_eval()
            passed = test(row)
            if self.monitoring_enabled:
                counts = self.local_counts[slot]
                counts[0] += 1
                counts[1] += 1 if passed else 0
            if not passed:
                return False
        if self.positional is not None:
            self.meter.charge_predicate_eval()
            if not self.positional.test(rid, row):
                return False
        for get_outer, slot in config.residual_joins:
            self.meter.charge_predicate_eval()
            cell = row[slot]
            if cell is None or cell != get_outer(binding):
                return False
        return True

    # ------------------------------------------------------------------
    # Driving-leg role
    # ------------------------------------------------------------------
    def open_driving_cursor(self, resume: Cursor | None = None) -> Cursor:
        """Create (or resume) the driving scan cursor for this leg."""
        if resume is not None:
            cursor = resume
        else:
            spec = self.plan_leg.driving
            if spec.kind is DrivingKind.INDEX_SCAN:
                index = self.indexes.get(spec.index_column or "")
                if index is None:
                    raise ExecutionError(
                        f"leg {self.alias!r}: driving index on "
                        f"{spec.index_column!r} does not exist"
                    )
                cursor = IndexScanCursor(index, list(spec.ranges))
            else:
                cursor = TableScanCursor(self.table)
        self.driving_monitor = DrivingMonitor(self._history_window)
        return cursor

    def driving_rows(self, cursor: Cursor) -> Iterator[Row]:
        """Scan rows through *cursor*, applying residual local predicates.

        For index scans the pushed-down ranges already enforce the chosen
        sargable predicate, so only the *other* local predicates are
        rechecked (matching how S_LPI and S_LPR are monitored separately,
        Sec 4.3.1).
        """
        pushed = self._pushed_predicate(cursor)
        residual_tests = [
            test for predicate, test in self.local_tests if predicate is not pushed
        ]
        monitor = self.driving_monitor
        while True:
            try:
                if self.table.faults is not None:
                    # Cursor advances consult the fault injector before any
                    # state change, so transient faults are retryable.
                    _, row = call_with_retry(
                        lambda: next(cursor),
                        self.retry_policy,
                        on_retry=self._retry_hook("cursor-advance"),
                    )
                else:
                    _, row = next(cursor)
            except StopIteration:
                return
            self.meter.charge_predicate_eval(len(residual_tests))
            survived = all(test(row) for test in residual_tests)
            if self.monitoring_enabled and monitor is not None:
                try:
                    monitor.record_scanned(survived)
                    self.meter.charge_monitor_update()
                except Exception as exc:
                    self._degrade_monitoring(exc)
            if self.obs is not None:
                self.obs.on_scan_row(self.alias, survived)
            if survived:
                yield row

    def _pushed_predicate(self, cursor: Cursor):
        """The local predicate enforced by the cursor's index ranges."""
        if not isinstance(cursor, IndexScanCursor):
            return None
        column = cursor.index.column
        spec = self.plan_leg.driving
        if spec.kind is not DrivingKind.INDEX_SCAN or spec.index_column != column:
            # A dynamically chosen access path: find the matching predicate.
            for predicate, _ in self.local_tests:
                if predicate.key_ranges(column) is not None:
                    return predicate
            return None
        for predicate, _ in self.local_tests:
            if predicate.key_ranges(column) is not None:
                return predicate
        return None

    def pushed_driving_predicate(self):
        """The local predicate the driving spec pushes into its index scan."""
        spec = self.plan_leg.driving
        if spec.kind is not DrivingKind.INDEX_SCAN or spec.index_column is None:
            return None
        for predicate, _ in self.local_tests:
            if predicate.key_ranges(spec.index_column) is not None:
                return predicate
        return None

    # ------------------------------------------------------------------
    # Monitoring-derived numbers used by the controller
    # ------------------------------------------------------------------
    def measured_local_selectivity(self, predicate_slot: int) -> float | None:
        evaluated, passed = self.local_counts[predicate_slot]
        if evaluated == 0:
            return None
        return passed / evaluated
