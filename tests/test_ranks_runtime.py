"""Tests for the run-time model builder (core/ranks.py)."""

import pytest

from repro import AdaptiveConfig, ReorderMode
from repro.core.ranks import (
    RuntimeModelBuilder,
    measured_combined_local_selectivity,
    measured_residual_local_selectivity,
    remaining_scan_fraction,
)
from repro.executor.pipeline import PipelineExecutor
from repro.storage.cursor import IndexScanCursor, KeyRange, TableScanCursor
from repro.storage.index import SortedIndex
from repro.storage.schema import Column, TableSchema
from repro.storage.table import HeapTable
from repro.storage.types import ColumnType

from tests.conftest import build_three_table_db


def make_table(values):
    schema = TableSchema(
        "t", [Column("k", ColumnType.INT), Column("v", ColumnType.STRING)]
    )
    table = HeapTable(schema)
    table.insert_many([(value, f"v{i}") for i, value in enumerate(values)])
    return table


class TestRemainingScanFraction:
    def test_table_scan(self):
        table = make_table([1, 2, 3, 4])
        cursor = TableScanCursor(table)
        assert remaining_scan_fraction(cursor) == 1.0
        next(cursor)
        assert remaining_scan_fraction(cursor) == pytest.approx(0.75)
        list(cursor)
        assert remaining_scan_fraction(cursor) == 0.0

    def test_empty_table_scan(self):
        cursor = TableScanCursor(make_table([]))
        assert remaining_scan_fraction(cursor) == 0.0

    def test_index_scan(self):
        table = make_table([1, 2, 2, 3, 9])
        index = SortedIndex("ix", table, "k")
        cursor = IndexScanCursor(index, [KeyRange(low=1, high=3)])
        assert remaining_scan_fraction(cursor) == 1.0
        next(cursor)
        next(cursor)
        # 2 of 4 qualifying entries consumed.
        assert remaining_scan_fraction(cursor) == pytest.approx(0.5)

    def test_index_scan_multi_range(self):
        table = make_table([1, 5, 5, 9])
        index = SortedIndex("ix", table, "k")
        cursor = IndexScanCursor(
            index, [KeyRange.equal(1), KeyRange.equal(5)]
        )
        next(cursor)  # consumed the single key-1 entry
        assert remaining_scan_fraction(cursor) == pytest.approx(2 / 3)


class _FakeLeg:
    """Minimal stand-in for RuntimeLeg's local-count bookkeeping."""

    def __init__(self, counts, predicates=None):
        self.local_counts = counts
        self.local_tests = [
            (predicate, None) for predicate in (predicates or [object() for _ in counts])
        ]


class TestMeasuredSelectivities:
    def test_combined_chains_conditionals(self):
        leg = _FakeLeg([[100, 40], [40, 10]])
        assert measured_combined_local_selectivity(leg) == pytest.approx(0.1)

    def test_combined_no_predicates(self):
        assert measured_combined_local_selectivity(_FakeLeg([])) == 1.0

    def test_combined_no_data(self):
        assert measured_combined_local_selectivity(_FakeLeg([[0, 0]])) is None

    def test_residual_excludes_pushed(self):
        pushed = object()
        other = object()
        leg = _FakeLeg([[100, 40], [40, 10]], predicates=[pushed, other])
        # Only the second predicate counts: 10/40.
        assert measured_residual_local_selectivity(leg, pushed) == pytest.approx(
            0.25
        )

    def test_residual_all_pushed(self):
        pushed = object()
        leg = _FakeLeg([[100, 40]], predicates=[pushed])
        assert measured_residual_local_selectivity(leg, pushed) == 1.0

    def test_residual_no_data(self):
        other = object()
        leg = _FakeLeg([[0, 0]], predicates=[other])
        assert measured_residual_local_selectivity(leg, None) is None


class TestBuilderIntegration:
    def make_pipeline(self, db, sql, **config_kwargs):
        plan = db.plan(sql)
        config = AdaptiveConfig(mode=ReorderMode.MONITOR_ONLY, **config_kwargs)
        return PipelineExecutor(plan, db.catalog, config)

    def test_provider_built_from_cold_pipeline(self, three_table_db):
        pipeline = self.make_pipeline(
            three_table_db,
            "SELECT o.name FROM Owner o, Car c WHERE c.ownerid = o.id",
        )
        # Start the pipeline so the driving cursor exists.
        iterator = pipeline.rows()
        next(iterator, None)
        builder = RuntimeModelBuilder(pipeline)
        provider = builder.build_provider()
        for alias in pipeline.order:
            cleg, scan_pc = provider.driving_params(alias)
            assert cleg >= 0 and scan_pc > 0

    def test_join_selectivity_refresh_uses_measurement(self, three_table_db):
        pipeline = self.make_pipeline(
            three_table_db,
            "SELECT o.name FROM Owner o, Car c WHERE c.ownerid = o.id",
            warmup_rows=1,
        )
        rows = list(pipeline.rows())
        assert rows  # monitors now warm
        builder = RuntimeModelBuilder(pipeline)
        before = dict(pipeline.class_selectivities)
        builder.refresh_join_selectivities()
        after = pipeline.class_selectivities
        # The equivalence class got a measured (positive) selectivity.
        assert all(value > 0 for value in after.values())
        assert before.keys() == after.keys()

    def test_corrections_calibrate_measured_jc(self):
        db = build_three_table_db(owners=500, seed=21)
        pipeline = self.make_pipeline(
            db,
            "SELECT o.name FROM Owner o, Car c "
            "WHERE c.ownerid = o.id AND c.make = 'Rare'",
            warmup_rows=1,
        )
        list(pipeline.rows())
        builder = RuntimeModelBuilder(pipeline)
        provider = builder.build_provider()
        inner_alias = pipeline.order[1]
        leg = pipeline.legs[inner_alias]
        jc_model, _ = provider.inner_params(
            inner_alias, frozenset({pipeline.order[0]})
        )
        jc_measured = leg.monitor.join_cardinality()
        # The calibrated model reproduces the measured JC at the current
        # position (that is the definition of the correction factor).
        assert jc_model == pytest.approx(jc_measured, rel=0.01)
