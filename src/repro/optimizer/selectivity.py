"""Static selectivity estimation.

This estimator deliberately reproduces the assumptions the paper blames for
static plans going wrong (Sec 1):

* **uniformity** — without frequent-value statistics, an equality predicate
  on a column with *n* distinct values is estimated at ``1/n`` regardless of
  skew;
* **independence** — conjunctions multiply selectivities, so correlated
  predicates (Example 2's ``make='Mazda' AND model='323'``) are badly
  under-estimated;
* textbook defaults when no statistics exist at all.

With frequent-value statistics collected (Sec 5.3's "sophisticated
statistics"), equality estimates on skewed columns become accurate, but the
independence assumption — and therefore the adaptive technique's advantage —
remains.
"""

from __future__ import annotations

from typing import Any

from repro.catalog.statistics import ColumnStats, TableStats
from repro.query.joingraph import JoinPredicate
from repro.query.predicates import (
    Between,
    Comparison,
    Disjunction,
    InList,
    IsNull,
    LocalPredicate,
    Op,
)

# Textbook defaults used when statistics are missing (System R heritage).
DEFAULT_NULL_SELECTIVITY = 0.05
DEFAULT_EQ_SELECTIVITY = 0.04
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_BETWEEN_SELECTIVITY = 0.25
DEFAULT_NE_SELECTIVITY = 0.96
DEFAULT_JOIN_SELECTIVITY = 0.01


def _fraction_of_range(stats: ColumnStats, value: Any, op: Op) -> float | None:
    """Uniform interpolation of a range predicate over [min, max]."""
    lo, hi = stats.min_value, stats.max_value
    if not isinstance(lo, (int, float)) or not isinstance(hi, (int, float)):
        return None
    if not isinstance(value, (int, float)):
        return None
    if hi <= lo:
        return 1.0
    span = hi - lo
    if op in (Op.LT, Op.LE):
        fraction = (value - lo) / span
    else:  # GT, GE
        fraction = (hi - value) / span
    return min(max(fraction, 0.0), 1.0)


def equality_selectivity(stats: ColumnStats | None, value: Any) -> float:
    """Selectivity of ``column = value``."""
    if stats is None or stats.ndv <= 0:
        return DEFAULT_EQ_SELECTIVITY
    total = stats.ndv + stats.null_count  # guard only; see below
    if stats.has_frequent_values:
        row_count = sum(stats.frequent_values.values())
        # Frequent-value stats carry exact counts for the top values and the
        # uniform assumption for the remainder.
        if value in stats.frequent_values:
            # Denominator: the analyzed table cardinality is not stored in
            # ColumnStats; callers that have it should prefer
            # Estimator.local_selectivity. Fallback: relative frequency
            # within observed mass is still far better than 1/ndv.
            return stats.frequent_values[value] / max(
                row_count + stats.null_count, 1
            )
    del total
    return 1.0 / stats.ndv


class Estimator:
    """Selectivity estimation against one table's statistics."""

    def __init__(self, stats: TableStats | None) -> None:
        self.stats = stats

    def _column(self, name: str) -> ColumnStats | None:
        if self.stats is None:
            return None
        return self.stats.column(name)

    def _equality(self, column: str, value: Any) -> float:
        stats = self._column(column)
        if stats is None or stats.ndv <= 0:
            return DEFAULT_EQ_SELECTIVITY
        if stats.has_frequent_values and self.stats is not None:
            cardinality = max(self.stats.cardinality, 1)
            if value in stats.frequent_values:
                return stats.frequent_values[value] / cardinality
            # Value is outside the top-N: spread the remaining mass uniformly
            # over the remaining distinct values.
            frequent_mass = sum(stats.frequent_values.values())
            remaining_rows = max(cardinality - frequent_mass - stats.null_count, 0)
            remaining_ndv = max(stats.ndv - len(stats.frequent_values), 1)
            return max(remaining_rows / remaining_ndv, 0.5) / cardinality
        return 1.0 / stats.ndv

    def predicate_selectivity(self, predicate: LocalPredicate) -> float:
        """Estimated selectivity of one local predicate."""
        if isinstance(predicate, Comparison):
            stats = self._column(predicate.column)
            if predicate.op is Op.EQ:
                return self._equality(predicate.column, predicate.value)
            if predicate.op is Op.NE:
                return 1.0 - self._equality(predicate.column, predicate.value)
            if stats is None:
                return DEFAULT_RANGE_SELECTIVITY
            fraction = _fraction_of_range(stats, predicate.value, predicate.op)
            if fraction is None:
                return DEFAULT_RANGE_SELECTIVITY
            return fraction
        if isinstance(predicate, Between):
            stats = self._column(predicate.column)
            if stats is None:
                return DEFAULT_BETWEEN_SELECTIVITY
            low = Comparison(predicate.column, Op.GE, predicate.low)
            high = Comparison(predicate.column, Op.LE, predicate.high)
            lo_sel = self.predicate_selectivity(low)
            hi_sel = self.predicate_selectivity(high)
            combined = max(lo_sel + hi_sel - 1.0, 0.0)
            # Interpolation over [min, max] can still collapse to ~0 for
            # narrow bands; keep a sane floor so plans stay comparable.
            return min(max(combined, 1e-4), 1.0)
        if isinstance(predicate, InList):
            total = sum(
                self._equality(predicate.column, value)
                for value in set(predicate.values)
            )
            return min(total, 1.0)
        if isinstance(predicate, IsNull):
            stats = self._column(predicate.column)
            if stats is None or self.stats is None or self.stats.cardinality == 0:
                fraction = DEFAULT_NULL_SELECTIVITY
            else:
                fraction = stats.null_count / self.stats.cardinality
            return 1.0 - fraction if predicate.negated else fraction
        if isinstance(predicate, Disjunction):
            miss = 1.0
            for term in predicate.terms:
                miss *= 1.0 - self.predicate_selectivity(term)
            return 1.0 - miss
        raise TypeError(f"unknown predicate type: {type(predicate).__name__}")

    def conjunction_selectivity(
        self, predicates: tuple[LocalPredicate, ...] | list[LocalPredicate]
    ) -> float:
        """Independence assumption: multiply the individual selectivities."""
        selectivity = 1.0
        for predicate in predicates:
            selectivity *= self.predicate_selectivity(predicate)
        return selectivity


def join_selectivity(
    predicate: JoinPredicate,
    left_stats: TableStats | None,
    right_stats: TableStats | None,
) -> float:
    """Standard equi-join estimate: ``1 / max(ndv(left), ndv(right))``."""
    ndvs = []
    if left_stats is not None:
        column = left_stats.column(predicate.left_column)
        if column is not None and column.ndv > 0:
            ndvs.append(column.ndv)
    if right_stats is not None:
        column = right_stats.column(predicate.right_column)
        if column is not None and column.ndv > 0:
            ndvs.append(column.ndv)
    if not ndvs:
        return DEFAULT_JOIN_SELECTIVITY
    return 1.0 / max(ndvs)
