"""Tests for the pipelined hash-probe extension (Sec 6)."""

import pytest

from repro import AdaptiveConfig, Database, HashProbePolicy, ReorderMode
from repro.executor.hashprobe import HashProbeTable
from repro.executor.pipeline import PipelineExecutor
from repro.query.query import QuerySpec

from tests.conftest import build_three_table_db, reference_join


def build_unindexed_join_db(owners=200, seed=17):
    """Demo has NO index on its join column — scan probes vs hash probes."""
    import random

    rng = random.Random(seed)
    db = Database()
    db.create_table("Owner", [("id", "int"), ("name", "string"), ("country", "string")])
    db.create_table("Demo", [("ownerid", "int"), ("salary", "int")])
    db.insert(
        "Owner",
        [(i, f"n{i}", rng.choice(["DE", "US"])) for i in range(owners)],
    )
    db.insert("Demo", [(i, 20_000 + rng.randrange(80_000)) for i in range(owners)])
    db.create_index("Owner", "id")
    db.create_index("Owner", "country")
    # Deliberately no index on Demo.ownerid.
    db.analyze()
    return db


SQL = (
    "SELECT o.name, d.salary FROM Owner o, Demo d "
    "WHERE o.id = d.ownerid AND o.country = 'DE' AND d.salary < 70000"
)


def expected_rows(db, sql):
    plan = db.plan(sql)
    expanded = QuerySpec(
        tables=plan.query.tables,
        local_predicates=plan.query.local_predicates,
        join_predicates=plan.query.join_predicates,
        projection=plan.projection,
    )
    return sorted(reference_join(db, expanded))


class TestHashProbeTable:
    def make_table(self):
        db = build_unindexed_join_db()
        return db.catalog.table("Demo"), db.catalog.meter

    def test_build_filters_locals(self):
        from repro.query.predicates import Comparison, Op

        table, meter = self.make_table()
        predicate = Comparison("salary", Op.LT, 40_000)
        hash_table = HashProbeTable(
            table, "ownerid", [(predicate, predicate.bind(table.schema))], meter
        )
        low_salary = sum(1 for row in table.raw_rows() if row[1] < 40_000)
        assert len(hash_table) == low_salary

    def test_probe_matches(self):
        table, meter = self.make_table()
        hash_table = HashProbeTable(table, "ownerid", [], meter)
        matches = hash_table.probe(5, meter)
        assert [row for _, row in matches] == [table.peek(5)]

    def test_probe_none_key(self):
        table, meter = self.make_table()
        hash_table = HashProbeTable(table, "ownerid", [], meter)
        assert hash_table.probe(None, meter) == []

    def test_build_charges_work(self):
        table, meter = self.make_table()
        before = meter.snapshot()
        HashProbeTable(table, "ownerid", [], meter)
        delta = meter - before
        assert delta.hash_build_entries == len(table)
        assert delta.row_fetches == len(table)

    def test_build_records_table_wide_local_counts(self):
        from repro.query.predicates import Comparison, Op

        table, meter = self.make_table()
        predicate = Comparison("salary", Op.LT, 40_000)
        counts = [[0, 0]]
        HashProbeTable(
            table,
            "ownerid",
            [(predicate, predicate.bind(table.schema))],
            meter,
            local_counts=counts,
        )
        assert counts[0][0] == len(table)
        assert 0 < counts[0][1] < len(table)


class TestCorrectness:
    @pytest.mark.parametrize(
        "policy", [HashProbePolicy.FALLBACK, HashProbePolicy.ALWAYS]
    )
    def test_matches_reference_without_join_index(self, policy):
        db = build_unindexed_join_db()
        config = AdaptiveConfig(mode=ReorderMode.BOTH, hash_probe_policy=policy)
        result = db.execute(SQL, config)
        assert sorted(result.rows) == expected_rows(db, SQL)

    @pytest.mark.parametrize(
        "policy", [HashProbePolicy.FALLBACK, HashProbePolicy.ALWAYS]
    )
    def test_matches_reference_with_indexes(self, policy, three_table_db):
        sql = (
            "SELECT o.name FROM Owner o, Car c, Demo d "
            "WHERE c.ownerid = o.id AND o.id = d.ownerid "
            "AND c.make = 'Rare' AND d.salary < 60000"
        )
        config = AdaptiveConfig(mode=ReorderMode.BOTH, hash_probe_policy=policy)
        result = three_table_db.execute(sql, config)
        assert sorted(result.rows) == expected_rows(three_table_db, sql)

    def test_positional_predicates_respected_under_chaos(self):
        """Driving switches + hash probes never duplicate or lose rows."""
        import random

        from tests.test_adaptive_correctness import ScriptedController

        db = build_three_table_db(owners=30, seed=3)
        sql = (
            "SELECT o.name, c.make, d.salary FROM Owner o, Car c, Demo d "
            "WHERE c.ownerid = o.id AND o.id = d.ownerid AND d.salary < 70000"
        )
        expected = expected_rows(db, sql)
        plan = db.plan(sql)
        for seed in range(5):
            config = AdaptiveConfig(
                mode=ReorderMode.BOTH,
                hash_probe_policy=HashProbePolicy.ALWAYS,
            )
            controller = ScriptedController(seed, 0.3, 0.5)
            executor = PipelineExecutor(plan, db.catalog, config, controller)
            controller.attach(executor)
            assert sorted(executor.run_to_completion()) == expected, seed


class TestEfficiency:
    def _run_with_demo_inner(self, db, policy):
        """Force Owner to drive so the unindexed Demo leg is probed."""
        plan = db.plan(SQL).with_order(("o", "d"))
        config = AdaptiveConfig(
            mode=ReorderMode.NONE, hash_probe_policy=policy
        )
        executor = PipelineExecutor(plan, db.catalog, config)
        rows = executor.run_to_completion()
        return rows, executor

    def test_hash_beats_scan_probe(self):
        db = build_unindexed_join_db(owners=400)
        scan_rows, scan_executor = self._run_with_demo_inner(
            db, HashProbePolicy.OFF
        )
        hash_rows, hash_executor = self._run_with_demo_inner(
            db, HashProbePolicy.FALLBACK
        )
        assert sorted(scan_rows) == sorted(hash_rows)
        # Scan probes are O(|T|) per incoming row; a hash build is O(|T|)
        # once. The gap must be large.
        assert hash_executor.work_units * 5 < scan_executor.work_units

    def test_build_reused_across_probes(self):
        db = build_unindexed_join_db(owners=300)
        _, executor = self._run_with_demo_inner(db, HashProbePolicy.FALLBACK)
        # Exactly one build: the charged entries equal the number of rows
        # passing the leg's local predicate (salary < 70000), once.
        qualifying = sum(
            1 for row in db.catalog.table("Demo").raw_rows() if row[1] < 70_000
        )
        assert executor.work.hash_build_entries == qualifying
        assert executor.work.hash_probes > 1

    def test_off_policy_never_hashes(self, three_table_db):
        result = three_table_db.execute(
            SQL.replace("Demo d", "Demo d"),  # same query shape
            AdaptiveConfig(mode=ReorderMode.NONE),
        )
        assert result.stats.work.hash_probes == 0
        assert result.stats.work.hash_build_entries == 0
