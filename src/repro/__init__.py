"""repro: a reproduction of "Adaptively Reordering Joins during Query
Execution" (Li, Shao, Markl, Beyer, Colby, Lohman - ICDE 2007).

The package implements, from scratch:

* an in-memory single-node DBMS substrate (heap tables, ordered indexes,
  resumable cursors, deterministic work accounting),
* a static cost-based optimizer with the classic uniformity/independence
  assumptions,
* a pipelined indexed nested-loop join executor, and
* the paper's contribution: run-time reordering of both inner and driving
  legs with monitored selectivities and duplicate prevention by positional
  predicates.

Public entry points: :class:`Database`, :class:`AdaptiveConfig`,
:class:`ReorderMode`, and the DMV workload generators under
:mod:`repro.dmv`.
"""

from repro.catalog.statistics import StatisticsLevel
from repro.core.config import (
    AdaptiveConfig,
    HashProbePolicy,
    InnerReorderPolicy,
    ReorderMode,
)
from repro.db import Database, ExecutionStats, QueryResult
from repro.obs import (
    EstimateSampler,
    MetricsRegistry,
    QueryObservability,
    Tracer,
    render_explain_analyze,
)
from repro.errors import (
    BudgetExceeded,
    CatalogError,
    ExecutionError,
    OracleViolation,
    PermanentStorageError,
    PlanError,
    QueryError,
    ReproError,
    SchemaError,
    SqlSyntaxError,
    StorageError,
    TransientStorageError,
)
from repro.query.sql.parser import parse_sql
from repro.robustness import (
    CancellationToken,
    ExecutionLimits,
    FaultPlan,
    FaultSpec,
    InvariantOracle,
)

__version__ = "1.1.0"

__all__ = [
    "AdaptiveConfig",
    "BudgetExceeded",
    "CancellationToken",
    "CatalogError",
    "Database",
    "EstimateSampler",
    "ExecutionError",
    "ExecutionLimits",
    "ExecutionStats",
    "MetricsRegistry",
    "QueryObservability",
    "Tracer",
    "FaultPlan",
    "FaultSpec",
    "HashProbePolicy",
    "InnerReorderPolicy",
    "InvariantOracle",
    "OracleViolation",
    "PermanentStorageError",
    "PlanError",
    "QueryError",
    "QueryResult",
    "ReorderMode",
    "ReproError",
    "SchemaError",
    "SqlSyntaxError",
    "StatisticsLevel",
    "StorageError",
    "TransientStorageError",
    "parse_sql",
    "render_explain_analyze",
    "__version__",
]
