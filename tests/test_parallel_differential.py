"""Differential tests: partitioned parallel execution is observably serial.

Range-partitioning the driving leg across worker processes must be a pure
performance change for query *results*, and the coordinator's merged
monitor estimates must equal what a single worker would have measured over
the same row flow. These tests pin that contract:

* identical result multiset for every mode x workers x batch setting
  (identical *list* for mode NONE, whose partitions concatenate in scan
  order);
* partition cursors cover the driving scan disjointly and completely;
* merged per-worker windowed counters reproduce the single-window
  estimates exactly while windows are under-filled;
* ``AggregatedWindow`` with one-sample chunks is bit-identical to
  ``SlidingWindow``;
* chunk-granularity monitoring never changes result rows;
* the reported critical path is positive and never exceeds total work.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro import AdaptiveConfig, ReorderMode
from repro.core.monitor import AggregatedWindow, SlidingWindow
from repro.dmv import load_dmv, six_table_workload
from repro.executor.monitor_merge import (
    inject_into_host,
    merge_snapshots,
    snapshot_executor,
)
from repro.executor.parallel import compute_partitions
from repro.executor.pipeline import PipelineExecutor

WORKERS = (2, 4)

PARALLEL_QUERIES = [
    "SELECT o.name, c.make FROM Car c, Owner o "
    "WHERE c.ownerid = o.id AND c.year >= 2005",
    "SELECT o.name, c.make FROM Demographics d, Owner o, Car c "
    "WHERE d.ownerid = o.id AND c.ownerid = o.id AND d.salary > 50000",
]


@pytest.fixture(scope="module")
def dmv():
    db, _ = load_dmv(scale=0.02, extended=True)
    yield db
    db.close()


@pytest.fixture(scope="module")
def workload(dmv):
    return PARALLEL_QUERIES + [q.sql for q in six_table_workload(count=2)]


@pytest.mark.parametrize(
    "mode",
    [ReorderMode.NONE, ReorderMode.DRIVING_ONLY, ReorderMode.BOTH],
    ids=lambda m: m.name.lower(),
)
def test_parallel_rows_match_scalar(dmv, workload, mode):
    for sql in workload:
        scalar = dmv.execute(sql, AdaptiveConfig(mode=mode))
        for workers in WORKERS:
            for batched in (False, True):
                config = AdaptiveConfig(
                    mode=mode, workers=workers, batched=batched
                )
                parallel = dmv.execute(sql, config)
                tag = f"w={workers} batched={batched}: {sql[:60]}"
                if mode is ReorderMode.NONE and not batched:
                    # Partitions are consumed in scan order, so even row
                    # *order* is the serial order.
                    assert parallel.rows == scalar.rows, tag
                else:
                    assert Counter(parallel.rows) == Counter(
                        scalar.rows
                    ), tag


def test_parallel_stats_report_critical_path(dmv):
    sql = PARALLEL_QUERIES[0]
    result = dmv.execute(
        sql, AdaptiveConfig(mode=ReorderMode.NONE, workers=4)
    )
    assert result.stats.workers == 4
    cp = result.stats.critical_path_work
    assert cp is not None and cp > 0
    assert cp <= result.stats.work.total_units
    serial = dmv.execute(sql, AdaptiveConfig(mode=ReorderMode.NONE))
    assert serial.stats.critical_path_work is None
    assert serial.stats.workers == 1


def test_partitions_cover_scan_disjointly(dmv):
    for sql in PARALLEL_QUERIES:
        plan = dmv.plan(sql)
        serial = PipelineExecutor(
            plan, dmv.catalog, AdaptiveConfig(mode=ReorderMode.NONE)
        )
        serial_rows = serial.run_to_completion()
        for slices in (2, 3, 7):
            partitions = compute_partitions(plan, dmv.catalog, slices)
            assert partitions is not None
            rows = []
            entries = 0
            for partition in partitions:
                executor = PipelineExecutor(
                    plan, dmv.catalog, AdaptiveConfig(mode=ReorderMode.NONE)
                )
                executor.driving_partition = partition
                rows.extend(executor.run_to_completion())
                got = executor.driving_cursor.entries_yielded
                assert got == partition.entry_count, (
                    f"partition yielded {got}, bounds promised "
                    f"{partition.entry_count}"
                )
                entries += got
            assert rows == serial_rows, f"slices={slices}: {sql[:60]}"
            assert entries == sum(p.entry_count for p in partitions)


def _run_monitored(dmv, plan, partition=None):
    """One MONITOR_ONLY pipeline run (optionally partition-bounded)."""
    config = AdaptiveConfig(mode=ReorderMode.MONITOR_ONLY)
    executor = PipelineExecutor(plan, dmv.catalog, config)
    if partition is not None:
        executor.driving_partition = partition
    executor.run_to_completion()
    return executor


def test_merged_estimates_equal_single_worker(dmv):
    """Partition -> snapshot -> merge -> inject == one unpartitioned run.

    The default history window (1000) is larger than any leg's incoming
    row count here, so no window evicts and the merge must be *exact*:
    every derived estimate (JC, index match rate, residual selectivity,
    probe cost) on the injected host equals the single run's.
    """
    for sql in PARALLEL_QUERIES:
        plan = dmv.plan(sql)
        whole = _run_monitored(dmv, plan)
        partitions = compute_partitions(plan, dmv.catalog, 4)
        assert partitions is not None
        snapshots = [
            snapshot_executor(_run_monitored(dmv, plan, partition))
            for partition in partitions
        ]
        merged = merge_snapshots(snapshots)
        host = PipelineExecutor(
            plan, dmv.catalog, AdaptiveConfig(mode=ReorderMode.MONITOR_ONLY)
        )
        host._compile_all_probes(start_position=1)
        inject_into_host(host, merged)
        for alias in plan.order[1:]:
            expect = whole.legs[alias].monitor
            got = host.legs[alias].monitor
            assert len(expect.window) == len(got.window), alias
            for estimate in (
                "join_cardinality",
                "index_match_rate",
                "residual_selectivity",
                "probe_cost",
            ):
                assert getattr(expect, estimate)() == pytest.approx(
                    getattr(got, estimate)(), abs=1e-12
                ), f"{alias}.{estimate}"
        whole_driving = whole.legs[plan.order[0]].driving_monitor
        host_driving = host.legs[plan.order[0]].driving_monitor
        assert host_driving.entries_scanned == whole_driving.entries_scanned
        assert host_driving.rows_survived == whole_driving.rows_survived


def test_aggregated_window_single_samples_match_sliding():
    rng = random.Random(20070426)
    sliding = SlidingWindow(64)
    aggregated = AggregatedWindow(64)
    for _ in range(500):
        matches = rng.randrange(0, 5)
        output = rng.randrange(0, matches + 1)
        work = rng.random() * 10
        sliding.observe(matches, output, work)
        aggregated.observe_chunk(1, matches, output, work)
        assert len(aggregated) == len(sliding)
        assert aggregated.sum_matches == sliding.sum_matches
        assert aggregated.sum_output == sliding.sum_output
        assert aggregated.sum_work == pytest.approx(sliding.sum_work)


def test_chunk_granularity_rows_match_exact(dmv, workload):
    for sql in workload:
        exact = dmv.execute(
            sql, AdaptiveConfig(mode=ReorderMode.BOTH, batched=True)
        )
        chunk = dmv.execute(
            sql,
            AdaptiveConfig(
                mode=ReorderMode.BOTH,
                batched=True,
                monitor_granularity="chunk",
            ),
        )
        assert Counter(chunk.rows) == Counter(exact.rows), sql[:60]
