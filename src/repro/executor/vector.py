"""Whole-query vectorized join cascade for static (mode NONE) runs.

The turbo loop (:meth:`BatchedPipelineExecutor._run_turbo`) already skips
every per-probe observation for static plans; what remains is the Python
nested-loop state machine itself. When every leg is columnar and every
probe is a pure indexed equality lookup, the whole join collapses into a
layered array computation:

1. the driving scan becomes an index-entry (or RID-range) slice plus a
   boolean mask for the residual local predicates;
2. each inner leg translates its probe-key column into *ranks* of the
   probed index's distinct-key sidecar (``searchsorted`` for numeric keys,
   a dictionary-code LUT for strings), then expands the flow through the
   leg's group kernel with ``repeat``/``cumsum`` CSR gathers — exactly the
   rows, in exactly the depth-first nested-loop order, of the scalar
   machine;
3. work-meter charges are computed from the same per-key kernel aggregates
   the scalar probes charge (descend per probe, ``max(entries, 1)`` per
   present/missing key, fetch per candidate row, short-circuit-exact local
   evals), summed per leg.

Gates are strict — any unsupported shape returns ``None`` and the generic
turbo loop runs instead. In particular the cascade requires: numpy, no
probe caches, columnar tables and indexes on every leg, index-equality
probes with no residual joins, no positional predicates, and vectorizable
local predicates everywhere. Partitioned (and resumed) driving cursors are
supported: the driving walk clamps each key range to the cursor's
``start_after``/``stop_at`` bounds with the exact skip/termination rules
of :class:`~repro.storage.cursor.IndexScanCursor`, which is how parallel
workers run the cascade over their :class:`ScanPartition` slices.
Like the rest of the turbo path this is only observably different from
the scalar machine in *intermediate* meter states, which nothing can read
(no limits, no observability, no faults, no oracle — enforced by the
turbo entry conditions).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.errors import ExecutionError
from repro.storage.columnar import (
    ColumnarIndex,
    ColumnarTable,
    _NumericColumn,
    _StringColumn,
)
from repro.storage.compiled import vector_spec
from repro.storage.counters import (
    INDEX_DESCEND_COST,
    INDEX_ENTRY_COST,
    PREDICATE_EVAL_COST,
    ROW_FETCH_COST,
)
from repro.storage.cursor import IndexScanCursor

try:  # pragma: no cover - exercised via the columnar backend tests
    import numpy as _np
except Exception:  # pragma: no cover - stdlib-only environments
    _np = None

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.executor.batch import BatchedPipelineExecutor


def _make_translator(
    source_column, keys_np, rank: dict, column_len: int
) -> Callable | None:
    """Key-column values -> sidecar ranks (-1 null, -2 missing), or None.

    The returned callable maps an int64 RID array over the *source* column
    to the probed index's distinct-key ranks, reproducing the scalar
    ``rank.get(row[key_slot])`` per element.
    """
    if isinstance(source_column, _NumericColumn):
        if source_column.boxed is not None:
            return None
        pair = source_column.np_values()
        if pair is None:
            return None
        values, notnull = pair
        if not rank:
            # Empty index: every non-null key misses, nulls stay null.
            def translate_empty(rids):
                return _np.where(notnull[rids], -2, -1)

            return translate_empty
        if keys_np is None:
            return None  # non-numeric (or unbuildable) key domain

        nkeys = len(keys_np)

        def translate_numeric(rids):
            src = values[rids]
            pos = _np.searchsorted(keys_np, src)
            clipped = _np.minimum(pos, nkeys - 1)
            ranks = _np.where(keys_np[clipped] == src, clipped, -2)
            ranks[~notnull[rids]] = -1
            return ranks

        return translate_numeric
    if isinstance(source_column, _StringColumn):
        if rank and not isinstance(next(iter(rank)), str):
            return None  # typed mismatch between key domains
        codes = source_column.np_codes()
        if codes is None:
            return None
        decode = source_column.decode
        lut = _np.full(len(decode) + 1, -2, dtype=_np.int64)
        for code, text in enumerate(decode):
            j = rank.get(text)
            if j is not None:
                lut[code] = j
        lut[-1] = -1  # NULL encodes as code -1 -> last LUT slot

        def translate_string(rids):
            return lut[codes[rids]]

        return translate_string
    return None


def vector_cascade(executor: "BatchedPipelineExecutor") -> Iterator | None:
    """A generator running the whole query vectorized, or None to fall back.

    Must be called after ``_open_driving``/``_compile_all_probes``; every
    gate failure returns ``None`` with no state mutated, so the caller's
    generic loop proceeds untouched.
    """
    if _np is None:
        executor.vector_gate_reason = "numpy unavailable (stdlib fallback)"
        return None
    if executor.probe_caches:
        executor.vector_gate_reason = "probe cache armed (--probe-cache)"
        return None
    order = list(executor.order)
    if len(order) < 2:
        executor.vector_gate_reason = "single-leg pipeline"
        return None
    legs = [executor.legs[alias] for alias in order]
    for leg in legs:
        if not isinstance(leg.table, ColumnarTable):
            executor.vector_gate_reason = f"leg {leg.alias!r}: row-backend table"
            return None
    cursor = executor.driving_cursor
    if cursor is None:
        executor.vector_gate_reason = "driving cursor not open"
        return None

    # -- driving leg: entry walk + residual-local masks -----------------
    leg0 = legs[0]
    if leg0.positional is not None:
        executor.vector_gate_reason = (
            f"leg {order[0]!r}: positional predicate (frozen cursor)"
        )
        return None
    pushed = leg0._pushed_predicate(cursor)
    residual0 = [
        predicate
        for predicate, _ in leg0.local_tests
        if predicate is not pushed
    ]
    is_index = isinstance(cursor, IndexScanCursor)
    if is_index:
        index0 = cursor.index
        if not isinstance(index0, ColumnarIndex):
            executor.vector_gate_reason = (
                f"leg {order[0]!r}: non-columnar driving index"
            )
            return None
        index0._sidecar()
        if index0._ent_rids is None:
            executor.vector_gate_reason = (
                f"leg {order[0]!r}: non-columnar driving index"
            )
            return None
    table0 = leg0.table
    schema0 = table0.schema
    masks0 = []
    for predicate in residual0:
        spec = vector_spec(predicate, schema0)
        mask = table0.mask_for_spec(spec) if spec is not None else None
        if mask is None:
            executor.vector_gate_reason = (
                f"leg {order[0]!r}: non-vectorizable local predicates"
            )
            return None
        masks0.append(mask)

    # -- inner legs: kernels + key translators --------------------------
    inner, reason = _adaptive_plan(executor)
    if inner is None:
        executor.vector_gate_reason = reason
        return None

    projection = [
        (output.alias, executor._slot_of(output.alias, output.column))
        for output in executor.plan.projection
    ]
    return _execute(
        executor, order, cursor, is_index, masks0, len(masks0), inner,
        projection,
    )


def _execute(
    executor,
    order: list[str],
    cursor,
    is_index: bool,
    masks0: list,
    ntests0: int,
    inner: list,
    projection: list[tuple[str, int]],
) -> Iterator[tuple]:
    """Run the planned cascade; charges mirror the turbo path exactly."""
    meter = executor.catalog.meter
    leg0 = executor.legs[order[0]]

    # Driving walk: the (key, RID) order of the ranges, or RID order,
    # clamped to the cursor's partition/resume bounds. The slice math
    # reproduces IndexScanCursor._entries (and TurboDrivingScan's charge
    # placement) exactly: ranges wholly behind ``start_after`` are skipped
    # without a descend, every other range charges one descend even when
    # empty after clamping, and the walk terminates at the first range
    # where an entry at or past ``stop_at`` is actually seen — later
    # ranges are never entered.
    if is_index:
        index0 = cursor.index
        index0._sidecar()
        ent_rids = index0._ent_rids
        entries = index0._entries
        start = cursor.last_position
        stop = cursor.stop_at
        stop_pos = bisect_left(entries, stop) if stop is not None else None
        slices = []
        walked = 0
        descends = 0
        for key_range in cursor.ranges:
            if start is not None:
                high = key_range.high
                if high is not None and (
                    high < start[0]
                    or (high == start[0] and not key_range.high_inclusive)
                ):
                    continue  # behind the resume position: no descend
            lo, hi = index0._range_bounds(
                key_range.low,
                key_range.high,
                key_range.low_inclusive,
                key_range.high_inclusive,
            )
            if start is not None:
                lo = max(lo, bisect_right(entries, (start[0], start[1])))
            descends += 1
            if stop_pos is not None:
                cut = min(hi, max(lo, stop_pos))
                if cut > lo:
                    slices.append(ent_rids[lo:cut])
                    walked += cut - lo
                if lo < hi and stop_pos < hi:
                    break  # the scalar walk sees an entry >= stop_at here
            elif hi > lo:
                slices.append(ent_rids[lo:hi])
                walked += hi - lo
        if len(slices) == 1:
            walk = slices[0]
        elif slices:
            walk = _np.concatenate(slices)
        else:
            walk = _np.zeros(0, dtype=_np.int64)
        meter.index_descends += descends
        meter.index_entries += walked
    else:
        last = cursor.last_position
        begin = 0 if last is None else last[0] + 1
        end = len(leg0.table)
        if cursor.stop_at is not None:
            end = min(end, cursor.stop_at[0])
        walked = max(0, end - begin)
        walk = _np.arange(begin, begin + walked, dtype=_np.int64)
    # Every walked entry is a row fetch; residual locals charge
    # len(tests) per scanned row (the scalar driving walk's bulk rate).
    meter.row_fetches += walked
    if ntests0:
        meter.predicate_evals += walked * ntests0
    if masks0:
        alive = masks0[0][walk]
        for mask in masks0[1:]:
            alive &= mask[walk]
        survivors = walk[alive]
    else:
        survivors = walk
    flow = int(len(survivors))
    executor.driving_rows_since_check += flow
    executor.driving_rows_total += flow

    # Layered expansion: ancestors[alias] maps every in-flight joined
    # tuple to its RID at that alias, in depth-first nested-loop order.
    ancestors: dict[str, Any] = {order[0]: survivors}
    for leg, config, kernel, translate in inner:
        if flow == 0:
            ancestors[leg.alias] = _np.zeros(0, dtype=_np.int64)
            continue
        ranks = translate(ancestors[config.key_alias])
        present = ranks >= 0
        present_ranks = ranks[present]
        # Scalar probe charges: descend always; present keys walk their
        # full group (entries + fetches + short-circuit local evals);
        # missing keys touch one entry; null keys descend only.
        meter.index_descends += flow
        if len(present_ranks):
            group_sizes = kernel.totals[present_ranks]
            touched = int(group_sizes.sum())
            meter.index_entries += touched + int(
                _np.count_nonzero(ranks == -2)
            )
            meter.row_fetches += touched
            meter.predicate_evals += int(
                kernel.evals[present_ranks].sum()
            )
        else:
            meter.index_entries += int(_np.count_nonzero(ranks == -2))
        offsets = kernel.pass_offsets
        matches = _np.zeros(flow, dtype=_np.int64)
        if len(present_ranks):
            matches[present] = (
                offsets[present_ranks + 1] - offsets[present_ranks]
            )
        total = int(matches.sum())
        parent = _np.repeat(_np.arange(flow, dtype=_np.int64), matches)
        if total:
            starts = _np.zeros(flow, dtype=_np.int64)
            starts[present] = offsets[present_ranks]
            base = _np.repeat(starts, matches)
            within = _np.arange(total, dtype=_np.int64) - _np.repeat(
                _np.cumsum(matches) - matches, matches
            )
            new_rids = kernel.pass_rids[base + within]
        else:
            new_rids = _np.zeros(0, dtype=_np.int64)
        ancestors = {
            alias: rids[parent] for alias, rids in ancestors.items()
        }
        ancestors[leg.alias] = new_rids
        flow = total

    meter.rows_emitted += flow
    executor.rows_emitted += flow
    executor.depleted_from = 0
    if flow:
        if not projection:  # degenerate empty projection
            empty = ()
            for _ in range(flow):
                yield empty
            return
        columns = []
        for alias, slot in projection:
            raw = executor.legs[alias].table.raw_rows()
            rids = ancestors[alias].tolist()
            columns.append([raw[rid][slot] for rid in rids])
        yield from zip(*columns)


# ---------------------------------------------------------------------------
# Chunked adaptive cascade (monitored modes, chunk granularity)
# ---------------------------------------------------------------------------
def _adaptive_plan(executor) -> tuple[list | None, str | None]:
    """Per-leg kernels/translators for the *current* order, or a gate reason.

    Recomputed whenever the order or a probe epoch changes (an applied
    inner reorder permutes the cascade mid-scan; a driving switch freezes
    the old driving leg behind a positional predicate, which fails the
    gate here and hands execution back to the generic loop).
    """
    order = executor.order
    inner: list = []
    for position in range(1, len(order)):
        alias = order[position]
        leg = executor.legs[alias]
        config = leg.probe_config
        if config is None or config.hash_column is not None:
            return None, f"leg {alias!r}: hash-probed or uncompiled access"
        if (
            config.access_index is None
            or config.key_alias is None
            or config.key_slot is None
        ):
            return None, f"leg {alias!r}: non-indexed probe"
        if config.residual_joins:
            return None, f"leg {alias!r}: residual join predicates"
        if leg.positional is not None:
            return None, f"leg {alias!r}: positional predicate (frozen cursor)"
        index = config.access_index
        if not isinstance(index, ColumnarIndex):
            return None, f"leg {alias!r}: non-columnar index"
        built = index.cascade_groups(leg.local_tests)
        if built is None:
            return None, f"leg {alias!r}: non-vectorizable local predicates"
        kernel, keys_np, rank = built
        source_table = executor.legs[config.key_alias].table
        translate = _make_translator(
            source_table.column_store(config.key_slot),
            keys_np,
            rank,
            len(source_table),
        )
        if translate is None:
            return None, f"leg {alias!r}: untranslatable key column"
        inner.append((leg, config, kernel, translate))
    return inner, None


def _plan_signature(executor) -> tuple:
    """Cheap change detector: any reorder or probe recompile moves this."""
    return (
        tuple(executor.order),
        tuple(leg.probe_epoch for leg in executor.legs.values()),
    )


def adaptive_cascade(executor: "BatchedPipelineExecutor") -> Iterator | None:
    """The chunked vectorized adaptive engine, or None to fall back.

    Runs the whole cascade one driving chunk at a time under the
    monitored modes: each chunk's inner legs expand through the same CSR
    group kernels as the static cascade, each leg's
    :class:`~repro.core.monitor.AggregatedWindow` fold is derived from the
    kernel aggregates (numerically identical to what ``observe_chunk``
    folds from scalar probes — see ``LegMonitor.defer_chunk``), and the
    rank-rule checks run at chunk boundaries: one inner check at position
    1 and one driving check per chunk, exactly the generic chunked loop's
    cadence. Applied inner reorders permute the remaining cascade legs
    mid-scan (plan rebuild); driving switches re-enter the generic
    depleted-state machinery (the generator returns False and the caller
    continues with the partially consumed cursors).

    Must be called after ``_open_driving``/``_compile_all_probes``. Every
    gate failure returns None with ``executor.vector_gate_reason`` set and
    no state mutated.
    """
    if _np is None:
        executor.vector_gate_reason = "numpy unavailable (stdlib fallback)"
        return None
    if executor.probe_caches:
        executor.vector_gate_reason = "probe cache armed (--probe-cache)"
        return None
    if len(executor.order) < 2:
        executor.vector_gate_reason = "single-leg pipeline"
        return None
    for alias in executor.order:
        if not isinstance(executor.legs[alias].table, ColumnarTable):
            executor.vector_gate_reason = f"leg {alias!r}: row-backend table"
            return None
    inner, reason = _adaptive_plan(executor)
    if inner is None:
        executor.vector_gate_reason = reason
        return None
    return _adaptive_run(executor, inner)


def _adaptive_run(executor, inner: list):
    """Chunk loop: consume -> cascade -> fold -> boundary checks.

    Returns True when the query completed, False to hand the partially
    consumed cursors back to the generic chunked loop at a chunk boundary
    (all prepared state drained, windows flushed, counters consistent).

    Observable-parity contract with the generic chunked ``_run_fast``:

    * driving rows are consumed through the *real* charging iterator
      (``RuntimeLeg.driving_rows``) against a ``DrivingShadow``
      prediction, so scan charges, the driving monitor, and freeze/resume
      positions are identical by construction — including the trailing
      non-survivor scan landing *after* the final boundary's checks;
    * each inner leg's meter charges and window fold are the kernel-sum
      twins of ``probe_batch_fast``'s lean aggregates (descend per outer
      row; ``max(entries, 1)`` per present/missing key; fetch + local
      evals per candidate row; all cost constants exact binary fractions,
      so the float work sums are bit-identical under regrouping);
    * one window fold per leg per chunk, applied at the boundary before
      any check or snapshot can read a window (``_flush_chunk_folds``).
    """
    from repro.executor.batch import DrivingShadow  # deferred: import cycle

    config = executor.config
    mode = config.mode
    batch_size = config.batch_size
    check_freq = config.check_frequency
    controller = executor.controller
    meter = executor.catalog.meter
    reorders_inner = mode.reorders_inner
    reorders_driving = mode.reorders_driving
    legs_map = executor.legs

    projection = [
        (output.alias, executor._slot_of(output.alias, output.column))
        for output in executor.plan.projection
    ]
    plan_sig = _plan_signature(executor)
    shadow = None
    while True:
        driving_alias = executor.order[0]
        cursor = executor.driving_cursor
        it = executor._driving_iter
        assert cursor is not None and it is not None
        if shadow is None:
            shadow = DrivingShadow(legs_map[driving_alias], cursor)
        predicted = shadow.next_survivors(batch_size)
        if not predicted:
            # Scan exhausted: drain the trailing non-survivors through the
            # real iterator (charging scan work and driving-monitor records
            # exactly like the generic loop's final next()), then finish.
            row = next(it, None)
            if row is not None:
                raise ExecutionError(
                    "adaptive cascade: driving lookahead diverged from "
                    f"the cursor on leg {driving_alias!r}"
                )
            executor.depleted_from = 0
            executor._flush_chunk_folds()
            return True
        rids: list[int] = []
        last_position = None
        for expect in predicted:
            row = next(it, None)
            if row is not expect:
                raise ExecutionError(
                    "adaptive cascade: driving lookahead diverged from "
                    f"the cursor on leg {driving_alias!r}"
                )
            rids.append(cursor.last_position[-1])
        flow = len(rids)
        executor.depleted_from = None
        executor.driving_rows_since_check += flow
        executor.driving_rows_total += flow

        # -- layered expansion, charging per-leg kernel aggregates -------
        ancestors: dict[str, Any] = {
            driving_alias: _np.asarray(rids, dtype=_np.int64)
        }
        for leg, pconfig, kernel, translate in inner:
            if flow == 0:
                ancestors[leg.alias] = _np.zeros(0, dtype=_np.int64)
                continue
            ranks = translate(ancestors[pconfig.key_alias])
            present = ranks >= 0
            present_ranks = ranks[present]
            npresent = len(present_ranks)
            missing = int(_np.count_nonzero(ranks == -2))
            meter.index_descends += flow
            if npresent:
                group_sizes = kernel.totals[present_ranks]
                touched = int(group_sizes.sum())
                evals = int(kernel.evals[present_ranks].sum())
            else:
                touched = 0
                evals = 0
            entries = touched + missing
            meter.index_entries += entries
            meter.row_fetches += touched
            meter.predicate_evals += evals
            offsets = kernel.pass_offsets
            matches = _np.zeros(flow, dtype=_np.int64)
            if npresent:
                matches[present] = (
                    offsets[present_ranks + 1] - offsets[present_ranks]
                )
            total = int(matches.sum())
            if leg.monitoring_enabled:
                meter.monitor_updates += flow
                # The lean aggregate: (incoming, index matches, output,
                # work) — deferred, applied as one window entry per chunk.
                leg.monitor.defer_chunk(
                    flow,
                    touched,
                    total,
                    flow * INDEX_DESCEND_COST
                    + entries * INDEX_ENTRY_COST
                    + touched * ROW_FETCH_COST
                    + evals * PREDICATE_EVAL_COST,
                )
                if leg.local_tests:
                    counts_list = leg.local_counts
                    ev = kernel.ev
                    pa = kernel.pa
                    for slot in range(len(counts_list)):
                        counts = counts_list[slot]
                        if npresent:
                            counts[0] += int(ev[slot][present_ranks].sum())
                            counts[1] += int(pa[slot][present_ranks].sum())
                leg.incoming_since_check += flow
            parent = _np.repeat(_np.arange(flow, dtype=_np.int64), matches)
            if total:
                starts = _np.zeros(flow, dtype=_np.int64)
                starts[present] = offsets[present_ranks]
                base = _np.repeat(starts, matches)
                within = _np.arange(total, dtype=_np.int64) - _np.repeat(
                    _np.cumsum(matches) - matches, matches
                )
                new_rids = kernel.pass_rids[base + within]
            else:
                new_rids = _np.zeros(0, dtype=_np.int64)
            ancestors = {
                alias: arr[parent] for alias, arr in ancestors.items()
            }
            ancestors[leg.alias] = new_rids
            flow = total

        meter.rows_emitted += flow
        executor.rows_emitted += flow
        if flow:
            if not projection:  # degenerate empty projection
                empty = ()
                for _ in range(flow):
                    yield empty
            else:
                columns = []
                for alias, slot in projection:
                    raw = legs_map[alias].table.raw_rows()
                    out_rids = ancestors[alias].tolist()
                    columns.append([raw[rid][slot] for rid in out_rids])
                yield from zip(*columns)

        # -- chunk boundary: flush folds, then the two checks ------------
        executor._flush_chunk_folds()
        if (
            reorders_inner
            and len(executor.order) > 2
            and legs_map[executor.order[1]].incoming_since_check >= check_freq
        ):
            executor.depleted_from = 1
            controller.on_suffix_depleted(1)
        executor.depleted_from = 0
        if (
            reorders_driving
            and executor.driving_rows_since_check >= check_freq
            and controller.on_pipeline_depleted()
        ):
            shadow = None  # driving switch: fresh cursor, fresh lookahead
        sig = _plan_signature(executor)
        if sig != plan_sig:
            inner, reason = _adaptive_plan(executor)
            if inner is None:
                # Typically a driving switch froze the old driving leg
                # behind a positional predicate: hand the cursors back to
                # the generic chunked loop mid-query.
                executor.vector_gate_reason = reason
                executor.depleted_from = 0
                return False
            plan_sig = sig
