"""E8 — Fig 11: six-table join reordering scatter (Sec 5.5).

Paper shape: 100 six-table queries over the DMV data extended with Location
and Time; most queries speed up (up to 8x), a few degrade because of
incorrect index selection on the new driving leg.
"""

from conftest import emit_report

from repro.bench import scatter_experiment


def test_fig11_six_table(benchmark, dmv_extended, six_workload):
    db, _ = dmv_extended
    result = benchmark.pedantic(
        lambda: scatter_experiment(db, six_workload), rounds=1, iterations=1
    )
    emit_report(
        "fig11_six_table",
        result.report("Fig 11 — six-table join reordering vs no switch"),
    )
    assert result.total_improvement > 0.05
    assert result.max_speedup > 1.5
    assert len(result.degraded) <= max(len(result.pairs) // 8, 8)
