"""Differential tests: the columnar backend is observably the row store.

The storage backend is an implementation detail below the executor's
semantics: for every reorder mode, batch setting, worker count, and
probe-cache setting, the columnar backend must produce

* identical result rows **in identical order**,
* an identical final :class:`~repro.storage.counters.WorkMeter` (the
  deterministic work-unit accounting the paper's comparisons rest on),
* identical :class:`~repro.core.events.AdaptationEvent` sequences (same
  decisions at the same driving-row positions),

as the row backend running the same queries. This pins the tentpole
contract that columnar execution — typed columns, compiled predicates,
kernel-vectorized probes, and the whole-query cascade — is a pure speed
change, never a semantic one.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import AdaptiveConfig, ReorderMode
from repro.dmv import load_dmv, six_table_workload

SCALE = 0.02

#: Small joins exercise the two- and three-leg shapes (incl. a table-scan
#: driving leg); the six-table templates exercise deep adaptive pipelines.
SMALL_QUERIES = [
    "SELECT o.name, c.make FROM Car c, Owner o "
    "WHERE c.ownerid = o.id AND c.year >= 2005",
    "SELECT o.name, d.salary FROM Demographics d, Owner o, Car c "
    "WHERE d.ownerid = o.id AND c.ownerid = o.id AND d.salary > 50000 "
    "AND c.make = 'Mazda'",
]

CONFIGS = [
    ("scalar", {}),
    ("batched", {"batched": True}),
    ("batched-64", {"batched": True, "batch_size": 64}),
    ("cached", {"batched": True, "probe_cache_size": 256}),
    ("chunk", {"batched": True, "monitor_granularity": "chunk"}),
    ("chunk-cached", {
        "batched": True,
        "monitor_granularity": "chunk",
        "probe_cache_size": 256,
    }),
    ("workers-2", {"batched": True, "workers": 2}),
    ("workers-2-chunk", {
        "batched": True,
        "monitor_granularity": "chunk",
        "workers": 2,
    }),
    ("workers-4-chunk", {
        "batched": True,
        "monitor_granularity": "chunk",
        "workers": 4,
    }),
]


@pytest.fixture(scope="module")
def row_db():
    db, _ = load_dmv(scale=SCALE, extended=True, backend="row")
    yield db
    db.close()


@pytest.fixture(scope="module")
def columnar_db():
    db, _ = load_dmv(scale=SCALE, extended=True, backend="columnar")
    yield db
    db.close()


@pytest.fixture(scope="module")
def workload():
    return SMALL_QUERIES + [q.sql for q in six_table_workload(count=3)]


@pytest.mark.parametrize(
    "mode",
    [ReorderMode.NONE, ReorderMode.INNER_ONLY, ReorderMode.BOTH],
    ids=lambda m: m.name.lower(),
)
@pytest.mark.parametrize("name,overrides", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_columnar_bit_identical_to_row(
    row_db, columnar_db, workload, mode, name, overrides
):
    config = AdaptiveConfig(mode=mode, **overrides)
    for sql in workload:
        row = row_db.execute(sql, config)
        col = columnar_db.execute(sql, config)
        tag = f"{mode.name} {name}: {sql[:60]}"
        assert col.rows == row.rows, tag
        assert dataclasses.asdict(col.stats.work) == dataclasses.asdict(
            row.stats.work
        ), tag
        assert col.stats.events == row.stats.events, tag


def test_columnar_adapts_on_the_workload(columnar_db, workload):
    """Guard against vacuous event equality: mode BOTH must actually adapt
    somewhere on this workload, so the event comparison above compares
    non-empty sequences."""
    config = AdaptiveConfig(mode=ReorderMode.BOTH, batched=True)
    total = 0
    for sql in workload:
        total += len(columnar_db.execute(sql, config).stats.events)
    assert total > 0


def test_adaptive_vector_engine_engages(columnar_db, workload):
    """Guard against a vacuous chunk-config comparison: the columnar chunk
    configuration must actually run the vectorized adaptive cascade (or
    hand off mid-query after a driving switch), never silently fall back
    to the generic loop from the start. Without numpy the cascade must
    instead gate out *cleanly* — generic chunked loop, reason recorded."""
    from repro.storage.columnar import _np as have_numpy

    for mode in (ReorderMode.INNER_ONLY, ReorderMode.BOTH):
        config = AdaptiveConfig(
            mode=mode, batched=True, monitor_granularity="chunk"
        )
        engines = {
            columnar_db.execute(sql, config).stats.engine for sql in workload
        }
        if have_numpy is not None:
            assert engines <= {
                "vector-adaptive",
                "vector-adaptive+fast",
            }, engines
            assert "vector-adaptive" in engines
        else:
            assert engines == {"fast"}, engines


@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_vector_engines_engage(columnar_db, workload, workers):
    """Parallel columnar chunk runs report the real per-worker engines:
    with numpy every partition (and any serial continuation) runs a
    vectorized cascade — mode NONE the static cascade, monitored modes
    the adaptive cascade; without numpy the whole query falls back
    cleanly to the generic loops with the gate reason recorded."""
    from repro.storage.columnar import _np as have_numpy

    for mode, vector_engines in (
        (ReorderMode.NONE, {"vector"}),
        (ReorderMode.BOTH, {"vector-adaptive", "vector-adaptive+fast"}),
    ):
        config = AdaptiveConfig(
            mode=mode,
            batched=True,
            monitor_granularity="chunk",
            workers=workers,
        )
        for sql in workload:
            stats = columnar_db.execute(sql, config).stats
            assert stats.engine == "parallel", (mode.name, sql[:60])
            assert stats.workers == workers
            assert stats.worker_engines, (mode.name, sql[:60])
            engines = set(stats.worker_engines)
            if have_numpy is not None:
                assert engines <= vector_engines, (mode.name, engines)
                assert stats.vector_gate is None, stats.vector_gate
            else:
                assert not any(
                    engine.startswith("vector") for engine in engines
                ), engines
                assert (
                    stats.vector_gate
                    == "numpy unavailable (stdlib fallback)"
                )


def test_parallel_warmup_kernel_gauge(columnar_db, workload):
    """The pre-fork warm-up leaves the kernel plan materialized on the
    catalog, observable through the storage_stats gauge workers COW-share."""
    from repro.storage.columnar import _np as have_numpy

    if have_numpy is None:
        pytest.skip("kernel plan needs numpy")
    config = AdaptiveConfig(
        mode=ReorderMode.BOTH,
        batched=True,
        monitor_granularity="chunk",
        workers=2,
    )
    columnar_db.execute(workload[-1], config)
    stats = columnar_db.storage_stats()
    assert stats["kernel_plan_bytes"] > 0
    assert stats["kernel_plan_bytes"] == sum(
        entry["kernel_bytes"] for entry in stats["per_table"]
    )


def test_stdlib_fallback_gate_reason(columnar_db, workload):
    """The stdlib (no-numpy) fallback names its gate instead of failing:
    a chunk-config columnar query that cannot run the vectorized cascade
    reports why on ``ExecutionStats.vector_gate``."""
    from repro.storage.columnar import _np as have_numpy

    if have_numpy is not None:
        pytest.skip("vector cascade available; fallback reason not exercised")
    config = AdaptiveConfig(
        mode=ReorderMode.BOTH, batched=True, monitor_granularity="chunk"
    )
    result = columnar_db.execute(workload[0], config)
    assert result.stats.vector_gate == "numpy unavailable (stdlib fallback)"


def _flight_record_dict(db, sql, config):
    """One query's flight record, normalized for cross-backend comparison.

    ``query_id``/``ts``/``wall_ms`` are run-local (counter, clock);
    ``engine`` (and its companions ``worker_engines``/``vector_gate``,
    which name the engine that ran and why a cascade did not) is the one
    *expected* cross-backend difference — the whole point of the
    differential is that a different engine produces the same record;
    the per-leg wall figures inside ``legs`` stay because the audit
    snapshots carry only deterministic counters.
    """
    from repro.obs.recorder import FlightRecorder

    recorder = FlightRecorder(capacity=4)
    bundle = recorder.arm(config)
    result = db.execute(sql, config, obs=bundle)
    record = recorder.finish_query(bundle, result, sql=sql, config=config)
    data = record.to_dict()
    for key in ("query_id", "ts", "wall_ms", "engine", "worker_engines",
                "vector_gate"):
        data.pop(key, None)
    return data


@pytest.mark.parametrize(
    "mode",
    [ReorderMode.INNER_ONLY, ReorderMode.BOTH],
    ids=lambda m: m.name.lower(),
)
def test_flight_records_identical_across_engines(
    row_db, columnar_db, workload, mode
):
    """Chunk-config flight records are engine-invariant: decision audit,
    per-leg window snapshots, events, and work totals all match between
    the row backend's generic chunked loop and the columnar backend's
    vectorized adaptive cascade."""
    config = AdaptiveConfig(
        mode=mode, batched=True, monitor_granularity="chunk"
    )
    for sql in workload:
        row = _flight_record_dict(row_db, sql, config)
        col = _flight_record_dict(columnar_db, sql, config)
        assert col == row, f"{mode.name}: {sql[:60]}"
