"""SQL text canonicalization: plan-cache keys and template signatures.

Shared by the server's plan cache (:mod:`repro.server.plancache`) and the
flight recorder (:mod:`repro.obs.recorder`), which groups telemetry
records per query *template*. Lives under ``repro.query.sql`` so the
observability layer never has to import the server package.
"""

from __future__ import annotations

import re

# Split SQL into single-quoted string literals and everything else, so
# normalization never rewrites inside a literal ('' is the escaped quote).
_TOKEN = re.compile(r"'(?:[^']|'')*'|[^']+")
_WS = re.compile(r"\s+")
_NUMBER = re.compile(r"\b\d+(?:\.\d+)?\b")


def normalize_sql(sql: str) -> str:
    """Canonical text of *sql*: whitespace collapsed outside string literals.

    This is the **plan-cache key**. Literals are deliberately preserved:
    a :class:`~repro.optimizer.plans.PipelinePlan` embeds its predicate
    constants (index ranges, residual comparisons), so two queries that
    differ only in literals need *different* plans — the cache may only
    hit on semantically identical statements.
    """
    parts: list[str] = []
    for match in _TOKEN.finditer(sql):
        token = match.group(0)
        if token.startswith("'"):
            parts.append(token)
        else:
            parts.append(_WS.sub(" ", token))
    return "".join(parts).strip()


def template_signature(sql: str) -> str:
    """The query's *template*: literals replaced by ``?``.

    Used for grouping metrics and telemetry (per-template hit rates,
    latency, estimate errors) — never as a plan-cache key, because plans
    embed their constants.
    """
    parts: list[str] = []
    for match in _TOKEN.finditer(sql):
        token = match.group(0)
        if token.startswith("'"):
            parts.append("?")
        else:
            parts.append(_NUMBER.sub("?", _WS.sub(" ", token)))
    return "".join(parts).strip()
