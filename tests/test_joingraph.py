"""Unit tests for repro.query.joingraph (incl. transitive closure)."""

import pytest

from repro.errors import QueryError
from repro.query.joingraph import JoinGraph, JoinPredicate


def chain_graph() -> JoinGraph:
    """c.ownerid = o.id, o.id = d.ownerid, c.id = a.carid."""
    return JoinGraph(
        ["o", "c", "d", "a"],
        [
            JoinPredicate("c", "ownerid", "o", "id"),
            JoinPredicate("o", "id", "d", "ownerid"),
            JoinPredicate("c", "id", "a", "carid"),
        ],
    )


class TestJoinPredicate:
    def test_self_join_rejected(self):
        with pytest.raises(QueryError):
            JoinPredicate("t", "a", "t", "b")

    def test_column_of(self):
        predicate = JoinPredicate("l", "x", "r", "y")
        assert predicate.column_of("l") == "x"
        assert predicate.column_of("r") == "y"

    def test_column_of_unknown(self):
        with pytest.raises(QueryError):
            JoinPredicate("l", "x", "r", "y").column_of("z")

    def test_other(self):
        predicate = JoinPredicate("l", "x", "r", "y")
        assert predicate.other("l") == "r"
        assert predicate.other("r") == "l"

    def test_touches(self):
        predicate = JoinPredicate("l", "x", "r", "y")
        assert predicate.touches("l") and predicate.touches("r")
        assert not predicate.touches("z")

    def test_value_equality(self):
        assert JoinPredicate("l", "x", "r", "y") == JoinPredicate("l", "x", "r", "y")


class TestConstruction:
    def test_duplicate_aliases(self):
        with pytest.raises(QueryError):
            JoinGraph(["a", "a"], [])

    def test_unknown_alias_in_predicate(self):
        with pytest.raises(QueryError, match="unknown"):
            JoinGraph(["a"], [JoinPredicate("a", "x", "b", "y")])


class TestEquivalenceClasses:
    def test_transitive_closure_merges(self):
        graph = chain_graph()
        # {c.ownerid, o.id, d.ownerid} is one class.
        class_id = graph.class_id("o", "id")
        members = set(graph.class_members(class_id))
        assert members == {("c", "ownerid"), ("o", "id"), ("d", "ownerid")}

    def test_separate_classes(self):
        graph = chain_graph()
        assert graph.class_id("c", "id") != graph.class_id("c", "ownerid")

    def test_non_join_column_has_no_class(self):
        assert chain_graph().class_id("o", "name") is None


class TestAvailablePredicates:
    def test_direct_predicate(self):
        graph = chain_graph()
        (predicate,) = graph.available_predicates("o", ["c"])
        assert predicate.column_of("o") == "id"
        assert predicate.other("o") == "c"

    def test_derived_predicate(self):
        # d joins c through the o.id equivalence class even if o is unbound.
        graph = chain_graph()
        (predicate,) = graph.available_predicates("d", ["c"])
        assert predicate.column_of("d") == "ownerid"
        assert predicate.other("d") == "c"
        assert predicate.column_of("c") == "ownerid"

    def test_one_per_class(self):
        # With both c and o bound, d still gets exactly one predicate.
        graph = chain_graph()
        assert len(graph.available_predicates("d", ["c", "o"])) == 1

    def test_nothing_available(self):
        graph = chain_graph()
        assert graph.available_predicates("d", ["a"]) == []  # a shares no class
        assert graph.available_predicates("o", []) == []

    def test_unknown_alias(self):
        with pytest.raises(QueryError):
            chain_graph().available_predicates("zz", [])


class TestConnectivity:
    def test_neighbors_include_derived(self):
        graph = chain_graph()
        assert graph.neighbors("d") == {"c", "o"}

    def test_is_connected(self):
        assert chain_graph().is_connected()

    def test_disconnected(self):
        graph = JoinGraph(["a", "b"], [])
        assert not graph.is_connected()

    def test_is_connected_order(self):
        graph = chain_graph()
        assert graph.is_connected_order(["c", "d", "o", "a"])  # derived edge
        assert not graph.is_connected_order(["d", "a", "c", "o"])

    def test_connected_orders_cover_derived(self):
        graph = chain_graph()
        orders = set(graph.connected_orders())
        assert ("c", "d", "o", "a") in orders
        assert all(len(order) == 4 for order in orders)

    def test_connected_orders_with_prefix(self):
        graph = chain_graph()
        orders = list(graph.connected_orders(("o",)))
        assert all(order[0] == "o" for order in orders)

    def test_is_cyclic(self):
        assert not chain_graph().is_cyclic()
        cyclic = JoinGraph(
            ["a", "b", "c"],
            [
                JoinPredicate("a", "x", "b", "x"),
                JoinPredicate("b", "y", "c", "y"),
                JoinPredicate("a", "z", "c", "z"),
            ],
        )
        assert cyclic.is_cyclic()
