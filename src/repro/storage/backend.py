"""The :class:`StorageBackend` interface: named (table, index) pairings.

A backend is a pair of constructors — one for tables, one for indexes —
plus a name the rest of the stack threads through catalog → database →
DMV generator → CLI/server. The ``row`` backend is the reference oracle
(`HeapTable`/`SortedIndex`, plain row tuples, bisect probes); ``columnar``
stores typed columns and probes flat rank arrays, but honours the exact
same RID semantics and work-charge points, so results, AdaptationEvents,
WorkMeter totals, and flight-recorder output are bit-identical across
backends — only wall-clock differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ReproError
from repro.storage.columnar import ColumnarIndex, ColumnarTable
from repro.storage.counters import WorkMeter
from repro.storage.index import SortedIndex
from repro.storage.schema import TableSchema
from repro.storage.table import HeapTable


@dataclass(frozen=True)
class StorageBackend:
    """Constructors for one storage layout."""

    name: str
    table_factory: Callable[[TableSchema, WorkMeter], HeapTable]
    index_factory: Callable[[str, HeapTable, str], SortedIndex]

    def make_table(self, schema: TableSchema, meter: WorkMeter) -> HeapTable:
        return self.table_factory(schema, meter)

    def make_index(self, name: str, table: HeapTable, column: str) -> SortedIndex:
        return self.index_factory(name, table, column)


ROW_BACKEND = StorageBackend(
    name="row", table_factory=HeapTable, index_factory=SortedIndex
)
COLUMNAR_BACKEND = StorageBackend(
    name="columnar", table_factory=ColumnarTable, index_factory=ColumnarIndex
)

BACKENDS: dict[str, StorageBackend] = {
    ROW_BACKEND.name: ROW_BACKEND,
    COLUMNAR_BACKEND.name: COLUMNAR_BACKEND,
}

#: Order and names surfaced by the CLI's ``--backend`` choices.
BACKEND_NAMES = tuple(BACKENDS)


def get_backend(name: str | StorageBackend) -> StorageBackend:
    """Resolve a backend by name (idempotent on backend instances)."""
    if isinstance(name, StorageBackend):
        return name
    backend = BACKENDS.get(name)
    if backend is None:
        raise ReproError(
            f"unknown storage backend {name!r}; expected one of {sorted(BACKENDS)}"
        )
    return backend
