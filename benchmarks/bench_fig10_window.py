"""E7 — Fig 10: number of order switches vs history window size "w".

Paper shape: with a small window the monitored estimates fluctuate and the
average number of order switches per query is high (without performance
benefit); from w >= 500 the switch count and performance are stable.
"""

from conftest import emit_report

from repro.bench import window_sweep_experiment

WINDOWS = (10, 50, 100, 200, 500, 800, 1000, 1200)


def test_fig10_history_window(benchmark, dmv_db, workload_small):
    result = benchmark.pedantic(
        lambda: window_sweep_experiment(dmv_db, workload_small, WINDOWS),
        rounds=1,
        iterations=1,
    )
    emit_report("fig10_window", result.report())
    switches = {w: s for w, (s, _) in result.series.items()}
    # Small windows must switch at least as much as large ones (fluctuation),
    # and the curve must flatten: the large-window plateau is stable.
    small = switches[WINDOWS[0]]
    plateau = [switches[w] for w in WINDOWS if w >= 500]
    assert small >= max(plateau) - 1e-9, (
        f"expected small-window fluctuation >= plateau: {switches}"
    )
    assert max(plateau) - min(plateau) <= max(0.35 * max(plateau), 0.5), (
        f"plateau not stable: {switches}"
    )
