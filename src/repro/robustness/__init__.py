"""Execution guardrails for the adaptive pipeline.

The paper's headline guarantee is that mid-flight reordering is *safe*:
inner-leg permutation only fires in depleted states (Sec 4.1) and
driving-leg switches produce no duplicates by construction (Sec 4.2).
This package makes that guarantee *demonstrable* and keeps the engine
robust when components misbehave:

* :mod:`~repro.robustness.faults` — deterministic, seedable fault
  injection into storage access (index lookups, cursor advances, hash
  probes) and the adaptive layer, plus retry-with-backoff for transient
  faults;
* :mod:`~repro.robustness.limits` — per-query execution budgets (rows,
  work units, wall-clock deadline) and cooperative cancellation, enforced
  at pipeline safe points;
* :mod:`~repro.robustness.guard` — a sandbox around the adaptation
  controller: an exception in the monitoring/decision layer degrades the
  query to its current static order instead of aborting it;
* :mod:`~repro.robustness.oracle` — debug-mode invariant checking: the
  depleted-state precondition before every permutation, and RID-tuple
  multiset tracking that catches duplicate or missing output rows across
  driving switches.
"""

from repro.robustness.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    call_with_retry,
)
from repro.robustness.guard import SandboxedController
from repro.robustness.limits import CancellationToken, ExecutionLimits
from repro.robustness.oracle import InvariantOracle

__all__ = [
    "CancellationToken",
    "ExecutionLimits",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InvariantOracle",
    "RetryPolicy",
    "SandboxedController",
    "call_with_retry",
]
