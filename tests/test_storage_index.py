"""Unit tests for repro.storage.index."""

import pytest

from repro.errors import StorageError
from repro.storage.index import SortedIndex
from repro.storage.schema import Column, TableSchema
from repro.storage.table import HeapTable
from repro.storage.types import ColumnType


def make_indexed_table(values):
    schema = TableSchema(
        "t", [Column("k", ColumnType.INT), Column("v", ColumnType.STRING)]
    )
    table = HeapTable(schema)
    table.insert_many([(value, f"v{i}") for i, value in enumerate(values)])
    return table, SortedIndex("ix", table, "k")


class TestBuild:
    def test_entries_sorted_by_key_then_rid(self):
        _, index = make_indexed_table([3, 1, 3, 2])
        entries = list(index.scan_range())
        assert entries == [(1, 1), (2, 3), (3, 0), (3, 2)]

    def test_none_keys_not_indexed(self):
        _, index = make_indexed_table([1, None, 2])
        assert len(index) == 2

    def test_refresh_after_insert(self):
        table, index = make_indexed_table([1, 2])
        table.insert([0, "new"])
        index.refresh()
        assert [rid for _, rid in index.scan_range()] == [2, 0, 1]

    def test_stale_index_raises(self):
        table, index = make_indexed_table([1])
        table.insert([2, "x"])
        with pytest.raises(StorageError, match="stale"):
            index.lookup_rids(1)

    def test_refresh_noop_when_fresh(self):
        _, index = make_indexed_table([1])
        index.refresh()  # must not raise
        assert len(index) == 1


class TestLookup:
    def test_lookup_hits(self):
        _, index = make_indexed_table([5, 7, 5])
        assert index.lookup_rids(5) == [0, 2]

    def test_lookup_miss(self):
        _, index = make_indexed_table([5])
        assert index.lookup_rids(9) == []

    def test_lookup_none_is_empty(self):
        _, index = make_indexed_table([5, None])
        assert index.lookup_rids(None) == []

    def test_lookup_charges_descend_and_entries(self):
        table, index = make_indexed_table([5, 5, 5])
        before = table.meter.snapshot()
        index.lookup_rids(5)
        delta = table.meter - before
        assert delta.index_descends == 1
        assert delta.index_entries == 3


class TestScanRange:
    def test_inclusive_bounds(self):
        _, index = make_indexed_table([1, 2, 3, 4])
        keys = [k for k, _ in index.scan_range(low=2, high=3)]
        assert keys == [2, 3]

    def test_exclusive_bounds(self):
        _, index = make_indexed_table([1, 2, 3, 4])
        keys = [
            k
            for k, _ in index.scan_range(
                low=1, high=4, low_inclusive=False, high_inclusive=False
            )
        ]
        assert keys == [2, 3]

    def test_unbounded(self):
        _, index = make_indexed_table([2, 1])
        assert [k for k, _ in index.scan_range()] == [1, 2]

    def test_start_after_skips(self):
        _, index = make_indexed_table([1, 2, 2, 3])
        entries = list(index.scan_range(start_after=(2, 1)))
        assert entries == [(2, 2), (3, 3)]

    def test_start_after_before_everything(self):
        _, index = make_indexed_table([1, 2])
        entries = list(index.scan_range(start_after=(0, 10**9)))
        assert [k for k, _ in entries] == [1, 2]

    def test_scan_charges_per_entry(self):
        table, index = make_indexed_table([1, 2, 3])
        before = table.meter.snapshot()
        list(index.scan_range(low=1, high=2))
        delta = table.meter - before
        assert delta.index_entries == 2


class TestCounts:
    def test_count_range(self):
        _, index = make_indexed_table([1, 2, 2, 3])
        assert index.count_range(2, 2) == 2
        assert index.count_range(low=2) == 3
        assert index.count_range() == 4

    def test_count_range_after(self):
        _, index = make_indexed_table([1, 2, 2, 3])
        assert index.count_range_after((2, 1)) == 2
        assert index.count_range_after(None) == 4
        assert index.count_range_after((3, 3)) == 0

    def test_count_range_after_respects_bounds(self):
        _, index = make_indexed_table([1, 2, 2, 3])
        assert index.count_range_after((1, 0), low=2, high=2) == 2
        assert index.count_range_after((2, 1), low=2, high=2) == 1

    def test_counts_do_not_charge(self):
        table, index = make_indexed_table([1, 2])
        before = table.meter.snapshot()
        index.count_range(1, 2)
        index.count_range_after((1, 0))
        assert (table.meter - before).index_entries == 0

    def test_distinct_key_count(self):
        _, index = make_indexed_table([1, 2, 2, 3, 3, 3])
        assert index.distinct_key_count() == 3


class TestStringKeys:
    def test_string_ordering(self):
        schema = TableSchema(
            "s", [Column("k", ColumnType.STRING), Column("v", ColumnType.INT)]
        )
        table = HeapTable(schema)
        table.insert_many([("Mercedes", 1), ("Chevrolet", 2), ("Ford", 3)])
        index = SortedIndex("ix", table, "k")
        keys = [k for k, _ in index.scan_range()]
        assert keys == ["Chevrolet", "Ford", "Mercedes"]
