"""Tests for the public Database facade."""

import pytest

from repro import (
    AdaptiveConfig,
    Database,
    QueryResult,
    ReorderMode,
    SchemaError,
    StatisticsLevel,
)


def make_db() -> Database:
    db = Database()
    db.create_table("T", [("id", "int"), ("name", "string"), ("score", "float")])
    db.create_index("T", "id")
    db.insert("T", [(1, "a", 1.5), (2, "b", 2.5)])
    db.analyze()
    return db


class TestSchemaApi:
    def test_tuple_column_specs(self):
        db = make_db()
        schema = db.catalog.table("T").schema
        assert schema.column_names() == ("id", "name", "score")

    def test_unknown_type_name(self):
        db = Database()
        with pytest.raises(SchemaError, match="unknown column type"):
            db.create_table("T", [("id", "uuid")])

    def test_type_aliases(self):
        db = Database()
        db.create_table(
            "T", [("a", "integer"), ("b", "text"), ("c", "double"), ("d", "str")]
        )
        assert len(db.catalog.table("T").schema) == 4


class TestQueryApi:
    def test_execute_sql_string(self):
        result = make_db().execute("SELECT T.name FROM T WHERE T.id = 1")
        assert result.rows == [("a",)]

    def test_execute_parsed_spec(self):
        db = make_db()
        spec = db.parse("SELECT T.name FROM T")
        assert len(db.execute(spec).rows) == 2

    def test_execute_prebuilt_plan(self):
        db = make_db()
        plan = db.plan("SELECT T.name FROM T")
        assert len(db.execute(plan).rows) == 2

    def test_explain_returns_text(self):
        text = make_db().explain("SELECT T.name FROM T")
        assert "PipelinePlan" in text

    def test_default_config_is_adaptive_both(self):
        result = make_db().execute("SELECT T.name FROM T")
        assert isinstance(result, QueryResult)

    def test_analyze_levels(self):
        db = make_db()
        db.analyze(level=StatisticsLevel.DETAILED)
        stats = db.catalog.stats("T")
        assert stats.column("name").has_frequent_values


class TestExecutionStats:
    def test_stats_fields(self):
        result = make_db().execute(
            "SELECT T.name FROM T", AdaptiveConfig(mode=ReorderMode.NONE)
        )
        stats = result.stats
        assert stats.total_work > 0
        assert stats.execution_work > 0
        assert stats.adaptation_work == 0.0
        assert stats.wall_seconds > 0
        assert not stats.order_changed
        assert stats.order_history[0] == result.final_order

    def test_work_isolated_per_query(self):
        db = make_db()
        first = db.execute("SELECT T.name FROM T")
        second = db.execute("SELECT T.name FROM T")
        # Each result carries only its own work, not cumulative totals.
        assert first.stats.total_work == pytest.approx(second.stats.total_work)

    def test_len_of_result(self):
        assert len(make_db().execute("SELECT T.name FROM T")) == 2
