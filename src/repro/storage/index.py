"""Ordered secondary indexes.

A :class:`SortedIndex` maintains (key, rid) entries sorted by key, then RID —
the same order a B-tree on a single column exposes. The executor uses it for

* equality probes during indexed nested-loop joins,
* range scans that drive a pipeline (the "index scan" access path), and
* the driving-leg positional order (key, rid) the paper exploits for
  duplicate prevention when switching driving tables (Sec 4.2).

``None`` keys are not indexed, matching SQL semantics where ``NULL`` never
satisfies an equality or range predicate.

Work accounting: each probe charges one ``INDEX_DESCEND`` plus one
``INDEX_ENTRY`` per entry touched, so plans that probe fewer entries are
deterministically cheaper.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator

from repro.errors import StorageError
from repro.storage.counters import WorkMeter
from repro.storage.table import HeapTable

class _AfterAny:
    """Sentinel that orders strictly after every RID, whatever its type.

    ``float("inf")`` only orders against numbers; if RIDs ever become
    non-numeric (composite positions, string row ids in tests), a float
    sentinel inside a ``(key, rid)`` comparison raises ``TypeError`` deep
    inside ``bisect``. This sentinel compares greater than *anything*
    except itself, so bound tuples stay totally ordered for any RID type.
    """

    __slots__ = ()

    def __lt__(self, other: Any) -> bool:
        return False

    def __le__(self, other: Any) -> bool:
        return other is self

    def __gt__(self, other: Any) -> bool:
        return other is not self

    def __ge__(self, other: Any) -> bool:
        return True

    def __eq__(self, other: Any) -> bool:
        return other is self

    def __hash__(self) -> int:
        return object.__hash__(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<after-any-rid>"


class _BeforeAny:
    """Mirror of :class:`_AfterAny`: orders strictly before every RID."""

    __slots__ = ()

    def __lt__(self, other: Any) -> bool:
        return other is not self

    def __le__(self, other: Any) -> bool:
        return True

    def __gt__(self, other: Any) -> bool:
        return False

    def __ge__(self, other: Any) -> bool:
        return other is self

    def __eq__(self, other: Any) -> bool:
        return other is self

    def __hash__(self) -> int:
        return object.__hash__(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<before-any-rid>"


# Bound sentinels: (key, _RID_LOW) sorts before and (key, _RID_HIGH) after
# every real (key, rid) entry, for any RID type (see _AfterAny).
_RID_LOW = _BeforeAny()
_RID_HIGH = _AfterAny()

Entry = tuple[Any, Any]  # (key, rid)


class SortedIndex:
    """A single-column ordered index over a :class:`HeapTable`."""

    __slots__ = ("name", "table", "column", "_column_pos", "_entries", "_built_upto")

    def __init__(self, name: str, table: HeapTable, column: str) -> None:
        self.name = name
        self.table = table
        self.column = column
        self._column_pos = table.schema.position_of(column)
        self._entries: list[Entry] = []
        self._built_upto = 0  # number of heap rows reflected in the index
        self.rebuild()

    @property
    def meter(self) -> WorkMeter:
        return self.table.meter

    def __len__(self) -> int:
        return len(self._entries)

    def rebuild(self) -> None:
        """(Re)build the index from the current heap contents."""
        entries = []
        for rid, row in enumerate(self.table.raw_rows()):
            key = row[self._column_pos]
            if key is not None:
                entries.append((key, rid))
        entries.sort()
        self._entries = entries
        self._built_upto = len(self.table)

    def refresh(self) -> None:
        """Fold rows appended since the last build into the index."""
        heap_size = len(self.table)
        if self._built_upto == heap_size:
            return
        rows = self.table.raw_rows()
        for rid in range(self._built_upto, heap_size):
            key = rows[rid][self._column_pos]
            if key is not None:
                bisect.insort(self._entries, (key, rid))
        self._built_upto = heap_size

    def _check_fresh(self) -> None:
        if self._built_upto != len(self.table):
            raise StorageError(
                f"index {self.name!r} is stale: call refresh() after inserts"
            )

    def _range_bounds(
        self,
        low: Any,
        high: Any,
        low_inclusive: bool,
        high_inclusive: bool,
    ) -> tuple[int, int]:
        """Entry-list [lo, hi) bounds of a key range (``None`` = unbounded)."""
        entries = self._entries
        if low is None:
            lo = 0
        elif low_inclusive:
            lo = bisect.bisect_left(entries, (low, _RID_LOW))
        else:
            lo = bisect.bisect_right(entries, (low, _RID_HIGH))
        if high is None:
            hi = len(entries)
        elif high_inclusive:
            hi = bisect.bisect_right(entries, (high, _RID_HIGH))
        else:
            hi = bisect.bisect_left(entries, (high, _RID_LOW))
        return lo, hi

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def lookup_rids(self, key: Any) -> list[int]:
        """Return RIDs whose indexed column equals *key*, charging work."""
        faults = self.table.faults
        if faults is not None:
            # Consulted before any charge or state change, so a transient
            # fault leaves the lookup safely retryable.
            faults.fire("index-lookup")
        self._check_fresh()
        self.meter.charge_index_descend()
        if key is None:
            return []
        lo, hi = self._range_bounds(key, key, True, True)
        self.meter.charge_index_entries(max(hi - lo, 1))
        return [rid for _, rid in self._entries[lo:hi]]

    def lookup_rids_batch(self, keys: Iterable[Any]) -> dict[Any, list[int]]:
        """Resolve many equality probes in one merged pass (uncharged).

        Distinct non-``None`` keys are sorted and located left-to-right over
        ``_entries``, each ``bisect`` reusing the previous key's upper bound
        as its lower search bound — one logical descend per distinct key,
        never rewinding. The caller (the batched executor) replays the
        per-probe ``INDEX_DESCEND`` / ``INDEX_ENTRY`` / ``ROW_FETCH``
        charges at the same logical points the scalar path would, so this
        method charges nothing itself.
        """
        self._check_fresh()
        entries = self._entries
        out: dict[Any, list[int]] = {}
        lo = 0
        for key in sorted(set(keys)):
            lo = bisect.bisect_left(entries, (key, _RID_LOW), lo)
            hi = bisect.bisect_right(entries, (key, _RID_HIGH), lo)
            out[key] = [rid for _, rid in entries[lo:hi]]
            lo = hi
        return out

    def lookup_rids_quiet(self, key: Any) -> list[int]:
        """RIDs whose indexed column equals *key*, without charging work.

        The batched executor's turbo path charges each chunk's aggregate
        work itself, so its point lookups go through this uncharged twin of
        :meth:`lookup_rids`.
        """
        self._check_fresh()
        if key is None:
            return []
        lo, hi = self._range_bounds(key, key, True, True)
        return [rid for _, rid in self._entries[lo:hi]]

    def lookup_rows_quiet(self, key: Any) -> list:
        """Heap rows whose indexed column equals *key* (uncharged).

        Fuses the rid lookup with the heap read so turbo probes that never
        need RIDs (no positional predicate — guaranteed in mode ``NONE``)
        skip one list round-trip per probe. Charge accounting stays with
        the caller, exactly as for :meth:`lookup_rids_quiet`.
        """
        self._check_fresh()
        if key is None:
            return []
        lo, hi = self._range_bounds(key, key, True, True)
        raw = self.table.raw_rows()
        return [raw[rid] for _, rid in self._entries[lo:hi]]

    def lookup_rows_batch(self, keys: Iterable[Any]) -> dict[Any, list]:
        """Row-returning twin of :meth:`lookup_rids_batch` (uncharged).

        Same merged left-to-right descent over the entry list, but the
        values are heap rows instead of RIDs — for turbo batch probes,
        which filter on row contents only.
        """
        self._check_fresh()
        entries = self._entries
        raw = self.table.raw_rows()
        out: dict[Any, list] = {}
        lo = 0
        for key in sorted(set(keys)):
            lo = bisect.bisect_left(entries, (key, _RID_LOW), lo)
            hi = bisect.bisect_right(entries, (key, _RID_HIGH), lo)
            out[key] = [raw[rid] for _, rid in entries[lo:hi]]
            lo = hi
        return out

    def filtered_groups(
        self, tests: list
    ) -> dict[Any, tuple[list, int, int]]:
        """Per-key candidate groups pre-filtered through *tests* (uncharged).

        Returns ``key -> (passing rows in (key, rid) order, predicate evals
        a scalar probe of that key would charge for the local tests, total
        entry count)``. The eval count reproduces the scalar short-circuit
        exactly: each row charges one eval per test until the first failure.
        One pass over the whole index; the turbo executor builds this once
        per (probe epoch, heap version) and amortizes it over every probe of
        the leg, instead of re-running the same pure per-row predicates for
        every outer row that probes the same key.
        """
        self._check_fresh()
        raw = self.table.raw_rows()
        out: dict[Any, list] = {}
        get = out.get
        for key, rid in self._entries:
            group = get(key)
            if group is None:
                group = out[key] = [[], 0, 0]
            group[2] += 1
            row = raw[rid]
            for test in tests:
                group[1] += 1
                if not test(row):
                    break
            else:
                group[0].append(row)
        return {
            key: (rows, evals, total) for key, (rows, evals, total) in out.items()
        }

    def scan_range(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        start_after: Entry | None = None,
    ) -> Iterator[Entry]:
        """Yield (key, rid) entries with ``low <= key <= high`` in order.

        *start_after*, when given, skips every entry at or before that
        (key, rid) position — this is how a resumed driving-leg scan and the
        positional predicates avoid re-reading processed rows.

        Bounds of ``None`` mean unbounded on that side.
        """
        self._check_fresh()
        self.meter.charge_index_descend()
        lo, hi = self._range_bounds(low, high, low_inclusive, high_inclusive)
        if start_after is not None:
            lo = max(lo, bisect.bisect_right(self._entries, start_after))
        for position in range(lo, hi):
            self.meter.charge_index_entries(1)
            yield self._entries[position]

    def peek_range(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        start_after: Entry | None = None,
    ) -> Iterator[Entry]:
        """Uncharged twin of :meth:`scan_range` (same bounds, same order).

        The batched executor's driving-leg shadow reads ahead through this
        to learn upcoming scan positions without disturbing work accounting;
        the real (charging) cursor re-reads the same entries when the rows
        are actually consumed.
        """
        lo, hi = self._range_bounds(low, high, low_inclusive, high_inclusive)
        if start_after is not None:
            lo = max(lo, bisect.bisect_right(self._entries, start_after))
        for position in range(lo, hi):
            yield self._entries[position]

    def count_range(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> int:
        """Entry count in a key range, without charging work (statistics)."""
        lo, hi = self._range_bounds(low, high, low_inclusive, high_inclusive)
        return max(hi - lo, 0)

    def count_range_after(
        self,
        after: Entry | None,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> int:
        """Entries in a key range strictly after position *after* (uncharged).

        This is the index-metadata read the adaptation controller uses to
        estimate the *remaining* work of a partially consumed driving scan —
        the equivalent of a B-tree's key-range cardinality estimate.
        """
        lo, hi = self._range_bounds(low, high, low_inclusive, high_inclusive)
        if after is not None:
            lo = max(lo, bisect.bisect_right(self._entries, after))
        return max(hi - lo, 0)

    def distinct_key_count(self) -> int:
        """Number of distinct keys (statistics; uncharged)."""
        count = 0
        previous = object()
        for key, _ in self._entries:
            if key != previous:
                count += 1
                previous = key
        return count
