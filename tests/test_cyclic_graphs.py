"""Cyclic join graphs: predicate availability changes with the order.

Sec 4.3.4 / Fig 6: in a cyclic query, which join predicates an inner leg
can apply depends on its position, so join cardinalities must be adjusted
when the order changes. These tests build the paper's three-table cycle
(JP1: T1-T2, JP2: T1-T3, JP3: T2-T3 on *distinct* column pairs, so the
equivalence classes do not collapse the cycle) and verify correctness and
availability behaviour.
"""

import random

import pytest

from repro import AdaptiveConfig, Database, ReorderMode
from repro.query.sql.parser import parse_sql

from tests.conftest import reference_join


def build_cyclic_db(rows=120, seed=9):
    rng = random.Random(seed)
    db = Database()
    db.create_table("T1", [("k", "int"), ("j", "int"), ("pay", "string")])
    db.create_table("T2", [("k", "int"), ("m", "int")])
    db.create_table("T3", [("j", "int"), ("m", "int")])
    db.insert(
        "T1",
        [(rng.randrange(20), rng.randrange(20), f"p{i}") for i in range(rows)],
    )
    db.insert("T2", [(rng.randrange(20), rng.randrange(20)) for _ in range(rows)])
    db.insert("T3", [(rng.randrange(20), rng.randrange(20)) for _ in range(rows)])
    for table, column in [
        ("T1", "k"), ("T1", "j"), ("T2", "k"), ("T2", "m"),
        ("T3", "j"), ("T3", "m"),
    ]:
        db.create_index(table, column)
    db.analyze()
    return db


SQL = (
    "SELECT a.pay FROM T1 a, T2 b, T3 c "
    "WHERE a.k = b.k AND a.j = c.j AND b.m = c.m"
)


class TestCyclicGraphStructure:
    def test_graph_is_cyclic(self):
        spec = parse_sql(SQL)
        graph = spec.join_graph()
        assert graph.is_cyclic()
        # Three distinct equivalence classes (no transitive collapse).
        assert len(graph.classes) == 3

    def test_availability_changes_with_position(self):
        graph = parse_sql(SQL).join_graph()
        # c after {a}: only the a.j=c.j class is available.
        assert len(graph.available_predicates("c", ["a"])) == 1
        # c after {a, b}: both its classes are available (Fig 6's point).
        assert len(graph.available_predicates("c", ["a", "b"])) == 2


class TestCyclicCorrectness:
    @pytest.fixture(scope="class")
    def db(self):
        return build_cyclic_db()

    def expected(self, db):
        plan = db.plan(SQL)
        from repro.query.query import QuerySpec

        expanded = QuerySpec(
            tables=plan.query.tables,
            local_predicates=plan.query.local_predicates,
            join_predicates=plan.query.join_predicates,
            projection=plan.projection,
        )
        return sorted(reference_join(db, expanded))

    def test_static_matches_reference(self, db):
        result = db.execute(SQL, AdaptiveConfig(mode=ReorderMode.NONE))
        assert sorted(result.rows) == self.expected(db)

    def test_all_orders_agree(self, db):
        plan = db.plan(SQL)
        expected = self.expected(db)
        for order in plan.query.join_graph().connected_orders():
            result = db.execute(
                plan.with_order(order), AdaptiveConfig(mode=ReorderMode.NONE)
            )
            assert sorted(result.rows) == expected, order

    def test_adaptive_matches_reference(self, db):
        config = AdaptiveConfig(
            mode=ReorderMode.BOTH,
            check_frequency=1,
            warmup_rows=1,
            switch_benefit_threshold=0.0,
            history_window=10,
        )
        result = db.execute(SQL, config)
        assert sorted(result.rows) == self.expected(db)

    def test_second_class_predicate_checked_residually(self, db):
        """The cycle-closing predicate filters when both sides are bound.

        Joining all three legs with only two of the three predicates would
        produce strictly more rows; the executor must apply the third
        (residual) predicate whichever order runs.
        """
        plan = db.plan(SQL)
        full = db.execute(plan, AdaptiveConfig(mode=ReorderMode.NONE))
        two_predicate_sql = (
            "SELECT a.pay FROM T1 a, T2 b, T3 c "
            "WHERE a.k = b.k AND a.j = c.j"
        )
        loose = db.execute(
            two_predicate_sql, AdaptiveConfig(mode=ReorderMode.NONE)
        )
        assert len(full.rows) < len(loose.rows)
