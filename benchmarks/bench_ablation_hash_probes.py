"""Ablation — pipelined hash probes (the Sec 6 hash-join extension).

The paper argues indexed NLJN is the pipelined method of choice because of
its tiny memory footprint, and notes the reordering technique "can be
extended to pipelined hash joins as well". This bench quantifies the
trade-off on a workload whose inner leg has NO index on its join column:

* ``scan-probe`` — the NLJN fallback re-scans the inner table per outer row;
* ``hash-fallback`` — one O(|T|) hash build replaces every scan;
* ``hash-always`` — all inner legs hashed, even where indexes exist.

Shape: hash-fallback crushes scan-probe (orders of magnitude); hash-always
sits near the indexed NLJN baseline on indexed workloads (builds cost what
probes save), confirming the paper's preference for indexed NLJN when
indexes exist.
"""

import random

from conftest import emit_report

from repro import AdaptiveConfig, Database, HashProbePolicy, ReorderMode
from repro.bench import format_table
from repro.executor.pipeline import PipelineExecutor


def build_unindexed_db(owners: int = 3000, seed: int = 23) -> Database:
    rng = random.Random(seed)
    db = Database()
    db.create_table("Owner", [("id", "int"), ("name", "string"), ("country", "string")])
    db.create_table("Demo", [("ownerid", "int"), ("salary", "int")])
    db.insert(
        "Owner", [(i, f"n{i}", rng.choice(["DE", "US", "FR"])) for i in range(owners)]
    )
    db.insert("Demo", [(i, 20_000 + rng.randrange(80_000)) for i in range(owners)])
    db.create_index("Owner", "id")
    db.create_index("Owner", "country")
    # No index on Demo.ownerid: the probe method is the whole story.
    db.analyze()
    return db


SQL = (
    "SELECT o.name, d.salary FROM Owner o, Demo d "
    "WHERE o.id = d.ownerid AND o.country = 'DE' AND d.salary < 70000"
)


def run_variants():
    db = build_unindexed_db()
    plan = db.plan(SQL).with_order(("o", "d"))  # force the unindexed probe
    results = {}
    reference = None
    for label, policy in [
        ("scan-probe", HashProbePolicy.OFF),
        ("hash-fallback", HashProbePolicy.FALLBACK),
        ("hash-always", HashProbePolicy.ALWAYS),
    ]:
        config = AdaptiveConfig(mode=ReorderMode.NONE, hash_probe_policy=policy)
        executor = PipelineExecutor(plan, db.catalog, config)
        rows = sorted(executor.run_to_completion())
        if reference is None:
            reference = rows
        assert rows == reference, f"{label} changed the result"
        results[label] = executor.work_units
    return results


def test_hash_probe_ablation(benchmark):
    results = benchmark.pedantic(run_variants, rounds=1, iterations=1)
    rows = [
        (label, f"{work:,.0f}", f"{results['scan-probe'] / work:,.1f}x")
        for label, work in results.items()
    ]
    emit_report(
        "ablation_hash_probes",
        format_table(
            ["probe method", "total work", "speedup vs scan-probe"],
            rows,
            title="Ablation — pipelined hash probes on an unindexed join column",
        ),
    )
    assert results["hash-fallback"] * 20 < results["scan-probe"]
    assert results["hash-always"] <= results["hash-fallback"] * 1.05
