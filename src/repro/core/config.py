"""Configuration of the adaptive reordering layer.

The two tunables the paper names are the reordering **check frequency** ``c``
(Fig 2 line 1 / Fig 3 line 1; default 10 in Sec 5) and the **history
window** ``w`` over which run-time monitors aggregate (Sec 4.3.5; default
1000). The remaining knobs select which of the paper's mechanisms and
variants are active, including the future-work extensions we implement.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ReorderMode(enum.Enum):
    """Which reordering mechanisms are enabled (the Sec 5 experiment axes)."""

    NONE = "none"                  # static plan, no monitoring
    MONITOR_ONLY = "monitor-only"  # monitors run, no reordering (overhead exp.)
    INNER_ONLY = "inner-only"      # Sec 5.2
    DRIVING_ONLY = "driving-only"  # Sec 5.3
    BOTH = "both"                  # Sec 5.1

    @property
    def reorders_inner(self) -> bool:
        return self in (ReorderMode.INNER_ONLY, ReorderMode.BOTH)

    @property
    def reorders_driving(self) -> bool:
        return self in (ReorderMode.DRIVING_ONLY, ReorderMode.BOTH)

    @property
    def monitors(self) -> bool:
        return self is not ReorderMode.NONE


class InnerReorderPolicy(enum.Enum):
    """How a depleted suffix is re-ordered (ablation axis)."""

    RANK_GREEDY = "rank-greedy"    # the paper's ascending-rank rule (Eq 4)
    EXHAUSTIVE = "exhaustive"      # cheapest connected suffix under Eq (1)


class HashProbePolicy(enum.Enum):
    """Whether inner legs may be probed via in-memory hash tables.

    The Sec 6 extension ("this technique can be extended to pipelined hash
    joins as well"). ``FALLBACK`` hashes only legs that have no usable
    index on any available join column (replacing the full-scan probe);
    ``ALWAYS`` hashes every inner leg.
    """

    OFF = "off"
    FALLBACK = "fallback"
    ALWAYS = "always"


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs of the adaptive join reordering run time."""

    mode: ReorderMode = ReorderMode.BOTH
    # "c": check reordering every c incoming rows per leg (Sec 5: default 10).
    check_frequency: int = 10
    # "w": history window, in incoming rows, for monitored estimates
    # (Sec 5: default 1000).
    history_window: int = 1000
    inner_policy: InnerReorderPolicy = InnerReorderPolicy.RANK_GREEDY
    # Minimum relative cost improvement before the driving leg is switched;
    # guards against thrashing on near-tie estimates (Sec 5.4 discusses
    # fluctuation for small windows).
    switch_benefit_threshold: float = 0.15
    # Postpone a driving switch until the index-scan cursor crosses a key
    # boundary, so the positional predicate is a plain ``key > v``
    # (the "postpone the change" variant of Sec 4.2).
    switch_at_key_boundary: bool = False
    # Future-work extension (Sec 6): re-run driving access-path selection
    # with monitored local selectivities when a leg becomes the driving leg.
    dynamic_access_path: bool = False
    # Sec 6 extension: probe inner legs via in-memory hash tables.
    hash_probe_policy: HashProbePolicy = HashProbePolicy.OFF
    # Monitored estimates are trusted only after a leg has seen this many
    # incoming rows; before that, optimizer priors are blended in.
    warmup_rows: int = 10
    # Run the vectorized executor: driving rows are read ahead in batches
    # and inner legs are resolved through probe_batch()'s merged index
    # descents. Semantics-preserving — results, work accounting, and
    # adaptation decisions are identical to the scalar path.
    batched: bool = False
    # Target batch width for the batched path (the lookahead shrinks near
    # reorder-check boundaries so adaptation points are never overrun).
    batch_size: int = 256
    # LRU capacity (entries per leg) of the join-key probe cache; 0 keeps
    # the cache off. Cache hits skip the repeated descend/fetch/eval work
    # charges — the one documented divergence from scalar accounting.
    # The default stays 0 *on purpose*: the cache measurably speeds up
    # skewed workloads (BENCH_speedup.json's batched-chunk-cached mode),
    # but its skipped charges change ``ExecutionStats.work`` relative to
    # the paper's cost model, so enabling it silently would shift every
    # reproduced figure. Opt in per run (``--probe-cache N``); hit rates
    # are reported by EXPLAIN ANALYZE.
    probe_cache_size: int = 0
    # How monitor windows absorb batched execution's chunks:
    #
    # * ``"exact"`` — per-sample ring updates; windows, estimates, reorder
    #   decisions, and events are bit-identical to a scalar run (the
    #   batched path proves chunk boundaries never overrun a check point).
    # * ``"chunk"`` — the fast adaptive mode: each chunk folds into the
    #   window as ONE weighted aggregate (O(1) ring update per chunk) and
    #   reorder checks fire at chunk boundaries instead of every ``c``
    #   rows. Rows and final work totals stay exact; estimates carry
    #   bounded within-chunk skew and adaptation points are coarser, so
    #   events may differ from a scalar run (see DESIGN.md Sec 4d).
    #
    # Only consulted by the batched executor; scalar execution is always
    # per-sample.
    monitor_granularity: str = "exact"
    # Intra-query parallelism: number of worker processes range-partitioning
    # the driving leg (1 = serial). Workers share the read-only database via
    # fork/COW; per-partition monitor estimates are merged at the
    # coordinator between chunks.
    workers: int = 1

    def __post_init__(self) -> None:
        if self.check_frequency < 1:
            raise ValueError("check_frequency must be >= 1")
        if self.history_window < 1:
            raise ValueError("history_window must be >= 1")
        if not 0.0 <= self.switch_benefit_threshold < 1.0:
            raise ValueError("switch_benefit_threshold must be in [0, 1)")
        if self.warmup_rows < 0:
            raise ValueError("warmup_rows must be >= 0")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.probe_cache_size < 0:
            raise ValueError("probe_cache_size must be >= 0")
        if self.monitor_granularity not in ("exact", "chunk"):
            raise ValueError(
                "monitor_granularity must be 'exact' or 'chunk'"
            )
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
