"""Offline decision audit: replay a recorded query's adaptation timeline.

``repro replay <query-id>`` loads the telemetry store, finds the query's
:class:`~repro.obs.recorder.FlightRecord`, and renders an
EXPLAIN-ANALYZE-style report that answers *why did the driving leg
switch at row N*: every adaptation event is matched to the controller
check (:class:`~repro.obs.recorder.DecisionRecord`) that produced it,
annotated with the per-leg Eq (3) rank terms, the monitors' window
estimates, the candidate driving-order costs (Fig 3), and the estimated
benefit — the full inputs of the rank rule at decision time.

``repro replay --diff A B`` compares two runs of the same template:
plans, event timelines, per-leg estimate errors, and latency/work.

Everything here is pure post-processing of recorded JSONL — no database,
no execution, no meter.
"""

from __future__ import annotations

from typing import Any

from repro.core.events import AdaptationEvent
from repro.obs.recorder import (
    DecisionRecord,
    FlightRecord,
    TelemetryStore,
    event_from_dict,
)


# ---------------------------------------------------------------------------
# Loading
# ---------------------------------------------------------------------------
def load_records(directory: str) -> list[FlightRecord]:
    """Every flight record in *directory*'s finalized segments, oldest first."""
    records: list[FlightRecord] = []
    for obj in TelemetryStore.iter_records(directory):
        if obj.get("type") != "flight":
            continue
        try:
            records.append(FlightRecord.from_dict(obj))
        except (KeyError, TypeError, ValueError):
            continue
    return records


def find_record(
    records: list[FlightRecord], query_id: str
) -> FlightRecord | None:
    for record in reversed(records):
        if record.query_id == query_id:
            return record
    return None


def latest_record(records: list[FlightRecord]) -> FlightRecord | None:
    return records[-1] if records else None


def reconstruct_events(record: FlightRecord) -> list[AdaptationEvent]:
    """The exact AdaptationEvent sequence of the live run, rebuilt offline."""
    return [event_from_dict(event) for event in record.events]


# ---------------------------------------------------------------------------
# Rendering helpers
# ---------------------------------------------------------------------------
def _fmt(value: Any, digits: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


def _order(order: tuple[str, ...] | list[str]) -> str:
    return " -> ".join(order) if order else "(none)"


def _matching_decision(
    record: FlightRecord, event: dict[str, Any]
) -> DecisionRecord | None:
    """The applied check that produced *event* (matched on kind + orders).

    Decisions from forked parallel workers are not captured (they die
    with the worker process), so driving/inner events with ``worker >=
    0`` may have no matching decision; the report says so explicitly.
    """
    kind = event.get("kind")
    check = "driving" if kind == "driving-switch" else "inner"
    for decision in record.decisions:
        if not decision.applied or decision.check != check:
            continue
        if (
            list(decision.order_before) == list(event.get("old_order", []))
            and decision.order_after is not None
            and list(decision.order_after) == list(event.get("new_order", []))
            and decision.driving_rows == event.get("driving_rows")
        ):
            return decision
    return None


def _render_decision_why(decision: DecisionRecord, indent: str) -> list[str]:
    lines: list[str] = []
    if decision.rank_terms:
        lines.append(f"{indent}rank terms (Eq 3, at decision time):")
        for term in decision.rank_terms:
            lines.append(
                f"{indent}  [{term.position}] {term.alias:<12s} "
                f"jc={_fmt(term.jc)}  pc={_fmt(term.pc)}  "
                f"rank={_fmt(term.rank)}"
            )
    if decision.candidate_costs:
        lines.append(
            f"{indent}candidate driving orders (Fig 3, est. remaining cost):"
        )
        for alias, cost in sorted(
            decision.candidate_costs.items(), key=lambda item: (item[1], item[0])
        ):
            marker = (
                " <- chosen"
                if decision.order_after and alias == decision.order_after[0]
                else ""
            )
            lines.append(f"{indent}  lead {alias:<12s} {_fmt(cost)}{marker}")
    if decision.window:
        lines.append(f"{indent}window estimates (Eq 5-11):")
        for alias, data in decision.window.items():
            if data.get("role") == "driving":
                lines.append(
                    f"{indent}  {alias:<12s} driving: "
                    f"scanned={_fmt(data.get('entries_scanned'))} "
                    f"survived={_fmt(data.get('rows_survived'))} "
                    f"s_lpr={_fmt(data.get('s_lpr'))}"
                )
            else:
                lines.append(
                    f"{indent}  {alias:<12s} jc={_fmt(data.get('jc'))} "
                    f"pc={_fmt(data.get('pc'))} "
                    f"s_jp={_fmt(data.get('s_jp'))} "
                    f"(prior {_fmt(data.get('s_jp_prior'))}) "
                    f"fill={_fmt(data.get('window_fill'))}"
                )
    lines.append(
        f"{indent}est. cost {_fmt(decision.estimated_current_cost)} -> "
        f"{_fmt(decision.estimated_new_cost)} "
        f"(benefit {_fmt(decision.estimated_benefit)}); "
        f"granularity={decision.monitor_granularity} "
        f"worker={decision.worker}"
    )
    return lines


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------
def render_replay(record: FlightRecord) -> str:
    """The offline adaptation-timeline report for one recorded query."""
    lines = [
        f"FLIGHT RECORD {record.query_id}",
        f"  sql:      {record.sql}",
        f"  template: {record.template}",
        f"  mode={record.mode} batched={record.batched} "
        f"granularity={record.monitor_granularity} workers={record.workers} "
        f"engine={record.engine}",
        f"  outcome={record.outcome} rows={record.rows} "
        f"work={_fmt(record.work_units)} wall={_fmt(record.wall_ms)}ms"
        + (f" (SLOW)" if record.slow else ""),
    ]
    if record.worker_engines:
        from repro.obs.explain import _compress_engines

        lines.append(
            f"  partition engines: {_compress_engines(record.worker_engines)}"
        )
    if record.vector_gate:
        lines.append(f"  vector cascade gated: {record.vector_gate}")
    if record.session is not None:
        lines.append(
            f"  served: session={record.session} shed={record.shed} "
            f"queued={_fmt(record.queued_ms)}ms"
        )
    if record.error:
        lines.append(f"  error: {record.error}")
    lines.append("")
    lines.append(f"  plan order:  {_order(record.plan_order)}"
                 + (f"  (est. cost {_fmt(record.plan_cost)})"
                    if record.plan_cost is not None else ""))
    lines.append(f"  final order: {_order(record.final_order)}")
    lines.append("")

    # Per-leg estimated vs actual.
    if record.legs:
        lines.append("  legs (optimizer estimate vs. final monitor window):")
        lines.append(
            "    leg           est_card     s_jp      s_jp_prior  q_error   "
            "role"
        )
        for alias in sorted(
            record.legs, key=lambda a: record.legs[a].get("position", 99)
        ):
            leg = record.legs[alias]
            lines.append(
                f"    {alias:<12s} {_fmt(leg.get('est_cardinality')):>9s} "
                f"{_fmt(leg.get('s_jp')):>9s} {_fmt(leg.get('s_jp_prior')):>11s} "
                f"{_fmt(leg.get('q_error')):>8s}   {leg.get('role', '-')}"
            )
        lines.append("")

    # The adaptation timeline, each event annotated with its decision.
    if not record.events:
        lines.append("  no adaptation events (the static order survived)")
    else:
        lines.append(f"  adaptation timeline ({len(record.events)} event(s)):")
        for index, event in enumerate(record.events, 1):
            kind = event.get("kind", "?")
            rows = event.get("driving_rows", "?")
            worker = event.get("worker", -1)
            where = f" worker={worker}" if worker is not None and worker >= 0 else ""
            lines.append(
                f"  [{index}] {kind} at driving row {rows}"
                f" (position {event.get('position', 0)}){where}:"
            )
            lines.append(
                f"      {_order(event.get('old_order', []))}"
                f"  =>  {_order(event.get('new_order', []))}"
            )
            decision = _matching_decision(record, event)
            if decision is not None:
                lines.append("      why:")
                lines.extend(_render_decision_why(decision, "        "))
            elif kind == "degraded":
                lines.append(
                    f"      why: adaptive layer sandboxed off "
                    f"({event.get('reason', 'unknown failure')})"
                )
            elif worker is not None and worker >= 0:
                lines.append(
                    "      why: decided inside forked worker "
                    f"{worker} (per-decision audit not captured across fork)"
                )
            else:
                lines.append("      why: no matching decision captured")

    # Checks that kept the order are part of the story too.
    kept = [d for d in record.decisions if not d.applied]
    if kept:
        lines.append("")
        lines.append(
            f"  {len(kept)} check(s) kept the order "
            f"(inner {sum(1 for d in kept if d.check == 'inner')}, "
            f"driving {sum(1 for d in kept if d.check == 'driving')})"
        )
    return "\n".join(lines)


def render_listing(records: list[FlightRecord]) -> str:
    """One line per record, newest last (``repro replay --list``)."""
    if not records:
        return "(telemetry store is empty)"
    lines = [
        "query_id                 outcome          rows    wall_ms  "
        "events  template"
    ]
    for record in records:
        template = record.template
        if len(template) > 48:
            template = template[:45] + "..."
        lines.append(
            f"{record.query_id:<24s} {record.outcome:<15s} "
            f"{record.rows:>6d} {record.wall_ms:>9.1f} "
            f"{record.adaptations:>7d}  {template}"
        )
    return "\n".join(lines)


def render_diff(a: FlightRecord, b: FlightRecord) -> str:
    """Compare two recorded runs (typically of the same template)."""
    lines = [f"DIFF {a.query_id} vs {b.query_id}"]
    if a.template == b.template:
        lines.append(f"  template: {a.template}")
    else:
        lines.append("  WARNING: different templates")
        lines.append(f"    A: {a.template}")
        lines.append(f"    B: {b.template}")
    lines.append("")

    def row(label: str, va: Any, vb: Any) -> str:
        marker = "  " if va == vb else " *"
        return f" {marker}{label:<22s} A={_fmt(va):<20s} B={_fmt(vb)}"

    lines.append(row("outcome", a.outcome, b.outcome))
    lines.append(row("mode", a.mode, b.mode))
    lines.append(row("rows", a.rows, b.rows))
    lines.append(row("work_units", a.work_units, b.work_units))
    lines.append(row("wall_ms", round(a.wall_ms, 1), round(b.wall_ms, 1)))
    lines.append(row("plan_order", _order(a.plan_order), _order(b.plan_order)))
    lines.append(
        row("final_order", _order(a.final_order), _order(b.final_order))
    )
    lines.append(row("adaptations", a.adaptations, b.adaptations))
    lines.append(
        row(
            "checks",
            len(a.decisions),
            len(b.decisions),
        )
    )
    lines.append("")

    # Event timelines side by side.
    count = max(len(a.events), len(b.events))
    if count:
        lines.append("  event timeline:")
        for index in range(count):
            ea = a.events[index] if index < len(a.events) else None
            eb = b.events[index] if index < len(b.events) else None

            def describe(event: dict[str, Any] | None) -> str:
                if event is None:
                    return "(none)"
                return (
                    f"{event.get('kind')}@{event.get('driving_rows')} "
                    f"-> {_order(event.get('new_order', []))}"
                )

            same = (
                ea is not None
                and eb is not None
                and ea.get("kind") == eb.get("kind")
                and ea.get("new_order") == eb.get("new_order")
            )
            marker = "  " if same else " *"
            lines.append(f" {marker}[{index + 1}] A: {describe(ea)}")
            lines.append(f"   {' ' * len(str(index + 1))}  B: {describe(eb)}")

    # Per-leg q-error comparison.
    aliases = sorted(set(a.legs) | set(b.legs))
    if aliases:
        lines.append("")
        lines.append("  per-leg q-error (measured s_jp vs optimizer prior):")
        for alias in aliases:
            qa = a.legs.get(alias, {}).get("q_error")
            qb = b.legs.get(alias, {}).get("q_error")
            lines.append(f"    {alias:<12s} A={_fmt(qa):<10s} B={_fmt(qb)}")
    return "\n".join(lines)
