"""Static optimization: selectivity estimation, Eq (1) cost model, plans."""

from repro.optimizer.cost import (
    LegParamsProvider,
    best_order_exhaustive,
    cost_of_order,
    greedy_rank_order,
    greedy_rank_suffix,
    rank,
)
from repro.optimizer.optimizer import StaticOptimizer
from repro.optimizer.params import ModelProvider, TableModel
from repro.optimizer.plans import (
    DrivingKind,
    DrivingSpec,
    LegEstimates,
    PipelinePlan,
    PlanLeg,
)
from repro.optimizer.selectivity import Estimator, join_selectivity

__all__ = [
    "DrivingKind",
    "DrivingSpec",
    "Estimator",
    "LegEstimates",
    "LegParamsProvider",
    "ModelProvider",
    "PipelinePlan",
    "PlanLeg",
    "StaticOptimizer",
    "TableModel",
    "best_order_exhaustive",
    "cost_of_order",
    "greedy_rank_order",
    "greedy_rank_suffix",
    "join_selectivity",
    "rank",
]
