"""Unit tests for the run-time monitors (Sec 4.3)."""

import pytest

from repro.core.monitor import DrivingMonitor, LegMonitor, ProbeSample, SlidingWindow


class TestSlidingWindow:
    def test_totals(self):
        window = SlidingWindow(10)
        window.add(ProbeSample(3, 1, 5.0))
        window.add(ProbeSample(2, 2, 3.0))
        assert window.sum_matches == 5
        assert window.sum_output == 3
        assert window.sum_work == 8.0
        assert len(window) == 2

    def test_eviction(self):
        window = SlidingWindow(2)
        window.add(ProbeSample(10, 10, 10.0))
        window.add(ProbeSample(1, 1, 1.0))
        window.add(ProbeSample(2, 2, 2.0))
        assert len(window) == 2
        assert window.sum_matches == 3  # the 10 expired

    def test_lifetime_counts_everything(self):
        window = SlidingWindow(1)
        for _ in range(5):
            window.add(ProbeSample(1, 1, 1.0))
        assert window.lifetime_samples == 5
        assert len(window) == 1

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)


class TestLegMonitor:
    def test_join_cardinality_eq11(self):
        monitor = LegMonitor(100)
        monitor.record_probe(index_matches=4, output_rows=2, work_units=1.0)
        monitor.record_probe(index_matches=6, output_rows=4, work_units=1.0)
        assert monitor.join_cardinality() == pytest.approx(3.0)  # 6 out / 2 in

    def test_index_join_selectivity_eq7(self):
        monitor = LegMonitor(100)
        monitor.record_probe(index_matches=5, output_rows=1, work_units=1.0)
        # S_JP = (matches per incoming) / C(T) = 5 / 100
        assert monitor.index_join_selectivity(100) == pytest.approx(0.05)

    def test_residual_selectivity_eq6(self):
        monitor = LegMonitor(100)
        monitor.record_probe(index_matches=8, output_rows=2, work_units=1.0)
        assert monitor.residual_selectivity() == pytest.approx(0.25)

    def test_probe_cost_is_work_per_incoming(self):
        monitor = LegMonitor(100)
        monitor.record_probe(1, 1, 10.0)
        monitor.record_probe(1, 1, 20.0)
        assert monitor.probe_cost() == pytest.approx(15.0)

    def test_no_data_returns_none(self):
        monitor = LegMonitor(10)
        assert monitor.join_cardinality() is None
        assert monitor.probe_cost() is None
        assert monitor.residual_selectivity() is None
        assert monitor.index_join_selectivity(10) is None

    def test_window_forgets_old_phases(self):
        monitor = LegMonitor(2)
        monitor.record_probe(1, 1, 1.0)   # old phase: JC 1
        monitor.record_probe(1, 0, 1.0)   # new phase: JC 0
        monitor.record_probe(1, 0, 1.0)
        assert monitor.join_cardinality() == pytest.approx(0.0)

    def test_reset(self):
        monitor = LegMonitor(10)
        monitor.record_probe(1, 1, 1.0)
        monitor.reset()
        assert monitor.incoming_rows == 0
        assert monitor.join_cardinality() is None


class TestDrivingMonitor:
    def test_residual_selectivity(self):
        monitor = DrivingMonitor(100)
        for survived in (True, False, False, True):
            monitor.record_scanned(survived)
        assert monitor.residual_selectivity() == pytest.approx(0.5)
        assert monitor.entries_scanned == 4
        assert monitor.rows_survived == 2

    def test_windowed(self):
        monitor = DrivingMonitor(2)
        monitor.record_scanned(True)
        monitor.record_scanned(False)
        monitor.record_scanned(False)
        assert monitor.residual_selectivity() == pytest.approx(0.0)
        assert monitor.entries_scanned == 3  # lifetime still counts

    def test_no_data(self):
        assert DrivingMonitor(5).residual_selectivity() is None
