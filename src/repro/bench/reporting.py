"""Plain-text reporting of experiment results.

Every experiment prints the same rows/series the paper's table or figure
shows: per-query (x, y) pairs for the scatter plots, per-template ratios for
the bar charts, per-window switch counts for Fig 10. CSV emission is
provided so the series can be re-plotted outside the harness.
"""

from __future__ import annotations

import csv
import io
import os
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str | None = None
) -> str:
    """Render an ASCII table with right-aligned numeric columns."""

    def render(cell: Any) -> str:
        if isinstance(cell, float):
            return f"{cell:,.2f}"
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)


def format_scatter_summary(
    pairs: Sequence[tuple[str, float, float]],
    x_label: str = "static",
    y_label: str = "adaptive",
    sample: int = 15,
) -> str:
    """Summarize a Fig 7 / Fig 11 style scatter: pairs of (qid, x, y)."""
    if not pairs:
        return "(no data)"
    total_x = sum(x for _, x, _ in pairs)
    total_y = sum(y for _, _, y in pairs)
    speedups = [(qid, x / y if y > 0 else float("inf")) for qid, x, y in pairs]
    best_qid, best = max(speedups, key=lambda item: item[1])
    worst_qid, worst = min(speedups, key=lambda item: item[1])
    below = sum(1 for _, s in speedups if s > 1.0)
    lines = [
        f"{len(pairs)} queries; points below the diagonal improve",
        f"  total improvement: {(1 - total_y / total_x) * 100:.1f}% "
        f"({x_label} {total_x:,.0f} -> {y_label} {total_y:,.0f} work units)",
        f"  max speedup: {best:.2f}x ({best_qid}); "
        f"worst: {worst:.2f}x ({worst_qid})",
        f"  improved queries: {below}/{len(pairs)}",
        f"  sample points ({x_label}, {y_label}):",
    ]
    step = max(len(pairs) // sample, 1)
    for qid, x, y in pairs[::step][:sample]:
        lines.append(f"    {qid}: ({x:,.0f}, {y:,.0f})  [{x / max(y, 1e-9):.2f}x]")
    return "\n".join(lines)


def to_csv(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render rows as CSV text (for saving series to disk)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    writer.writerows(rows)
    return buffer.getvalue()


def write_csv(
    path: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]
) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(headers)
            writer.writerows(rows)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def format_workload_metrics(registry: "MetricsRegistry") -> str:
    """Per-mode rollup table straight off a workload's metrics registry.

    Consumes the ``bench_*`` series :class:`~repro.bench.runner.WorkloadResult`
    accumulates, so experiment reports don't re-derive totals from the raw
    measurement list.
    """
    queries = registry.get("bench_queries_total")
    if queries is None or not queries.total:
        return "(no workload metrics recorded)"

    def series(name: str) -> dict[str, float]:
        metric = registry.get(name)
        return metric.as_dict() if metric is not None else {}

    work = series("bench_work_units_total")
    adaptation = series("bench_adaptation_work_units_total")
    switches = series("bench_switches_total")
    changed = series("bench_order_changed_total")
    rows = []
    for mode, count in queries.items():
        total_work = work.get(mode, 0.0)
        rows.append(
            [
                mode,
                int(count),
                total_work,
                adaptation.get(mode, 0.0),
                (100.0 * adaptation.get(mode, 0.0) / total_work)
                if total_work
                else 0.0,
                int(switches.get(mode, 0)),
                int(changed.get(mode, 0)),
            ]
        )
    return format_table(
        ["mode", "queries", "work units", "adaptation", "adapt %",
         "switches", "order changed"],
        rows,
        title="workload metrics (per mode):",
    )
