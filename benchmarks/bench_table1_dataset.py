"""E1 — Table 1: DMV data set cardinalities.

Regenerates the paper's Table 1 at the configured scale: the generated
Owner/Car/Demographics/Accidents row counts must track the paper's
cardinalities (scaled) within a few percent — the Car and Accidents tables
are produced by random processes calibrated to Table 1's ratios.
"""

from conftest import SCALE, emit_report

from repro.bench import table1_experiment


def test_table1_cardinalities(benchmark, dmv_summary):
    result = benchmark.pedantic(
        lambda: table1_experiment(dmv_summary, SCALE), rounds=1, iterations=1
    )
    emit_report("table1_dataset", result.report())
    for name, ours, expected in result.rows:
        assert abs(ours - expected) / max(expected, 1) < 0.08, (
            f"{name}: generated {ours}, expected ~{expected}"
        )
