"""Unit tests for the inner-reorder and driving-switch decision logic."""

import pytest

from repro import AdaptiveConfig, ReorderMode
from repro.core.config import InnerReorderPolicy
from repro.core.driving import decide_driving_switch, dynamic_driving_spec
from repro.core.reorder import decide_inner_order, suffix_ranks
from repro.executor.pipeline import PipelineExecutor
from repro.optimizer.plans import DrivingKind

from tests.conftest import build_three_table_db

SQL = (
    "SELECT o.name FROM Owner o, Car c, Demo d "
    "WHERE c.ownerid = o.id AND o.id = d.ownerid "
    "AND c.make = 'Rare' AND o.country = 'DE' AND d.salary < 70000"
)


class FixedProvider:
    """(JC, PC) fixed per alias; driving (CLEG, scan PC) fixed per alias."""

    def __init__(self, driving, inner):
        self.driving = driving
        self.inner = inner

    def driving_params(self, alias):
        return self.driving[alias]

    def inner_params(self, alias, bound):
        return self.inner[alias]


def started_pipeline(db, sql=SQL, mode=ReorderMode.BOTH, **kwargs):
    plan = db.plan(sql)
    config = AdaptiveConfig(mode=mode, **kwargs)
    pipeline = PipelineExecutor(plan, db.catalog, config)
    iterator = pipeline.rows()
    next(iterator, None)
    return pipeline, config


class TestInnerDecision:
    def test_ascending_ranks_keep_order(self, three_table_db):
        pipeline, config = started_pipeline(three_table_db)
        provider = FixedProvider(
            {alias: (10.0, 1.0) for alias in pipeline.order},
            {alias: (0.1 * (i + 1), 1.0) for i, alias in enumerate(pipeline.order)},
        )
        decision = decide_inner_order(
            pipeline, provider, 1, InnerReorderPolicy.RANK_GREEDY
        )
        assert decision is None

    def test_inverted_ranks_trigger_reorder(self, three_table_db):
        pipeline, _ = started_pipeline(three_table_db)
        inner = {}
        for i, alias in enumerate(pipeline.order):
            jc = 5.0 if i == 1 else 0.1  # position 1 has a terrible rank
            inner[alias] = (jc, 1.0)
        provider = FixedProvider(
            {alias: (10.0, 1.0) for alias in pipeline.order}, inner
        )
        decision = decide_inner_order(
            pipeline, provider, 1, InnerReorderPolicy.RANK_GREEDY
        )
        assert decision is not None
        assert decision[0] != pipeline.order[1]

    def test_single_leg_suffix_never_reorders(self, three_table_db):
        pipeline, _ = started_pipeline(three_table_db)
        provider = FixedProvider(
            {alias: (10.0, 1.0) for alias in pipeline.order},
            {alias: (1.0, 1.0) for alias in pipeline.order},
        )
        last = len(pipeline.order) - 1
        assert decide_inner_order(
            pipeline, provider, last, InnerReorderPolicy.RANK_GREEDY
        ) is None

    def test_exhaustive_requires_min_gain(self, three_table_db):
        pipeline, _ = started_pipeline(three_table_db)
        provider = FixedProvider(
            {alias: (10.0, 1.0) for alias in pipeline.order},
            {alias: (1.0, 1.0) for alias in pipeline.order},  # all equal
        )
        assert decide_inner_order(
            pipeline, provider, 1, InnerReorderPolicy.EXHAUSTIVE
        ) is None

    def test_suffix_ranks_positions(self, three_table_db):
        pipeline, _ = started_pipeline(three_table_db)
        provider = FixedProvider(
            {alias: (10.0, 1.0) for alias in pipeline.order},
            {alias: (2.0, 4.0) for alias in pipeline.order},
        )
        ranks = suffix_ranks(pipeline.order, 1, provider)
        assert len(ranks) == len(pipeline.order) - 1
        assert all(r == pytest.approx(0.25) for r in ranks)


class TestDrivingDecision:
    def test_no_switch_when_current_is_best(self, three_table_db):
        pipeline, config = started_pipeline(three_table_db)
        driving = {alias: (1000.0, 1000.0) for alias in pipeline.order}
        driving[pipeline.order[0]] = (1.0, 1.0)  # current driving is great
        provider = FixedProvider(
            driving, {alias: (1.0, 1.0) for alias in pipeline.order}
        )
        assert decide_driving_switch(pipeline, provider, config) is None

    def test_switch_when_candidate_much_cheaper(self, three_table_db):
        pipeline, config = started_pipeline(three_table_db)
        driving = {alias: (1.0, 1.0) for alias in pipeline.order}
        driving[pipeline.order[0]] = (10_000.0, 10_000.0)
        provider = FixedProvider(
            driving, {alias: (1.0, 1.0) for alias in pipeline.order}
        )
        decision = decide_driving_switch(pipeline, provider, config)
        assert decision is not None
        assert decision[0] != pipeline.order[0]

    def test_threshold_suppresses_marginal_switch(self, three_table_db):
        pipeline, _ = started_pipeline(three_table_db)
        config = AdaptiveConfig(
            mode=ReorderMode.BOTH, switch_benefit_threshold=0.5
        )
        driving = {alias: (10.0, 100.0) for alias in pipeline.order}
        driving[pipeline.order[0]] = (10.0, 130.0)  # only ~23% worse
        provider = FixedProvider(
            driving, {alias: (1.0, 1.0) for alias in pipeline.order}
        )
        assert decide_driving_switch(pipeline, provider, config) is None

    def test_abandoned_leg_needs_bigger_margin(self, three_table_db):
        pipeline, config = started_pipeline(three_table_db)
        candidate = pipeline.order[1]
        driving = {alias: (10.0, 500.0) for alias in pipeline.order}
        driving[pipeline.order[0]] = (10.0, 130.0)
        driving[candidate] = (10.0, 95.0)  # ~23% better: would switch...
        provider = FixedProvider(
            driving, {alias: (1.0, 1.0) for alias in pipeline.order}
        )
        assert decide_driving_switch(pipeline, provider, config) is not None
        # ...but not once the candidate has been abandoned twice.
        pipeline.abandon_counts[candidate] = 2
        assert decide_driving_switch(pipeline, provider, config) is None


class TestDynamicAccessPath:
    def test_rechooses_measured_better_index(self, three_table_db):
        plan = three_table_db.plan(
            "SELECT o.name FROM Owner o, Car c, Demo d "
            "WHERE c.ownerid = o.id AND o.id = d.ownerid "
            "AND o.country = 'DE' AND o.name = 'n1' AND c.make = 'Rare'"
        )
        pipeline = PipelineExecutor(
            plan,
            three_table_db.catalog,
            AdaptiveConfig(mode=ReorderMode.MONITOR_ONLY),
        )
        # Owner has country (indexed) and name (not indexed) predicates.
        list(pipeline.rows())
        leg = pipeline.legs["o"]
        spec = dynamic_driving_spec(leg)
        # Only 'country' is indexed+sargable, so the spec (if any) uses it.
        if spec is not None:
            assert spec.index_column == "country"
            assert spec.kind is DrivingKind.INDEX_SCAN

    def test_no_measurements_no_change(self, three_table_db):
        pipeline, _ = started_pipeline(three_table_db)
        leg = pipeline.legs[pipeline.order[1]]
        assert dynamic_driving_spec(leg) is None
