"""Observability must be free when disabled and passive when armed.

The Sec 5.4 overhead story is told in deterministic work units, so the
observability layer has a sharp contract: with ``obs`` disabled the
engine pays one ``is None`` check per site and charges nothing; with
``obs`` armed it may spend wall-clock time but must never touch the
:class:`~repro.storage.counters.WorkMeter` or change a single result row.
"""

from __future__ import annotations

import dataclasses
import time
from collections import Counter as Multiset

import pytest

from repro import AdaptiveConfig, QueryObservability, ReorderMode
from repro.dmv import four_table_workload, load_dmv


@pytest.fixture(scope="module")
def dmv_db():
    db, _ = load_dmv(scale=0.01)
    return db


@pytest.fixture(scope="module")
def workload():
    return four_table_workload(queries_per_template=1)


def _work_fields(stats) -> dict:
    return dataclasses.asdict(stats.work)


class TestDisabledObservabilityIsFree:
    def test_work_units_identical_to_baseline(self, dmv_db, workload):
        """obs=None runs charge exactly the same meter, field by field."""
        config = AdaptiveConfig(mode=ReorderMode.BOTH)
        for query in workload:
            baseline = dmv_db.execute(query.sql, config)
            disabled = dmv_db.execute(query.sql, config, obs=None)
            assert _work_fields(disabled.stats) == _work_fields(
                baseline.stats
            ), f"{query.qid}: disabled observability changed the meter"
            assert Multiset(disabled.rows) == Multiset(
                baseline.rows
            ), f"{query.qid}: disabled observability changed the result"

    def test_disabled_run_carries_no_artifacts(self, dmv_db, workload):
        query = workload[0]
        result = dmv_db.execute(query.sql, AdaptiveConfig(mode=ReorderMode.BOTH))
        assert result.trace is None
        assert result.metrics is None
        assert result.samples == ()


class TestArmedObservabilityIsPassive:
    @pytest.mark.parametrize(
        "mode",
        [ReorderMode.NONE, ReorderMode.MONITOR_ONLY, ReorderMode.BOTH],
    )
    def test_armed_run_charges_identical_work(self, dmv_db, workload, mode):
        """An armed tracer/registry/sampler never touches the meter."""
        config = AdaptiveConfig(mode=mode)
        for query in workload:
            baseline = dmv_db.execute(query.sql, config)
            armed = dmv_db.execute(query.sql, config, obs=True)
            assert _work_fields(armed.stats) == _work_fields(
                baseline.stats
            ), f"{query.qid}: armed observability changed the meter in {mode}"
            assert Multiset(armed.rows) == Multiset(
                baseline.rows
            ), f"{query.qid}: armed observability changed the result in {mode}"
            assert armed.stats.total_switches == baseline.stats.total_switches
            assert armed.final_order == baseline.final_order

    def test_armed_run_with_custom_bundle(self, dmv_db, workload):
        query = workload[0]
        config = AdaptiveConfig(mode=ReorderMode.BOTH)
        baseline = dmv_db.execute(query.sql, config)
        obs = QueryObservability.armed(sample_every=5, probe_batch=8)
        armed = dmv_db.execute(query.sql, config, obs=obs)
        assert armed.stats.total_work == baseline.stats.total_work
        assert armed.trace is obs.tracer
        assert armed.metrics is obs.metrics

    def test_armed_recorder_charges_identical_work(self, dmv_db, workload):
        """The flight recorder's audit bundle is cold and meter-free."""
        from repro.obs.recorder import FlightRecorder

        config = AdaptiveConfig(mode=ReorderMode.BOTH)
        recorder = FlightRecorder()
        for query in workload:
            baseline = dmv_db.execute(query.sql, config)
            bundle = recorder.arm(config)
            assert not bundle.hot
            recorded = dmv_db.execute(query.sql, config, obs=bundle)
            recorder.finish_query(
                bundle, recorded, sql=query.sql, config=config
            )
            assert _work_fields(recorded.stats) == _work_fields(
                baseline.stats
            ), f"{query.qid}: armed recorder changed the meter"
            assert Multiset(recorded.rows) == Multiset(baseline.rows)
        assert recorder.recorded_total == len(workload)

    def test_wall_clock_overhead_is_bounded(self, dmv_db, workload):
        """Armed observability costs wall time, but not pathologically.

        Best-of-N timing with a generous bound — this guards against a
        per-probe span regression (unbatched tracing), not microseconds.
        """
        query = workload[0]
        config = AdaptiveConfig(mode=ReorderMode.BOTH)

        def best_of(runs: int, **kwargs) -> float:
            best = float("inf")
            for _ in range(runs):
                started = time.perf_counter()
                dmv_db.execute(query.sql, config, **kwargs)
                best = min(best, time.perf_counter() - started)
            return best

        baseline = best_of(3)
        armed = best_of(3, obs=True)
        assert armed <= max(baseline * 3.0, baseline + 0.05)
