"""Tokenizer for the supported SQL subset.

Produces a flat token stream for the parser. Supported lexemes: identifiers
and keywords, single-quoted string literals (with ``''`` escaping), integer
and float literals, comparison operators, and the punctuation used by
SELECT-FROM-WHERE queries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import SqlSyntaxError

KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "AND", "OR", "BETWEEN", "IN", "AS", "NOT",
        "GROUP", "ORDER", "BY", "LIMIT", "ASC", "DESC", "IS", "NULL",
    }
)


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    STRING = "string"
    NUMBER = "number"
    OPERATOR = "operator"  # = <> < <= > >=
    COMMA = ","
    DOT = "."
    LPAREN = "("
    RPAREN = ")"
    STAR = "*"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    value: Any
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word


_SINGLE_CHAR = {
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "*": TokenKind.STAR,
}


def tokenize(sql: str) -> list[Token]:
    """Tokenize *sql*, raising :class:`SqlSyntaxError` on illegal input."""
    return list(_tokens(sql))


def _tokens(sql: str) -> Iterator[Token]:
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch in _SINGLE_CHAR:
            yield Token(_SINGLE_CHAR[ch], ch, ch, i)
            i += 1
            continue
        if ch in "=<>!":
            two = sql[i : i + 2]
            if two in ("<>", "<=", ">=", "!="):
                text = "<>" if two == "!=" else two
                yield Token(TokenKind.OPERATOR, text, text, i)
                i += 2
                continue
            if ch == "!":
                raise SqlSyntaxError(f"unexpected character {ch!r}", i)
            yield Token(TokenKind.OPERATOR, ch, ch, i)
            i += 1
            continue
        if ch == "'":
            literal, i = _read_string(sql, i)
            yield Token(TokenKind.STRING, literal, literal, i)
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and sql[i + 1].isdigit()):
            value, text, i = _read_number(sql, i)
            yield Token(TokenKind.NUMBER, text, value, i)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                yield Token(TokenKind.KEYWORD, upper, upper, start)
            else:
                yield Token(TokenKind.IDENT, word, word, start)
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", i)
    yield Token(TokenKind.EOF, "", None, n)


def _read_string(sql: str, start: int) -> tuple[str, int]:
    """Read a single-quoted literal starting at *start*; '' escapes a quote."""
    i = start + 1
    parts: list[str] = []
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise SqlSyntaxError("unterminated string literal", start)


def _read_number(sql: str, start: int) -> tuple[int | float, str, int]:
    i = start
    n = len(sql)
    if sql[i] == "-":
        i += 1
    while i < n and sql[i].isdigit():
        i += 1
    is_float = False
    if i < n and sql[i] == "." and i + 1 < n and sql[i + 1].isdigit():
        is_float = True
        i += 1
        while i < n and sql[i].isdigit():
            i += 1
    text = sql[start:i]
    value: int | float = float(text) if is_float else int(text)
    return value, text, i
