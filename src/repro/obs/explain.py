"""EXPLAIN ANALYZE: the run-time report of what the adaptive executor did.

Renders one executed :class:`~repro.db.QueryResult` as a plain-text
report combining:

* the optimizer's static plan (with its estimates),
* the **final** pipeline order with per-leg actual row flow (from the
  metrics registry) against the optimizer's and the monitors' estimates,
* the full adaptation-event timeline and check hit/keep counts,
* the work-unit breakdown by physical action, and
* budget and fault/degradation summaries from the robustness layer.

The per-leg table compares three views of each leg:

=============  =============================================================
column         meaning
=============  =============================================================
``est C_LEG``  optimizer: base cardinality x estimated local selectivity
``rows in``    actual incoming outer rows (driving leg: entries scanned)
``cand``       actual access-method candidates fetched
``rows out``   actual rows surviving every predicate at the leg
``JC meas``    monitor's Eq (11) windowed output/incoming ratio
``S_JP``       optimizer prior -> monitor's Eq (7) measured selectivity
=============  =============================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db import QueryResult
    from repro.robustness.limits import ExecutionLimits


def _fmt(value: Any, precision: str = ",.0f") -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return format(value, precision)
    return format(value, ",d") if isinstance(value, int) else str(value)


def _fmt_sel(value: Any) -> str:
    if value is None:
        return "-"
    return f"{value:.2e}"


def _compress_engines(engines) -> str:
    """Run-length summary of per-partition engines: ``vector x8, fast``."""
    parts: list[str] = []
    for engine in engines:
        if parts and parts[-1][0] == engine:
            parts[-1][1] += 1
        else:
            parts.append([engine, 1])
    return ", ".join(
        name if count == 1 else f"{name} x{count}" for name, count in parts
    )


def _counter_value(result: "QueryResult", name: str, label: str) -> int | None:
    if result.metrics is None:
        return None
    metric = result.metrics.get(name)
    if metric is None:
        return None
    return int(metric.value(label))


def _leg_rows(result: "QueryResult", alias: str, driving: bool):
    """(rows_in, candidates, rows_out) actuals for one leg, or Nones."""
    if driving:
        rows_in = _counter_value(result, "scan_rows_total", alias)
        rows_out = _counter_value(result, "scan_rows_survived_total", alias)
        return rows_in, rows_in, rows_out
    return (
        _counter_value(result, "leg_rows_in_total", alias),
        _counter_value(result, "leg_index_matches_total", alias),
        _counter_value(result, "leg_rows_out_total", alias),
    )


def _final_sample(result: "QueryResult"):
    return result.samples[-1] if result.samples else None


def render_explain_analyze(
    result: "QueryResult", limits: "ExecutionLimits | None" = None
) -> str:
    """The full EXPLAIN ANALYZE report for one executed query."""
    stats = result.stats
    work = stats.work
    lines: list[str] = ["EXPLAIN ANALYZE", "=" * 15, "", result.plan.explain(), ""]

    # -- per-leg actuals vs estimates ---------------------------------
    sample = _final_sample(result)
    header = (
        f"{'pos':>3}  {'leg':<6} {'role':<8} {'est C_LEG':>12} "
        f"{'rows in':>10} {'cand':>10} {'rows out':>10} "
        f"{'JC meas':>9}  {'S_JP est -> meas':<22}"
    )
    lines.append(
        f"pipeline actuals (final order: {', '.join(result.final_order)}; "
        f"{stats.total_switches} order change(s)):"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for position, alias in enumerate(result.final_order):
        leg = result.plan.leg(alias)
        role = "DRIVING" if position == 0 else "INNER"
        rows_in, candidates, rows_out = _leg_rows(result, alias, position == 0)
        jc = s_jp = s_jp_prior = None
        if sample is not None:
            data = sample.legs.get(alias, {})
            jc = data.get("jc")
            s_jp = data.get("s_jp")
            s_jp_prior = data.get("s_jp_prior")
        sel_pair = (
            f"{_fmt_sel(s_jp_prior)} -> {_fmt_sel(s_jp)}"
            if position > 0
            else "-"
        )
        lines.append(
            f"{position:>3}  {alias:<6} {role:<8} "
            f"{leg.estimates.leg_cardinality:>12,.1f} "
            f"{_fmt(rows_in):>10} {_fmt(candidates):>10} {_fmt(rows_out):>10} "
            f"{_fmt(jc, '.3f'):>9}  {sel_pair:<22}"
        )
    lines.append("")

    # -- execution totals + work breakdown ----------------------------
    lines.append(
        f"executed: {len(result.rows)} row(s), "
        f"{stats.total_work:,.0f} work units "
        f"({stats.execution_work:,.0f} execution + "
        f"{stats.adaptation_work:,.0f} adaptation), "
        f"{stats.wall_seconds * 1000:.1f} ms"
    )
    engine_line = f"engine: {stats.engine}"
    if stats.worker_engines:
        engine_line += f" [{_compress_engines(stats.worker_engines)}]"
    if stats.vector_gate is not None:
        engine_line += f" (vector cascade gated: {stats.vector_gate})"
    lines.append(engine_line)
    lines.append(
        "work breakdown: "
        f"{work.index_descends:,d} index descend(s), "
        f"{work.index_entries:,d} index entrie(s), "
        f"{work.row_fetches:,d} row fetch(es), "
        f"{work.predicate_evals:,d} predicate eval(s), "
        f"{work.monitor_updates:,d} monitor update(s), "
        f"{work.reorder_checks:,d} reorder check(s)"
    )
    if work.hash_probes or work.hash_build_entries:
        lines.append(
            "hash probing: "
            f"{work.hash_build_entries:,d} build entrie(s), "
            f"{work.hash_probes:,d} probe(s), {work.hash_matches:,d} match(es)"
        )
    cache_lookups = work.probe_cache_hits + work.probe_cache_misses
    if cache_lookups:
        lines.append(
            "probe cache: "
            f"{work.probe_cache_hits:,d} hit(s), "
            f"{work.probe_cache_misses:,d} miss(es) "
            f"({work.probe_cache_hits / cache_lookups:.1%} hit rate)"
        )
    lines.append(
        f"checks: {stats.inner_checks} inner, {stats.driving_checks} driving; "
        f"switches: {stats.inner_reorders} inner, "
        f"{stats.driving_switches} driving"
    )

    # -- adaptation timeline ------------------------------------------
    if stats.events:
        lines.append("adaptation timeline:")
        lines.extend(f"  {event.describe()}" for event in stats.events)
    else:
        lines.append("adaptation timeline: none (the initial order held)")
    if result.samples:
        lines.append(
            f"estimate samples: {len(result.samples)} "
            f"(every {max(result.samples[0].driving_rows, 1)} driving rows "
            f"up to row {result.samples[-1].driving_rows})"
        )

    # -- robustness: budget + faults ----------------------------------
    if limits is not None and not limits.unlimited:
        parts = []
        if limits.max_rows is not None:
            parts.append(f"max_rows={limits.max_rows}")
        if limits.max_work_units is not None:
            parts.append(f"max_work_units={limits.max_work_units:,.0f}")
        if limits.timeout_seconds is not None:
            parts.append(f"timeout={limits.timeout_seconds * 1000:.0f}ms")
        lines.append(f"budget: {', '.join(parts)} (not exceeded)")
    else:
        lines.append("budget: unlimited")
    retries = None
    if result.metrics is not None:
        metric = result.metrics.get("fault_retries_total")
        retries = int(metric.total) if metric is not None else 0
    degraded = sum(1 for event in stats.events if event.kind.value == "degraded")
    lines.append(
        f"faults: {_fmt(retries)} transient retrie(s), "
        f"{degraded} degradation(s)"
        + (" — adaptive layer was DISABLED mid-query" if degraded else "")
    )
    return "\n".join(lines)
