"""Server-side telemetry plane: the ``telemetry`` op, slow-query log,
per-session stats, and store finalization on drain.

These tests run a real :class:`DatabaseEngine` over a small database (the
fake engines in ``test_server.py`` have no flight recorder) and check the
wire-visible surface: every served query carries its ``query_id`` back to
the client, the ``telemetry`` op exposes the rings and the store, the
``stats`` document validates against ``scripts/validate_stats.py``'s
schema, and a drained server leaves only finalized ``.jsonl`` segments.
"""

from __future__ import annotations

import asyncio
import os
import sys
from types import SimpleNamespace

import pytest

from tests.conftest import build_three_table_db
from tests.test_server import ServerClient

from repro.obs.schema import TelemetryValidator
from repro.server.admission import ServerConfig
from repro.server.protocol import ErrorCode
from repro.server.server import QueryServer

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "scripts")
)
import validate_stats  # noqa: E402

SQL = (
    "SELECT o.name FROM Owner o, Car c, Demo d "
    "WHERE o.id = c.ownerid AND o.id = d.ownerid AND o.country = 'DE'"
)


@pytest.fixture(scope="module")
def small_db():
    return build_three_table_db()


def serve(small_db, config: ServerConfig, scenario):
    """Run *scenario* against a real-engine server; returns its result."""

    async def main():
        server = QueryServer(small_db, config)
        await server.start()
        try:
            return await asyncio.wait_for(scenario(server), timeout=30.0)
        finally:
            await server.shutdown(grace=1.0)

    return asyncio.run(main())


def config_with(**overrides) -> ServerConfig:
    defaults = dict(port=0, max_concurrency=1, max_queue_depth=8)
    defaults.update(overrides)
    return ServerConfig(**defaults)


class TestTelemetryOp:
    def test_every_query_carries_its_flight_record_id(self, small_db):
        async def scenario(server):
            client = await ServerClient.connect(server.port)
            await client.send(op="query", id=1, sql=SQL)
            response = await client.recv()
            await client.close()
            return response

        response = serve(small_db, config_with(), scenario)
        assert response["status"] == "ok"
        assert response["stats"]["query_id"].startswith("q-")

    def test_telemetry_op_reports_rings_and_store(self, small_db, tmp_path):
        config = config_with(
            telemetry_dir=str(tmp_path), slow_query_ms=0.0001
        )

        async def scenario(server):
            client = await ServerClient.connect(server.port)
            await client.send(op="query", id=1, sql=SQL)
            ok = await client.recv()
            await client.send(op="query", id=2, sql="SELECT nope FROM Missing m")
            failed = await client.recv()
            await client.send(op="telemetry", id=3)
            telemetry = await client.recv()
            await client.close()
            return ok, failed, telemetry

        ok, failed, response = serve(small_db, config, scenario)
        assert ok["status"] == "ok"
        assert failed["status"] == "error"
        body = response["telemetry"]
        assert body["recorded_total"] == 2
        assert body["slow_query_ms"] == 0.0001
        outcomes = {entry["outcome"] for entry in body["recent"]}
        assert outcomes == {"ok", "sql_error"}
        for entry in body["recent"]:
            assert entry["query_id"].startswith("q-")
            assert entry["session"].startswith("session-")
        # The 0.0001ms threshold marks the successful query slow.
        assert body["slow_total"] >= 1
        assert body["slow"]
        store = body["store"]
        assert store["directory"] == str(tmp_path)
        assert store["appended_total"] == 2

    def test_prometheus_exposition_format(self, small_db):
        async def scenario(server):
            client = await ServerClient.connect(server.port)
            await client.send(op="query", id=1, sql=SQL)
            await client.recv()
            await client.send(op="telemetry", id=2, format="prometheus")
            response = await client.recv()
            await client.close()
            return response

        response = serve(small_db, config_with(), scenario)
        text = response["exposition"]
        assert "# TYPE server_queries_total counter" in text
        assert 'server_queries_total{label="ok"} 1' in text
        assert "# TYPE server_latency_ms histogram" in text
        assert 'le="+Inf"' in text

    def test_limit_validated_and_recorderless_engine_rejected(self, small_db):
        server = QueryServer(
            small_db, config_with(), engine=SimpleNamespace()
        )
        rejected = server._telemetry_response(1, {})
        assert rejected["code"] == ErrorCode.BAD_REQUEST
        assert "no flight recorder" in rejected["error"]
        for bad in (0, -1, "five", True):
            response = QueryServer(small_db, config_with())._telemetry_response(
                2, {"limit": bad}
            )
            assert response["code"] == ErrorCode.BAD_REQUEST


class TestStatsDocument:
    def test_stats_validate_against_schema(self, small_db, tmp_path):
        config = config_with(
            telemetry_dir=str(tmp_path), slow_query_ms=0.0001
        )

        async def scenario(server):
            client = await ServerClient.connect(server.port)
            await client.send(op="query", id=1, sql=SQL)
            await client.recv()
            await client.send(op="stats", id=2)
            stats = (await client.recv())["stats"]
            await client.close()
            return stats

        stats = serve(small_db, config, scenario)
        notes = validate_stats.validate(stats)  # raises on violation
        assert notes
        telemetry = stats["telemetry"]
        assert telemetry["recorded_total"] == 1
        assert telemetry["slow_queries_total"] == 1
        (session,) = stats["per_session"]
        assert session["submitted"] == 1 and session["completed"] == 1

    def test_probe_cache_counters_surface_when_cache_active(self, small_db):
        """The engine reports per-query probe-cache traffic to the server.

        The wire protocol never enables the probe cache itself, so this
        exercises the :class:`DatabaseEngine` adapter directly with a
        cache-enabled config and checks the counters the server folds
        into ``stats.telemetry``.
        """
        from repro.core.config import AdaptiveConfig
        from repro.robustness.limits import ExecutionLimits
        from repro.server.server import DatabaseEngine

        engine = DatabaseEngine(small_db, config_with())
        cached = AdaptiveConfig(batched=True, probe_cache_size=64)
        result = engine.execute(SQL, cached, ExecutionLimits())
        assert result.probe_cache_hits + result.probe_cache_misses > 0

    def test_probe_cache_hit_rate_gauge(self, small_db):
        """Satellite: per-leg probe-cache hit rate as a registry gauge."""
        from repro import QueryObservability
        from repro.core.config import AdaptiveConfig

        obs = QueryObservability.armed(sample_every=None)
        cached = AdaptiveConfig(batched=True, probe_cache_size=64)
        small_db.execute(SQL, cached, obs=obs)
        gauge = obs.metrics.get("probe_cache_hit_rate")
        assert gauge is not None, "cache-enabled run left no hit-rate gauge"
        rates = gauge.as_dict()
        assert rates, "no leg reported a probe-cache hit rate"
        assert all(0.0 <= rate <= 1.0 for rate in rates.values())
        # And it shows up on the exposition surface.
        assert "probe_cache_hit_rate" in obs.metrics.render_prometheus()


class TestStoreLifecycle:
    def test_drained_server_leaves_only_finalized_segments(
        self, small_db, tmp_path
    ):
        config = config_with(telemetry_dir=str(tmp_path))

        async def scenario(server):
            client = await ServerClient.connect(server.port)
            for i in range(3):
                await client.send(op="query", id=i, sql=SQL)
                await client.recv()
            await client.close()

        serve(small_db, config, scenario)
        names = sorted(os.listdir(tmp_path))
        assert names, "drained server wrote no telemetry"
        assert not any(name.endswith(".part") for name in names)
        # Every segment validates against the shared telemetry schema.
        validator = TelemetryValidator()
        import json

        for name in names:
            with open(tmp_path / name, encoding="utf-8") as handle:
                for line in handle:
                    assert validator.feed(json.loads(line)) == []
        assert validator.finish() == []
        assert len(validator.seen_query_ids) == 3
