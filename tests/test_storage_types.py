"""Unit tests for repro.storage.types."""

import pytest

from repro.errors import StorageError
from repro.storage.types import ColumnType, infer_type


class TestValidate:
    def test_int_accepts_int(self):
        assert ColumnType.INT.validate(5) == 5

    def test_int_rejects_float(self):
        with pytest.raises(StorageError):
            ColumnType.INT.validate(5.0)

    def test_int_rejects_str(self):
        with pytest.raises(StorageError):
            ColumnType.INT.validate("5")

    def test_float_accepts_float(self):
        assert ColumnType.FLOAT.validate(2.5) == 2.5

    def test_float_widens_int(self):
        value = ColumnType.FLOAT.validate(2)
        assert value == 2.0
        assert isinstance(value, float)

    def test_float_rejects_str(self):
        with pytest.raises(StorageError):
            ColumnType.FLOAT.validate("2.5")

    def test_string_accepts_str(self):
        assert ColumnType.STRING.validate("abc") == "abc"

    def test_string_rejects_int(self):
        with pytest.raises(StorageError):
            ColumnType.STRING.validate(1)

    def test_none_passes_any_type(self):
        for column_type in ColumnType:
            assert column_type.validate(None) is None

    @pytest.mark.parametrize("column_type", list(ColumnType))
    def test_bool_rejected_everywhere(self, column_type):
        with pytest.raises(StorageError):
            column_type.validate(True)

    def test_error_mentions_column_name(self):
        with pytest.raises(StorageError, match="salary"):
            ColumnType.INT.validate("x", column_name="salary")


class TestInferType:
    def test_int(self):
        assert infer_type(3) is ColumnType.INT

    def test_float(self):
        assert infer_type(3.5) is ColumnType.FLOAT

    def test_string(self):
        assert infer_type("x") is ColumnType.STRING

    def test_bool_rejected(self):
        with pytest.raises(StorageError):
            infer_type(True)

    def test_unsupported(self):
        with pytest.raises(StorageError):
            infer_type([1, 2])
