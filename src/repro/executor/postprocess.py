"""Blocking operators above the adaptive pipeline (Sec 3.1, footnote 3).

Aggregation, sorting, and LIMIT consume the pipeline's output *after* all
join processing. They are insensitive to run-time reordering because the
pipeline's output multiset is order-invariant; in particular, the sort
operator is exactly the paper's footnote-3 remedy for the implicit sort
order a driving-leg switch destroys.

The post-processor receives the pipeline's projection (the columns the
pipeline actually emits) and maps the query's select list, group keys, and
order keys onto those slots.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import QueryError
from repro.query.aggregates import AggFunc, Aggregate, OrderItem
from repro.query.query import OutputColumn, QuerySpec

Row = tuple[Any, ...]


class _Accumulator:
    """State for one aggregate within one group."""

    __slots__ = ("func", "count", "total", "extreme")

    def __init__(self, func: AggFunc) -> None:
        self.func = func
        self.count = 0
        self.total = 0
        self.extreme: Any = None

    def add(self, value: Any) -> None:
        if self.func is AggFunc.COUNT_STAR:
            self.count += 1
            return
        if value is None:
            return  # SQL aggregates ignore NULLs
        self.count += 1
        if self.func in (AggFunc.SUM, AggFunc.AVG):
            self.total += value
        elif self.func is AggFunc.MIN:
            if self.extreme is None or value < self.extreme:
                self.extreme = value
        elif self.func is AggFunc.MAX:
            if self.extreme is None or value > self.extreme:
                self.extreme = value

    def result(self) -> Any:
        if self.func in (AggFunc.COUNT, AggFunc.COUNT_STAR):
            return self.count
        if self.func is AggFunc.SUM:
            return self.total if self.count else None
        if self.func is AggFunc.AVG:
            return self.total / self.count if self.count else None
        return self.extreme


def _sort_key_for(slot: int):
    def key(row: Row):
        value = row[slot]
        return (value is not None, value)  # NULLs first, then comparable

    return key


class PostProcessor:
    """Applies aggregation, ordering, and LIMIT to pipeline output rows."""

    def __init__(
        self, spec: QuerySpec, pipeline_projection: Sequence[OutputColumn]
    ) -> None:
        self.spec = spec
        self._slots = {column: i for i, column in enumerate(pipeline_projection)}

    def _slot(self, column: OutputColumn) -> int:
        try:
            return self._slots[column]
        except KeyError:
            raise QueryError(
                f"column {column} is not produced by the pipeline"
            ) from None

    def process(self, rows: list[Row]) -> list[Row]:
        spec = self.spec
        if any(isinstance(item, Aggregate) for item in spec.select_items):
            rows = self._aggregate(rows)
            slots = {column: self._slot_in_output(column) for column in spec.group_by}
        else:
            slots = None
        rows = self._order(rows, slots)
        if spec.limit is not None:
            rows = rows[: spec.limit]
        if not any(isinstance(i, Aggregate) for i in spec.select_items):
            rows = self._project(rows)
        return rows

    # -- aggregation -------------------------------------------------------
    def _aggregate(self, rows: list[Row]) -> list[Row]:
        spec = self.spec
        group_slots = [self._slot(column) for column in spec.group_by]
        aggregate_items = [
            item for item in spec.select_items if isinstance(item, Aggregate)
        ]
        aggregate_slots = [
            self._slot(item.column) if item.column is not None else None
            for item in aggregate_items
        ]
        groups: dict[tuple, list[_Accumulator]] = {}
        for row in rows:
            key = tuple(row[slot] for slot in group_slots)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [_Accumulator(item.func) for item in aggregate_items]
                groups[key] = accumulators
            for accumulator, slot in zip(accumulators, aggregate_slots):
                accumulator.add(row[slot] if slot is not None else None)
        if not groups and not spec.group_by:
            # Global aggregate over zero rows still yields one row.
            groups[()] = [_Accumulator(item.func) for item in aggregate_items]
        # Output rows follow the select-list order, drawing group-key
        # values and aggregate results as the items dictate.
        output = []
        for key, accumulators in groups.items():
            key_by_column = dict(zip(spec.group_by, key))
            aggregate_results = iter(
                accumulator.result() for accumulator in accumulators
            )
            row = tuple(
                next(aggregate_results)
                if isinstance(item, Aggregate)
                else key_by_column[item]
                for item in spec.select_items
            )
            output.append(row)
        return output

    def _slot_in_output(self, column: OutputColumn) -> int:
        """Position of a group-by column in the aggregated output rows."""
        for index, item in enumerate(self.spec.select_items):
            if item == column:
                return index
        raise QueryError(
            f"ORDER BY {column} must appear in the select list of an "
            "aggregate query"
        )

    # -- ordering & projection ---------------------------------------------
    def _order(
        self, rows: list[Row], aggregated_slots: dict | None
    ) -> list[Row]:
        order_by: tuple[OrderItem, ...] = self.spec.order_by
        if not order_by:
            return rows
        rows = list(rows)
        for item in reversed(order_by):  # stable sort composes keys
            if aggregated_slots is not None:
                slot = aggregated_slots[item.column]
            else:
                slot = self._slot(item.column)
            rows.sort(key=_sort_key_for(slot), reverse=item.descending)
        return rows

    def _project(self, rows: list[Row]) -> list[Row]:
        spec = self.spec
        if not spec.select_items:
            return rows  # SELECT * (possibly with ORDER BY/LIMIT)
        slots = [self._slot(item) for item in spec.select_items]
        if slots == list(range(len(self._slots))):
            return rows
        return [tuple(row[slot] for slot in slots) for row in rows]
