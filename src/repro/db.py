"""The public facade: an embedded database with adaptive join reordering.

Typical use::

    from repro import AdaptiveConfig, Database, ReorderMode

    db = Database()
    db.create_table("Owner", [("id", "int"), ("name", "string")])
    db.create_index("Owner", "id")
    db.insert("Owner", [(1, "ada"), (2, "bob")])
    db.analyze()

    result = db.execute("SELECT o.name FROM Owner o WHERE o.id = 1")
    print(result.rows)

    adaptive = db.execute(sql, config=AdaptiveConfig(mode=ReorderMode.BOTH))
    static = db.execute(sql, config=AdaptiveConfig(mode=ReorderMode.NONE))
    print(static.stats.total_work / adaptive.stats.total_work)  # speedup
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.catalog.catalog import Catalog
from repro.catalog.statistics import StatisticsLevel
from repro.core.config import AdaptiveConfig, ReorderMode
from repro.core.controller import AdaptationController
from repro.core.events import EventKind
from repro.errors import SchemaError
from repro.executor.batch import BatchedPipelineExecutor
from repro.executor.parallel import ParallelExecutor, parallel_fallback_reason
from repro.executor.pipeline import PipelineExecutor
from repro.executor.postprocess import PostProcessor
from repro.obs.explain import render_explain_analyze
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import QueryObservability
from repro.obs.timeseries import EstimateSample
from repro.obs.trace import Tracer
from repro.optimizer.optimizer import StaticOptimizer
from repro.optimizer.plans import PipelinePlan
from repro.query.query import QuerySpec
from repro.query.sql.parser import parse_sql
from repro.robustness.faults import FaultInjector, FaultPlan
from repro.robustness.guard import SandboxedController
from repro.robustness.limits import ExecutionLimits
from repro.robustness.oracle import InvariantOracle
from repro.storage.counters import ThreadScopedMeter, WorkMeter
from repro.storage.schema import Column
from repro.storage.types import ColumnType

_TYPE_NAMES = {
    "int": ColumnType.INT,
    "integer": ColumnType.INT,
    "float": ColumnType.FLOAT,
    "double": ColumnType.FLOAT,
    "string": ColumnType.STRING,
    "str": ColumnType.STRING,
    "text": ColumnType.STRING,
}

ColumnSpec = Column | tuple[str, str]


def _as_column(spec: ColumnSpec) -> Column:
    if isinstance(spec, Column):
        return spec
    name, type_name = spec
    try:
        column_type = _TYPE_NAMES[type_name.lower()]
    except KeyError:
        raise SchemaError(
            f"unknown column type {type_name!r}; "
            f"expected one of {sorted(_TYPE_NAMES)}"
        ) from None
    return Column(name, column_type)


@dataclass(frozen=True)
class ExecutionStats:
    """Measurements of one query execution."""

    work: WorkMeter          # work-unit deltas attributable to this query
    wall_seconds: float
    inner_reorders: int
    driving_switches: int
    inner_checks: int
    driving_checks: int
    order_history: tuple[tuple[str, ...], ...]
    # Applied adaptation decisions with the cost-model justification.
    events: tuple = ()
    # Parallel partitioned execution only: work units on the critical path
    # (per wave, the slowest partition; plus coordinator and continuation
    # work). On a machine with enough cores this bounds wall-clock; it is
    # the deterministic analogue of parallel elapsed time, matching the
    # engine's work-unit-first measurement philosophy. None for serial runs.
    critical_path_work: float | None = None
    # How many worker processes executed partitions (1 = serial).
    workers: int = 1
    # Which execution engine ran the pipeline: "scalar", "batched",
    # "turbo", "vector", "fast", "vector-adaptive", "vector-adaptive+fast",
    # or "parallel" for partitioned runs.
    engine: str = "scalar"
    # Why the vectorized cascade did NOT run (first failed gate), when the
    # batched path fell back to a generic loop; None when it ran or was
    # never a candidate. For parallel runs this is the first gate reason
    # any partition (or the serial continuation) reported.
    vector_gate: str | None = None
    # Parallel partitioned execution only: the engine each partition ran,
    # in dispatch order, plus the serial continuation's engine when one
    # drained the scan. Empty for serial runs.
    worker_engines: tuple[str, ...] = ()

    @property
    def total_work(self) -> float:
        return self.work.total_units

    @property
    def execution_work(self) -> float:
        return self.work.execution_units

    @property
    def adaptation_work(self) -> float:
        return self.work.adaptation_units

    @property
    def total_switches(self) -> int:
        return self.inner_reorders + self.driving_switches

    @property
    def order_changed(self) -> bool:
        return self.total_switches > 0

    @property
    def degraded(self) -> bool:
        """True when the adaptive layer failed and was sandboxed off."""
        return any(event.kind is EventKind.DEGRADED for event in self.events)


@dataclass(frozen=True)
class QueryResult:
    """Result rows plus execution statistics and the (initial) plan."""

    rows: list[tuple[Any, ...]]
    stats: ExecutionStats
    plan: PipelinePlan
    final_order: tuple[str, ...]
    # The invariant oracle that shadowed this execution (debug mode only);
    # its RID-tuple multiset supports exact duplicate/missing comparisons.
    oracle: InvariantOracle | None = None
    # Observability artifacts (populated only when ``execute(obs=...)`` armed
    # them): the span trace, the metrics registry, and the time series of
    # monitor-estimate samples.
    trace: Tracer | None = None
    metrics: MetricsRegistry | None = None
    samples: tuple[EstimateSample, ...] = ()
    # Flight-recorder decision audit (``obs.audit`` armed): every reorder
    # check the controller ran, with the rank-rule inputs it saw
    # (:class:`~repro.obs.recorder.DecisionRecord`).
    decisions: tuple = ()

    def __len__(self) -> int:
        return len(self.rows)


class Database:
    """An embedded in-memory database exposing the reproduction's API."""

    def __init__(self, backend: str = "row") -> None:
        self.catalog = Catalog(backend=backend)
        # Persistent fork pool for parallel partitioned execution; built on
        # first use, invalidated when the catalog generation changes.
        self._parallel_pool = None
        # Serializes pool lifecycle + partitioned execution across server
        # threads: a concurrent warm-up may invalidate (close) the pool,
        # which must never happen while another thread is mid-wave on it.
        self._parallel_lock = threading.Lock()

    @property
    def backend_name(self) -> str:
        return self.catalog.backend.name

    def storage_stats(self) -> dict:
        """Per-table memory footprint of the active backend.

        Returns ``{"backend", "total_bytes", "table_count",
        "kernel_plan_bytes", "per_table"}`` where each per-table entry
        reports the approximate resident bytes of that table's storage
        (typed column arrays for ``columnar``, row tuples + cells for
        ``row``) — the observable half of the columnar backend's memory
        savings — plus ``kernel_bytes``, the numpy sidecar/group-kernel
        plan bytes currently materialized on that table's indexes. The
        kernel gauge makes pre-fork warm-up observable: after
        ``warm_kernel_plan`` (or a first vectorized run) it is non-zero,
        and parallel workers COW-share exactly those bytes.
        """
        from repro.storage.columnar import ColumnarIndex, table_memory_footprint

        backend = self.backend_name
        per_table = []
        total = 0
        kernel_total = 0
        for name in self.catalog.table_names():
            footprint = table_memory_footprint(self.catalog.table(name))
            total += footprint["bytes"]
            kernel_bytes = sum(
                index.kernel_footprint()
                for index in self.catalog._indexes.get(name, {}).values()
                if isinstance(index, ColumnarIndex)
            )
            kernel_total += kernel_bytes
            per_table.append(
                {
                    "table": name,
                    "backend": backend,
                    "rows": footprint["rows"],
                    "bytes": footprint["bytes"],
                    "kernel_bytes": kernel_bytes,
                }
            )
        return {
            "backend": backend,
            "total_bytes": total,
            "table_count": len(per_table),
            "kernel_plan_bytes": kernel_total,
            "per_table": per_table,
        }

    # -- schema & data ----------------------------------------------------
    def create_table(self, name: str, columns: Sequence[ColumnSpec]) -> None:
        self.catalog.create_table(name, [_as_column(spec) for spec in columns])

    def create_index(self, table: str, column: str) -> None:
        self.catalog.create_index(table, column)

    def insert(self, table: str, rows: Iterable[Sequence[Any]]) -> int:
        return self.catalog.insert_many(table, rows)

    def analyze(
        self,
        table: str | None = None,
        level: StatisticsLevel = StatisticsLevel.BASIC,
    ) -> None:
        """Collect optimizer statistics (RUNSTATS equivalent).

        Levels (see :class:`~repro.catalog.statistics.StatisticsLevel`):
        ``CARDINALITY`` — table sizes only (the paper's main setting);
        ``BASIC`` — plus per-column ndv/min/max; ``DETAILED`` — plus
        frequent values (the Sec 5.3 "sophisticated statistics").
        """
        self.catalog.analyze(table, level)

    # -- querying -----------------------------------------------------------
    def parse(self, sql: str) -> QuerySpec:
        return parse_sql(sql)

    def plan(self, query: str | QuerySpec) -> PipelinePlan:
        spec = self.parse(query) if isinstance(query, str) else query
        return StaticOptimizer(self.catalog).optimize(spec)

    def explain(self, query: str | QuerySpec) -> str:
        return self.plan(query).explain()

    def explain_analyze(
        self,
        query: str | QuerySpec | PipelinePlan,
        config: AdaptiveConfig | None = None,
        *,
        limits: ExecutionLimits | None = None,
        obs: QueryObservability | None = None,
    ) -> str:
        """Run *query* and report what the adaptive run time actually did.

        Arms full observability (tracer + metrics + estimate sampler) for
        the execution and renders the
        :func:`~repro.obs.explain.render_explain_analyze` report: the
        optimizer's plan, per-leg actual row flow vs. the optimizer's and
        monitors' estimates, the adaptation-event timeline, the work-unit
        breakdown, and budget/fault summaries.
        """
        if obs is None:
            check = (config or AdaptiveConfig()).check_frequency
            obs = QueryObservability.armed(sample_every=check)
        result = self.execute(query, config, limits=limits, obs=obs)
        return render_explain_analyze(result, limits)

    def execute(
        self,
        query: str | QuerySpec | PipelinePlan,
        config: AdaptiveConfig | None = None,
        *,
        limits: ExecutionLimits | None = None,
        fault_plan: FaultPlan | FaultInjector | None = None,
        oracle: InvariantOracle | bool | None = None,
        sandbox: bool = True,
        obs: QueryObservability | bool | None = None,
    ) -> QueryResult:
        """Run *query* under the given adaptive configuration.

        The default configuration enables both inner-leg reordering and
        driving-leg switching (the paper's full technique); pass
        ``AdaptiveConfig(mode=ReorderMode.NONE)`` for the static baseline.

        Robustness knobs:

        * *limits* — per-query budgets (rows, work units, deadline,
          cancellation); hitting one raises
          :class:`~repro.errors.BudgetExceeded` with partial-progress
          stats;
        * *fault_plan* — arm deterministic fault injection for this one
          execution (chaos testing); a plan builds a fresh injector, an
          injector is used as-is so callers can inspect its fire counts;
        * *oracle* — ``True`` (or an :class:`InvariantOracle`) shadows
          execution with debug-mode invariant checks: depleted-state
          preconditions and RID-tuple duplicate detection; the oracle is
          returned on ``QueryResult.oracle``;
        * *sandbox* — when True (the default), exceptions from the
          adaptive layer degrade the query to its current order (recorded
          as a ``DEGRADED`` event) instead of aborting it; pass False to
          let them propagate for debugging.

        Observability:

        * *obs* — ``True`` arms a full :class:`QueryObservability` bundle
          (tracer + metrics registry + estimate sampler at the config's
          check frequency); a pre-built bundle is used as-is. The trace,
          registry, and samples come back on ``QueryResult.trace`` /
          ``.metrics`` / ``.samples``. With *obs* unset the engine pays
          one ``None`` check per instrumentation site and records nothing.
        """
        if config is None:
            config = AdaptiveConfig(mode=ReorderMode.BOTH)
        if obs is True:
            obs = QueryObservability.armed(sample_every=config.check_frequency)
        elif obs is False:
            obs = None
        tracer = obs.tracer if obs is not None else None
        query_span = (
            tracer.begin(
                "query",
                kind="phase",
                sql=query if isinstance(query, str) else None,
                mode=config.mode.value,
            )
            if tracer is not None
            else None
        )
        try:
            if isinstance(query, PipelinePlan):
                plan = query
            else:
                spec = query
                if isinstance(query, str):
                    if tracer is not None:
                        with tracer.span("parse"):
                            spec = self.parse(query)
                    else:
                        spec = self.parse(query)
                if tracer is not None:
                    with tracer.span("optimize") as span:
                        plan = StaticOptimizer(self.catalog).optimize(spec)
                        span.attrs["order"] = plan.order
                        span.attrs["estimated_cost"] = plan.estimated_cost
                else:
                    plan = StaticOptimizer(self.catalog).optimize(spec)
            return self._execute_plan(
                plan,
                config,
                limits=limits,
                fault_plan=fault_plan,
                oracle=oracle,
                sandbox=sandbox,
                obs=obs,
                query_span=query_span,
            )
        finally:
            if tracer is not None:
                tracer.close_all()

    def _execute_plan(
        self,
        plan: PipelinePlan,
        config: AdaptiveConfig,
        *,
        limits: ExecutionLimits | None,
        fault_plan: FaultPlan | FaultInjector | None,
        oracle: InvariantOracle | bool | None,
        sandbox: bool,
        obs: QueryObservability | None,
        query_span,
    ) -> QueryResult:
        tracer = obs.tracer if obs is not None else None
        if oracle is True:
            oracle = InvariantOracle()
        elif oracle is False:
            oracle = None
        if config.workers > 1:
            reason = parallel_fallback_reason(
                plan,
                config,
                limits=limits,
                fault_plan=fault_plan,
                oracle=oracle,
            )
            if reason is None:
                before = self.catalog.meter.snapshot()
                outcome = ParallelExecutor(
                    self, self.catalog, plan, config, obs, limits=limits
                ).execute()
                if isinstance(outcome, str):
                    reason = outcome
                else:
                    return self._finish_parallel(
                        plan, outcome, before, obs, query_span
                    )
            if tracer is not None:
                tracer.event("parallel-fallback", reason=reason)
        controller = (
            AdaptationController(config) if config.mode.monitors else None
        )
        if controller is not None and sandbox:
            controller = SandboxedController(controller)
        executor_cls = (
            BatchedPipelineExecutor if config.batched else PipelineExecutor
        )
        executor = executor_cls(
            plan,
            self.catalog,
            config,
            controller,
            limits=limits,
            oracle=oracle,
            obs=obs,
        )
        if controller is not None:
            controller.attach(executor)
        injector: FaultInjector | None = None
        if isinstance(fault_plan, FaultPlan):
            injector = fault_plan.build()
        elif fault_plan is not None:
            injector = fault_plan
        before = self.catalog.meter.snapshot()
        execute_span = (
            tracer.begin("execute", kind="phase", order=plan.order)
            if tracer is not None
            else None
        )
        try:
            if injector is not None:
                self.catalog.install_faults(injector)
            rows = executor.run_to_completion()
        finally:
            if injector is not None:
                self.catalog.clear_faults()
            if obs is not None:
                obs.finish(executor)
            if execute_span is not None:
                tracer.end(
                    execute_span,
                    rows_emitted=executor.rows_emitted,
                    driving_rows=executor.driving_rows_total,
                    work_units=executor.work_units,
                    final_order=tuple(executor.order),
                )
        if plan.query.has_post_processing:
            # Blocking stage above the pipeline (aggregation / ORDER BY /
            # LIMIT, Sec 3.1); insensitive to run-time reordering.
            if tracer is not None:
                with tracer.span("post-process"):
                    rows = PostProcessor(plan.query, plan.projection).process(rows)
            else:
                rows = PostProcessor(plan.query, plan.projection).process(rows)
        stats = ExecutionStats(
            work=self.catalog.meter - before,
            wall_seconds=executor.wall_seconds,
            inner_reorders=executor.inner_reorders,
            driving_switches=executor.driving_switches,
            inner_checks=controller.inner_checks if controller else 0,
            driving_checks=controller.driving_checks if controller else 0,
            order_history=tuple(executor.order_history),
            events=tuple(executor.events),
            engine=executor.engine_used,
            vector_gate=executor.vector_gate_reason,
        )
        if query_span is not None:
            tracer.end(
                query_span,
                rows=len(rows),
                work_units=stats.total_work,
                switches=stats.total_switches,
            )
        return QueryResult(
            rows=rows,
            stats=stats,
            plan=plan,
            final_order=tuple(executor.order),
            oracle=oracle,
            trace=tracer,
            metrics=obs.metrics if obs is not None else None,
            samples=(
                tuple(obs.sampler.samples)
                if obs is not None and obs.sampler is not None
                else ()
            ),
            decisions=(
                tuple(obs.audit.decisions)
                if obs is not None and obs.audit is not None
                else ()
            ),
        )

    def _finish_parallel(
        self,
        plan: PipelinePlan,
        outcome,
        before: WorkMeter,
        obs: QueryObservability | None,
        query_span,
    ) -> QueryResult:
        """Assemble a QueryResult from a partitioned execution's outcome."""
        tracer = obs.tracer if obs is not None else None
        rows = outcome.rows
        if plan.query.has_post_processing:
            if tracer is not None:
                with tracer.span("post-process"):
                    rows = PostProcessor(plan.query, plan.projection).process(rows)
            else:
                rows = PostProcessor(plan.query, plan.projection).process(rows)
        stats = ExecutionStats(
            work=self.catalog.meter - before,
            wall_seconds=outcome.wall_seconds,
            inner_reorders=outcome.inner_reorders,
            driving_switches=outcome.driving_switches,
            inner_checks=outcome.inner_checks,
            driving_checks=outcome.driving_checks,
            order_history=tuple(outcome.order_history),
            events=tuple(outcome.events),
            critical_path_work=outcome.critical_path_units,
            workers=outcome.workers_used,
            engine="parallel",
            vector_gate=outcome.vector_gate,
            worker_engines=tuple(outcome.worker_engines),
        )
        if query_span is not None:
            tracer.end(
                query_span,
                rows=len(rows),
                work_units=stats.total_work,
                switches=stats.total_switches,
                workers=outcome.workers_used,
                partitions=outcome.partitions_run,
            )
        return QueryResult(
            rows=rows,
            stats=stats,
            plan=plan,
            final_order=tuple(outcome.final_order),
            oracle=None,
            trace=tracer,
            metrics=obs.metrics if obs is not None else None,
            samples=(
                tuple(obs.sampler.samples)
                if obs is not None and obs.sampler is not None
                else ()
            ),
            decisions=(
                tuple(obs.audit.decisions)
                if obs is not None and obs.audit is not None
                else ()
            ),
        )

    def enable_concurrent_metering(self) -> ThreadScopedMeter:
        """Route work-unit charges to per-thread meters for serving.

        The catalog and every table share one :class:`WorkMeter`, so
        concurrent executions on worker threads would interleave charges
        and corrupt per-query ``meter - before`` deltas. This swaps the
        shared meter for a :class:`ThreadScopedMeter` facade (idempotent;
        returns the installed facade): the query server wraps each
        execution in ``meter.scoped()`` and gets exact per-query work
        accounting, while unscoped threads keep charging the base meter.
        """
        meter = self.catalog.meter
        if isinstance(meter, ThreadScopedMeter):
            return meter
        scoped = ThreadScopedMeter(meter)
        self.catalog.meter = scoped
        for name in self.catalog.table_names():
            self.catalog.table(name).meter = scoped
        return scoped

    def close(self) -> None:
        """Release resources held by this database (the worker pool).

        Idempotent, and guaranteed to reap forked parallel workers even
        when the previous query raised mid-wave (the pool additionally
        carries a GC finalizer, so an abandoned Database cannot leak
        children — but deterministic cleanup should call close()).
        """
        lock = getattr(self, "_parallel_lock", None)
        if lock is not None:
            lock.acquire()
        try:
            pool = getattr(self, "_parallel_pool", None)
            if pool is not None:
                pool.close()
                self._parallel_pool = None
        finally:
            if lock is not None:
                lock.release()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
