"""Unit and property tests for repro.storage.cursor."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.cursor import (
    IndexScanCursor,
    KeyRange,
    ScanOrder,
    TableScanCursor,
    normalize_ranges,
)
from repro.storage.index import SortedIndex
from repro.storage.schema import Column, TableSchema
from repro.storage.table import HeapTable
from repro.storage.types import ColumnType


def make_table(values):
    schema = TableSchema(
        "t", [Column("k", ColumnType.INT), Column("v", ColumnType.STRING)]
    )
    table = HeapTable(schema)
    table.insert_many([(value, f"v{i}") for i, value in enumerate(values)])
    return table


class TestKeyRange:
    def test_equal(self):
        r = KeyRange.equal(5)
        assert r.is_equality()
        assert (r.low, r.high) == (5, 5)

    def test_non_equality(self):
        assert not KeyRange(low=1, high=2).is_equality()
        assert not KeyRange(low=1).is_equality()
        assert not KeyRange(low=1, high=1, high_inclusive=False).is_equality()

    def test_normalize_sorts_by_low(self):
        ranges = [KeyRange.equal(5), KeyRange.equal(2), KeyRange(low=None, high=1)]
        normalized = normalize_ranges(ranges)
        assert normalized[0].low is None
        assert normalized[1].low == 2
        assert normalized[2].low == 5


class TestTableScanCursor:
    def test_full_scan(self):
        table = make_table([10, 20, 30])
        cursor = TableScanCursor(table)
        assert [rid for rid, _ in cursor] == [0, 1, 2]
        assert cursor.exhausted

    def test_last_position_tracks(self):
        table = make_table([10, 20])
        cursor = TableScanCursor(table)
        next(cursor)
        assert cursor.last_position == (0,)

    def test_start_after(self):
        table = make_table([10, 20, 30])
        cursor = TableScanCursor(table, start_after=(0,))
        assert [rid for rid, _ in cursor] == [1, 2]

    def test_empty_table(self):
        cursor = TableScanCursor(make_table([]))
        assert list(cursor) == []


class TestIndexScanCursor:
    def make_cursor(self, values, ranges=None, start_after=None):
        table = make_table(values)
        index = SortedIndex("ix", table, "k")
        return IndexScanCursor(index, ranges, start_after=start_after)

    def test_key_order(self):
        cursor = self.make_cursor([3, 1, 2])
        rows = [row[0] for _, row in cursor]
        assert rows == [1, 2, 3]

    def test_equality_range(self):
        cursor = self.make_cursor([1, 2, 2, 3], [KeyRange.equal(2)])
        assert [rid for rid, _ in cursor] == [1, 2]

    def test_multi_range_in_list_order(self):
        # IN-list: ranges are walked in sorted order so positions ascend.
        cursor = self.make_cursor(
            [5, 1, 5, 3], [KeyRange.equal(5), KeyRange.equal(1)]
        )
        keys = [row[0] for _, row in cursor]
        assert keys == [1, 5, 5]

    def test_resume_from_position(self):
        cursor = self.make_cursor(
            [1, 2, 2, 3], [KeyRange(low=1, high=3)], start_after=(2, 1)
        )
        assert [(row[0], rid) for rid, row in cursor] == [(2, 2), (3, 3)]

    def test_resume_skips_finished_ranges(self):
        cursor = self.make_cursor(
            [1, 5], [KeyRange.equal(1), KeyRange.equal(5)], start_after=(1, 0)
        )
        assert [row[0] for _, row in cursor] == [5]

    def test_at_key_boundary_initially_true(self):
        cursor = self.make_cursor([1, 2])
        assert cursor.at_key_boundary()

    def test_at_key_boundary_within_group(self):
        cursor = self.make_cursor([2, 2, 3])
        next(cursor)
        assert not cursor.at_key_boundary()
        next(cursor)
        assert cursor.at_key_boundary()

    def test_peek_does_not_lose_rows(self):
        cursor = self.make_cursor([1, 2, 3])
        next(cursor)
        cursor.at_key_boundary()  # peeks and buffers
        remaining = [row[0] for _, row in cursor]
        assert remaining == [2, 3]

    def test_boundary_at_end(self):
        cursor = self.make_cursor([1])
        next(cursor)
        assert cursor.at_key_boundary()
        assert cursor.exhausted

    def test_scans_multiple_keys(self):
        assert not self.make_cursor([1], [KeyRange.equal(1)]).scans_multiple_keys()
        assert self.make_cursor([1], [KeyRange(low=0, high=9)]).scans_multiple_keys()
        assert self.make_cursor(
            [1], [KeyRange.equal(1), KeyRange.equal(2)]
        ).scans_multiple_keys()


class TestScanOrder:
    def test_rid_order(self):
        table = make_table([7])
        order = ScanOrder(table)
        assert order.position_of(3, (7, "x")) == (3,)
        assert not order.is_index_order

    def test_index_order(self):
        table = make_table([7])
        index = SortedIndex("ix", table, "k")
        order = ScanOrder(table, index)
        assert order.position_of(3, (7, "x")) == (7, 3)
        assert order.is_index_order

    def test_describe(self):
        table = make_table([1])
        assert "RID order" in ScanOrder(table).describe()


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(st.integers(min_value=0, max_value=9), max_size=25),
    low=st.integers(min_value=0, max_value=9),
    span=st.integers(min_value=0, max_value=9),
)
def test_positions_strictly_increase(values, low, span):
    """Property: an index-scan cursor's position is strictly increasing."""
    table = make_table(values)
    index = SortedIndex("ix", table, "k")
    cursor = IndexScanCursor(index, [KeyRange(low=low, high=low + span)])
    previous = None
    for rid, row in cursor:
        position = cursor.order.position_of(rid, row)
        if previous is not None:
            assert position > previous
        previous = position


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(st.integers(min_value=0, max_value=9), max_size=25),
    cut=st.integers(min_value=0, max_value=24),
)
def test_resume_is_exact_suffix(values, cut):
    """Property: stopping and resuming a scan loses and repeats nothing."""
    table = make_table(values)
    index = SortedIndex("ix", table, "k")
    full = [(rid, row) for rid, row in IndexScanCursor(index)]
    cursor = IndexScanCursor(index)
    consumed = []
    for _ in range(min(cut, len(full))):
        consumed.append(next(cursor))
    resumed = IndexScanCursor(index, start_after=cursor.last_position)
    assert consumed + list(resumed) == full
