"""E5 — Fig 9: reordering only driving legs, per-template normalized time.

Paper shape: driving-leg switching is the aggressive mechanism — in the
templates where it fires, average elapsed time drops below ~50-75% of the
static plan; one template shows a slight regression (bad access path on the
new driving leg, Sec 5.3) and one template sees no driving change at all.
"""

from conftest import emit_report

from repro.bench import template_ratio_experiment
from repro.core.config import ReorderMode


def test_fig9_driving_only(benchmark, dmv_db, workload):
    result = benchmark.pedantic(
        lambda: template_ratio_experiment(
            dmv_db, workload, ReorderMode.DRIVING_ONLY
        ),
        rounds=1,
        iterations=1,
    )
    emit_report(
        "fig9_driving",
        result.report("Fig 9 — driving-leg-only reordering (% of no-reorder time)"),
    )
    ratios = [all_ratio for all_ratio, _, _ in result.ratios.values()]
    # At least one template must show a large win from driving switches.
    assert min(ratios) < 0.80, f"expected a template below 80%, got {ratios}"
    # No template should catastrophically regress.
    assert max(ratios) < 1.15, f"template regression too large: {ratios}"
