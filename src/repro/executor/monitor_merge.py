"""Merging per-worker monitor state into coordinator estimates.

Parallel partitioned execution (``AdaptiveConfig.workers > 1``) runs each
driving-scan partition in its own worker process. Workers monitor their
partition locally; between waves the coordinator needs a *global* view of
the monitored selectivities to decide driving-leg switches. This module
defines the picklable snapshots workers ship back and the merge that folds
them into a coordinator-side ("host") pipeline's monitors.

The merge relies on the windowed estimators being ratios of sums: a
monitored quantity like ``JC = sum_output / samples`` (Eq 11) over the
union of the workers' windows equals the ratio of the summed numerators
and denominators. Each worker's window is injected into the host monitor
as **one** :class:`~repro.core.monitor.AggregatedWindow` aggregate, so the
host's estimate is exactly the sample-weighted combination of the worker
windows — the same value a single window holding all the workers' samples
would report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.monitor import AggregatedWindow, DrivingMonitor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.executor.pipeline import PipelineExecutor


@dataclass(frozen=True)
class LegWindowSnapshot:
    """One leg's windowed probe counters at the end of a partition run."""

    samples: int              # window fill (min(lifetime, w))
    sum_matches: int
    sum_output: int
    sum_work: float
    lifetime: int             # lifetime incoming rows (warmup gating)
    # Per-predicate-slot [evaluated, passed] counts (local selectivities).
    local_counts: tuple[tuple[int, int], ...] = ()
    # Deferred chunk fold (LegMonitor.defer_chunk accumulator) captured
    # before the worker flushed it — non-zero only when a snapshot lands
    # inside a driving chunk. Re-applied host-side in the serial fold
    # order: window contents first, then this aggregate. All work-cost
    # constants are exact binary fractions, so the regrouped float sums
    # are bit-identical to a serial flush.
    pending: tuple[int, int, int, float] = (0, 0, 0, 0.0)


@dataclass(frozen=True)
class DrivingSnapshot:
    """The driving leg's scan-progress counters for one partition."""

    entries_scanned: int
    rows_survived: int
    recent_scanned: int
    recent_survived: int


@dataclass(frozen=True)
class MonitorSnapshot:
    """Everything one worker's monitors learned about its partition."""

    legs: dict[str, LegWindowSnapshot] = field(default_factory=dict)
    driving: DrivingSnapshot | None = None


def snapshot_executor(pipeline: "PipelineExecutor") -> MonitorSnapshot:
    """Capture the pipeline's monitor state as a picklable snapshot."""
    legs: dict[str, LegWindowSnapshot] = {}
    for position, alias in enumerate(pipeline.order):
        leg = pipeline.legs[alias]
        if position == 0:
            continue
        window = leg.monitor.window
        legs[alias] = LegWindowSnapshot(
            samples=len(window),
            sum_matches=window.sum_matches,
            sum_output=window.sum_output,
            sum_work=window.sum_work,
            lifetime=window.lifetime_samples,
            local_counts=tuple(
                (counts[0], counts[1]) for counts in leg.local_counts
            ),
            pending=leg.monitor.pending_chunk(),
        )
    driving = None
    monitor = pipeline.legs[pipeline.order[0]].driving_monitor
    if monitor is not None:
        driving = DrivingSnapshot(
            entries_scanned=monitor.entries_scanned,
            rows_survived=monitor.rows_survived,
            recent_scanned=monitor._recent_scanned,
            recent_survived=monitor._recent_survived,
        )
    return MonitorSnapshot(legs=legs, driving=driving)


def merge_snapshots(snapshots: list[MonitorSnapshot]) -> MonitorSnapshot:
    """Combine per-worker snapshots by summing their counters."""
    leg_totals: dict[str, list] = {}
    drv = [0, 0, 0, 0]
    saw_driving = False
    for snapshot in snapshots:
        for alias, leg in snapshot.legs.items():
            totals = leg_totals.setdefault(
                alias, [0, 0, 0, 0.0, 0, None, [0, 0, 0, 0.0]]
            )
            totals[0] += leg.samples
            totals[1] += leg.sum_matches
            totals[2] += leg.sum_output
            totals[3] += leg.sum_work
            totals[4] += leg.lifetime
            if totals[5] is None:
                totals[5] = [list(pair) for pair in leg.local_counts]
            else:
                for slot, (evaluated, passed) in enumerate(leg.local_counts):
                    totals[5][slot][0] += evaluated
                    totals[5][slot][1] += passed
            pending = totals[6]
            pending[0] += leg.pending[0]
            pending[1] += leg.pending[1]
            pending[2] += leg.pending[2]
            pending[3] += leg.pending[3]
        if snapshot.driving is not None:
            saw_driving = True
            drv[0] += snapshot.driving.entries_scanned
            drv[1] += snapshot.driving.rows_survived
            drv[2] += snapshot.driving.recent_scanned
            drv[3] += snapshot.driving.recent_survived
    legs = {
        alias: LegWindowSnapshot(
            samples=totals[0],
            sum_matches=totals[1],
            sum_output=totals[2],
            sum_work=totals[3],
            lifetime=totals[4],
            local_counts=tuple(
                (pair[0], pair[1]) for pair in (totals[5] or ())
            ),
            pending=(
                totals[6][0], totals[6][1], totals[6][2], totals[6][3]
            ),
        )
        for alias, totals in leg_totals.items()
    }
    driving = (
        DrivingSnapshot(
            entries_scanned=drv[0],
            rows_survived=drv[1],
            recent_scanned=drv[2],
            recent_survived=drv[3],
        )
        if saw_driving
        else None
    )
    return MonitorSnapshot(legs=legs, driving=driving)


def inject_into_host(
    host: "PipelineExecutor", merged: MonitorSnapshot
) -> None:
    """Load *merged* monitor state into the host pipeline's monitors.

    The host pipeline exists only to carry coordinator-side estimates (it
    never executes rows): each leg's window is replaced by an
    :class:`AggregatedWindow` holding the merged counters as one aggregate,
    so every ratio estimator reports the sample-weighted combination of
    the worker windows. The driving monitor's scan counters are set
    directly (its ring is only consulted through the recent sums).
    """
    for alias, leg_snapshot in merged.legs.items():
        leg = host.legs.get(alias)
        if leg is None:
            continue
        window = AggregatedWindow(leg.monitor.window.size)
        if leg_snapshot.samples > 0:
            window.observe_chunk(
                leg_snapshot.samples,
                leg_snapshot.sum_matches,
                leg_snapshot.sum_output,
                leg_snapshot.sum_work,
            )
        window.lifetime_samples = leg_snapshot.lifetime
        pending = leg_snapshot.pending
        if pending[0] > 0:
            # Serial fold order: the window contents entered first, the
            # deferred chunk fold flushes after — the same single
            # observe_chunk a serial LegMonitor.flush_chunk would apply.
            window.observe_chunk(
                pending[0], pending[1], pending[2], pending[3]
            )
            window.lifetime_samples = leg_snapshot.lifetime + pending[0]
        leg.monitor.window = window
        if leg_snapshot.local_counts and len(leg_snapshot.local_counts) == len(
            leg.local_counts
        ):
            for slot, (evaluated, passed) in enumerate(leg_snapshot.local_counts):
                leg.local_counts[slot][0] = evaluated
                leg.local_counts[slot][1] = passed
    if merged.driving is not None:
        driving_leg = host.legs[host.order[0]]
        monitor = DrivingMonitor(host.config.history_window)
        monitor.entries_scanned = merged.driving.entries_scanned
        monitor.rows_survived = merged.driving.rows_survived
        monitor._recent_scanned = merged.driving.recent_scanned
        monitor._recent_survived = merged.driving.recent_survived
        driving_leg.driving_monitor = monitor
        # If the host has not opened its driving cursor yet (the serial
        # continuation injects before running), the open must consume this
        # monitor instead of clobbering it with a fresh one.
        driving_leg.pending_driving_monitor = monitor
