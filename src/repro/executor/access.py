"""Run-time access operators: one :class:`RuntimeLeg` per table in the plan.

A leg can serve either role of the pipeline at any time:

* **driving** — it owns a resumable scan cursor built from its
  :class:`~repro.optimizer.plans.DrivingSpec` (or resumed from a frozen
  scan after a switch-back, Sec 4.2);
* **inner** — it is probed once per incoming outer row through a
  :class:`ProbeConfig` compiled for the *current* leg order: the most
  selective available join predicate with an index becomes the access
  predicate, everything else (other join predicates, all local predicates,
  and the duplicate-prevention positional predicate) is checked residually.

Probe configs are compiled when the order changes, not per row — this is
what keeps the paper's approach cheaper than row routing: adaptation state
lives in the pipeline, and each row only pays the predicates themselves.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro.catalog.catalog import Catalog
from repro.core.config import HashProbePolicy
from repro.core.monitor import DrivingMonitor, LegMonitor
from repro.errors import ExecutionError
from repro.executor.hashprobe import HashProbeTable
from repro.robustness.faults import DEFAULT_RETRY_POLICY, RetryPolicy, call_with_retry
from repro.optimizer.plans import DrivingKind, PlanLeg
from repro.query.joingraph import JoinPredicate
from repro.query.predicates import PositionalPredicate
from repro.storage.compiled import compile_row_test
from repro.storage.counters import (
    INDEX_DESCEND_COST,
    INDEX_ENTRY_COST,
    PREDICATE_EVAL_COST,
    ROW_FETCH_COST,
)
from repro.storage.cursor import IndexScanCursor, ScanPartition, TableScanCursor
from repro.storage.index import SortedIndex
from repro.storage.table import Row

Binding = dict[str, Row]
Cursor = TableScanCursor | IndexScanCursor


@dataclass(slots=True)
class ProbeConfig:
    """Compiled probe strategy for a leg at its current pipeline position."""

    access_index: SortedIndex | None
    access_predicate: JoinPredicate | None
    # Extracts the probe key from the outer binding (None for scan probes).
    key_getter: Callable[[Binding], Any] | None
    # Residual equality join predicates: (outer getter, our column slot).
    residual_joins: tuple[tuple[Callable[[Binding], Any], int], ...]
    # Which join predicates are available at this position (for JC model).
    available_predicates: tuple[JoinPredicate, ...]
    # Sec 6 extension: probe via an in-memory hash table on this column
    # instead of an index (built lazily on first probe).
    hash_column: str | None = None
    # Outer-side source of the probe key as (alias, row slot) — what
    # key_getter reads. The batched turbo path uses these to hoist
    # constant lookups out of its per-row loop. None for scan probes.
    key_alias: str | None = None
    key_slot: int | None = None
    # Outer-side (alias, row slot) of each residual join, parallel to
    # residual_joins.
    residual_sources: tuple[tuple[str, int], ...] = ()


@dataclass(slots=True)
class PreparedProbe:
    """A resolved probe whose accounting has not been applied yet.

    ``probe_batch`` does the physical work (index descent, heap fetches,
    predicate evaluation) ahead of time with **no observable side effects**;
    everything the scalar :meth:`RuntimeLeg.probe` would have touched — the
    work meter, the leg monitor, the per-predicate local counts, the
    observability hook — is captured here and replayed by
    :meth:`RuntimeLeg.replay_prepared` at the exact logical point the scalar
    path would have probed. ``work`` is the probe's execution-unit total
    (``descends*4 + entries*1 + fetches*2 + evals*0.25``), which equals the
    scalar path's before/after ``execution_units`` delta exactly (all
    weights are multiples of 0.25, far below float precision limits).
    """

    descends: int
    entries: int
    fetches: int
    evals: int
    index_matches: int
    matches: list[Row]
    work: float
    # Per-local-predicate (evaluated, passed) deltas, parallel to
    # local_tests; None when nothing was counted (monitoring off or no
    # local predicates).
    local_deltas: tuple[tuple[int, int], ...] | None


class RuntimeLeg:
    """Run-time state of one table in the pipeline."""

    __slots__ = (
        "plan_leg",
        "alias",
        "table",
        "schema",
        "meter",
        "indexes",
        "monitoring_enabled",
        "monitor",
        "driving_monitor",
        "pending_driving_monitor",
        "positional",
        "_history_window",
        "local_tests",
        "local_counts",
        "probe_config",
        "probe_epoch",
        "incoming_since_check",
        "hash_policy",
        "retry_policy",
        "collect_rids",
        "match_rids",
        "obs",
        "degrade_hook",
        "monitor_failure",
        "_hash_tables",
        "_slpi_metadata",
        "_turbo_groups",
        "_turbo_groups_gen",
        "_turbo_rows_seen",
        "_fast_groups",
        "_fast_scan_group",
        "_fast_groups_gen",
        "_fast_probe_records",
    )

    def __init__(
        self,
        plan_leg: PlanLeg,
        catalog: Catalog,
        history_window: int,
        monitoring_enabled: bool,
        hash_policy: HashProbePolicy = HashProbePolicy.OFF,
        aggregated_monitor: bool = False,
    ) -> None:
        self.plan_leg = plan_leg
        self.alias = plan_leg.alias
        self.table = catalog.table(plan_leg.table_name)
        self.schema = self.table.schema
        self.meter = self.table.meter
        self.indexes = catalog.indexes_of(plan_leg.table_name)
        self.monitoring_enabled = monitoring_enabled
        self.monitor = LegMonitor(history_window, aggregated=aggregated_monitor)
        self.driving_monitor: DrivingMonitor | None = None
        # One-shot pre-seeded scan monitor: when a coordinator injects
        # merged worker statistics *before* the executor opens its driving
        # cursor (the parallel serial continuation), the open consumes this
        # instead of starting a fresh monitor — otherwise the merged scan
        # counters would be clobbered and the continuation's first driving
        # check would see an unwarmed S_LPR.
        self.pending_driving_monitor: DrivingMonitor | None = None
        self.positional: PositionalPredicate | None = None
        self._history_window = history_window
        # (predicate, compiled test) pairs; predicate objects kept for
        # per-predicate monitoring and dynamic access-path selection. On
        # the columnar backend each test is the expression-compiled closure
        # when the tree is a shape the mini-compiler handles; the row
        # backend stays on the interpreter's bind() so it remains the
        # unmodified reference oracle. Either way the test carries its
        # source predicate as ``test.predicate`` so index-level group
        # kernels can recover the tree for vectorization.
        compiled_backend = (
            getattr(self.table, "backend_name", "row") == "columnar"
        )
        self.local_tests = []
        for predicate in plan_leg.local_predicates:
            test = (
                compile_row_test(predicate, self.schema)
                if compiled_backend
                else None
            )
            if test is None:
                test = predicate.bind(self.schema)
            try:
                test.predicate = predicate
            except AttributeError:  # non-function callable; still usable
                pass
            self.local_tests.append((predicate, test))
        # Per-local-predicate (evaluated, passed) counters for the
        # dynamic-access-path extension.
        self.local_counts = [[0, 0] for _ in self.local_tests]
        self.probe_config: ProbeConfig | None = None
        # Bumped on every compile_probe; the probe cache flushes when it
        # observes a new epoch (reorders and driving switches change what a
        # probe means — access predicate, residual set, positional filter).
        self.probe_epoch = 0
        self.incoming_since_check = 0
        self.hash_policy = hash_policy
        # Transient-fault retry (only consulted while a fault injector is
        # armed; the production path never pays the wrapper).
        self.retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY
        # Oracle mode: probe() additionally records the RIDs of its matches
        # (aligned with the returned rows) in self.match_rids.
        self.collect_rids = False
        self.match_rids: list[int] = []
        # Observability bundle (set by the executor); every hook site below
        # pays one None check when observability is off.
        self.obs = None
        # Monitoring is advisory: if it raises, it is disabled for this leg
        # and the failure reported through degrade_hook (set by the
        # executor) instead of aborting the query.
        self.degrade_hook: Callable[[str, BaseException], None] | None = None
        self.monitor_failure: BaseException | None = None
        # Hash builds are cached per access column: reorders and driving
        # switches that keep the same access column reuse the build.
        self._hash_tables: dict[str, HashProbeTable] = {}
        # Cached index-metadata S_LPI of the driving spec (see
        # RuntimeModelBuilder._index_selectivity); invalidated when the
        # dynamic access-path extension replaces the spec.
        self._slpi_metadata: float | None = None
        # Turbo-path locally-filtered candidate groups (see
        # _turbo_filtered); rebuilt when the generation tuple moves.
        self._turbo_groups: Any = None
        self._turbo_groups_gen: tuple | None = None
        # Candidate rows the turbo path has filtered inline so far — the
        # break-even gauge for building _turbo_groups.
        self._turbo_rows_seen = 0
        # Fast monitored path: lazily memoized per-key candidate groups
        # (rows passing locals + positional, with exact scalar eval counts
        # and per-predicate deltas); see probe_batch_fast.
        self._fast_groups: dict = {}
        self._fast_scan_group: tuple | None = None
        self._fast_groups_gen: tuple | None = None
        # key -> (assembled probe record, entries, fetches, evals) for the
        # lean no-residual/no-cache miss loop; same generation as above.
        self._fast_probe_records: dict = {}

    @property
    def base_cardinality(self) -> int:
        return len(self.table)

    # ------------------------------------------------------------------
    # Inner-leg role
    # ------------------------------------------------------------------
    def compile_probe(
        self,
        preceding: Sequence[str],
        graph: Any,
        schemas: dict[str, Any],
        sel_of: Callable[[JoinPredicate], float],
        slot_of: Callable[[str, str], int] | None = None,
    ) -> None:
        """(Re)compile the probe strategy for the current leg order.

        *preceding* are the aliases bound before this leg; *graph* is the
        query's :class:`~repro.query.joingraph.JoinGraph` (it supplies
        derived predicates from column equivalence classes); *schemas* maps
        alias -> TableSchema of every leg (to compile outer-side getters);
        *sel_of* estimates a join predicate's selectivity, used to pick the
        most selective indexed access predicate; *slot_of*, when given, is a
        shared ``(alias, column) -> row slot`` cache so repeated recompiles
        across legs don't re-resolve schema positions.
        """
        available = graph.available_predicates(self.alias, preceding)
        if not available and len(schemas) > 1:
            raise ExecutionError(
                f"leg {self.alias!r} has no available join predicate; "
                "the order is disconnected"
            )
        indexed = [
            predicate
            for predicate in available
            if predicate.column_of(self.alias) in self.indexes
        ]
        access: JoinPredicate | None = None
        hash_column: str | None = None
        if available and self.hash_policy is HashProbePolicy.ALWAYS:
            access = min(available, key=sel_of)
            hash_column = access.column_of(self.alias)
        elif indexed:
            access = min(indexed, key=sel_of)
        elif available and self.hash_policy is HashProbePolicy.FALLBACK:
            # No usable index: a hash build beats a full scan per probe.
            access = min(available, key=sel_of)
            hash_column = access.column_of(self.alias)
        residual = [p for p in available if p is not access]

        if slot_of is None:
            def slot_of(alias: str, column: str) -> int:
                return schemas[alias].position_of(column)

        def source_of(predicate: JoinPredicate) -> tuple[str, int]:
            other = predicate.other(self.alias)
            return other, slot_of(other, predicate.column_of(other))

        def getter_for(predicate: JoinPredicate) -> Callable[[Binding], Any]:
            other, slot = source_of(predicate)

            def get(binding: Binding) -> Any:
                return binding[other][slot]

            return get

        key_getter = getter_for(access) if access is not None else None
        key_alias, key_slot = (
            source_of(access) if access is not None else (None, None)
        )
        residual_compiled = tuple(
            (getter_for(p), slot_of(self.alias, p.column_of(self.alias)))
            for p in residual
        )
        self.probe_config = ProbeConfig(
            access_index=self.indexes[access.column_of(self.alias)]
            if access is not None and hash_column is None
            else None,
            access_predicate=access,
            key_getter=key_getter,
            residual_joins=residual_compiled,
            available_predicates=tuple(available),
            hash_column=hash_column,
            key_alias=key_alias,
            key_slot=key_slot,
            residual_sources=tuple(source_of(p) for p in residual),
        )
        self.probe_epoch += 1
        self.incoming_since_check = 0

    def probe(self, binding: Binding) -> list[Row]:
        """All rows of this leg matching the outer *binding*.

        Returns fully filtered rows (access + residual joins + locals +
        positional predicate) and feeds the leg monitor.
        """
        config = self.probe_config
        if config is None:
            raise ExecutionError(f"leg {self.alias!r} has no probe config")
        meter = self.meter
        work_before = meter.execution_units if self.monitoring_enabled else 0.0
        faulty = self.table.faults is not None

        skip_locals = False
        if config.hash_column is not None and config.key_getter is not None:
            key = config.key_getter(binding)
            hash_table = self._hash_table_for(config.hash_column)
            if faulty:
                candidates = call_with_retry(
                    lambda: hash_table.probe(key, meter),
                    self.retry_policy,
                    on_retry=self._retry_hook("hash-probe"),
                )
            else:
                candidates = hash_table.probe(key, meter)
            # Hash builds are pre-filtered by the local predicates.
            skip_locals = True
        elif config.access_index is not None and config.key_getter is not None:
            key = config.key_getter(binding)
            index = config.access_index
            if faulty:
                rids = call_with_retry(
                    lambda: index.lookup_rids(key),
                    self.retry_policy,
                    on_retry=self._retry_hook("index-lookup"),
                )
            else:
                rids = index.lookup_rids(key)
            candidates = [(rid, self.table.fetch(rid)) for rid in rids]
        else:
            candidates = list(self.table.scan())
        index_matches = len(candidates)

        matches: list[Row] = []
        match_rids: list[int] = []
        for rid, row in candidates:
            if not self._passes_residuals(binding, rid, row, config, skip_locals):
                continue
            matches.append(row)
            if self.collect_rids:
                match_rids.append(rid)
        if self.collect_rids:
            self.match_rids = match_rids

        if self.monitoring_enabled:
            try:
                if faulty:
                    self.table.faults.fire("monitor")
                work = meter.execution_units - work_before
                self.monitor.record_probe(index_matches, len(matches), work)
                meter.charge_monitor_update()
                self.incoming_since_check += 1
            except Exception as exc:
                self._degrade_monitoring(exc)
        if self.obs is not None:
            self.obs.on_probe(self.alias, index_matches, len(matches))
        return matches

    # ------------------------------------------------------------------
    # Batched inner-leg role (the vectorized executor)
    # ------------------------------------------------------------------
    def probe_batch(
        self,
        binding: Binding,
        vary_alias: str,
        outer_rows: Sequence[Row],
        cache=None,
    ) -> list[tuple[PreparedProbe, bool | None]]:
        """Resolve probes for many outer rows in one merged physical pass.

        *binding* must hold every preceding alias except that
        ``binding[vary_alias]`` is overwritten per outer row (and left at
        the last one — callers rebind it before use). Returns one
        ``(PreparedProbe, hit)`` per outer row, in order; ``hit`` is None
        when no cache is armed. **No side effects**: charges, monitor
        records, and hooks happen later, in :meth:`replay_prepared`, at the
        logical point the scalar path would have probed — that replay is
        what keeps WorkMeter totals and Eq 5–11 estimates identical to
        scalar execution at every observable point.

        Index-access probes for all missed keys share a single merged
        left-to-right descent over the index (`lookup_rids_batch`), which
        is where the batch wall-clock win comes from.
        """
        config = self.probe_config
        if config is None:
            raise ExecutionError(f"leg {self.alias!r} has no probe config")
        if config.hash_column is not None:
            raise ExecutionError(
                f"leg {self.alias!r}: hash probes are not batchable"
            )
        key_getter = config.key_getter
        residual = config.residual_joins
        index = config.access_index
        monitoring = self.monitoring_enabled

        # Pass 1 — per outer row, extract the probe key and residual outer
        # values, consulting the cache. Only misses reach the index.
        plan: list = [None] * len(outer_rows)
        misses: list[tuple[int, Any, tuple, Any]] = []
        probe_keys: list = []
        for i, outer in enumerate(outer_rows):
            binding[vary_alias] = outer
            key = key_getter(binding) if key_getter is not None else None
            if residual:
                ovals = tuple(get_outer(binding) for get_outer, _ in residual)
                # Flat cache key; shape is fixed per probe epoch and the
                # cache flushes on epoch change, so shapes never mix.
                ckey = (key,) + ovals
            else:
                ovals = ()
                ckey = key
            if cache is not None:
                entry = cache.get(ckey)
                if entry is not None:
                    plan[i] = (entry, True)
                    continue
            misses.append((i, key, ovals, ckey))
            if index is not None and key is not None:
                probe_keys.append(key)

        # Pass 2 — one merged descent resolves every distinct missed key.
        rid_map = (
            index.lookup_rids_batch(probe_keys)
            if index is not None and probe_keys
            else {}
        )

        # Pass 3 — filter candidates exactly as the scalar probe would,
        # counting (not yet charging) the work it would have metered.
        raw = self.table.raw_rows()
        local_tests = self.local_tests
        positional = self.positional
        hit_flag = False if cache is not None else None
        for i, key, ovals, ckey in misses:
            if index is not None:
                if key is None:
                    # Scalar lookup_rids: descend charged, no entries walked.
                    rids: Sequence[int] = ()
                    descends, entry_count, fetches = 1, 0, 0
                else:
                    rids = rid_map[key]
                    descends = 1
                    entry_count = max(len(rids), 1)
                    fetches = len(rids)
            else:
                # Scan probe: every heap row is fetched as a candidate.
                rids = range(len(raw))
                descends, entry_count, fetches = 0, 0, len(raw)
            index_matches = len(rids)
            evals = 0
            matches: list[Row] = []
            deltas = (
                [[0, 0] for _ in local_tests]
                if monitoring and local_tests
                else None
            )
            for rid in rids:
                row = raw[rid]
                ok = True
                for slot, (_, test) in enumerate(local_tests):
                    evals += 1
                    passed = test(row)
                    if deltas is not None:
                        pair = deltas[slot]
                        pair[0] += 1
                        pair[1] += 1 if passed else 0
                    if not passed:
                        ok = False
                        break
                if ok and positional is not None:
                    evals += 1
                    if not positional.test(rid, row):
                        ok = False
                if ok:
                    for j, (_, slot) in enumerate(residual):
                        evals += 1
                        cell = row[slot]
                        if cell is None or cell != ovals[j]:
                            ok = False
                            break
                if ok:
                    matches.append(row)
            prepared = PreparedProbe(
                descends=descends,
                entries=entry_count,
                fetches=fetches,
                evals=evals,
                index_matches=index_matches,
                matches=matches,
                work=(
                    descends * INDEX_DESCEND_COST
                    + entry_count * INDEX_ENTRY_COST
                    + fetches * ROW_FETCH_COST
                    + evals * PREDICATE_EVAL_COST
                ),
                local_deltas=(
                    tuple((pair[0], pair[1]) for pair in deltas)
                    if deltas is not None
                    else None
                ),
            )
            if cache is not None:
                cache.put(ckey, prepared)
            plan[i] = (prepared, hit_flag)
        return plan

    def probe_batch_turbo(
        self,
        binding: Binding,
        vary_alias: str,
        outer_rows: Sequence[Row],
        cache=None,
    ) -> list[list[Row]]:
        """Charge-as-you-go :meth:`probe_batch` for unobserved static runs.

        Only legal when *nothing can observe intermediate meter state*: mode
        ``NONE`` (no monitors, no reorder checks), no execution limits, no
        observability, no oracle, no faults. Under those conditions the work
        meter is read once, at query end, so charging each chunk's aggregate
        up front is observably identical to the scalar path's per-probe
        charges — and skips the entire :class:`PreparedProbe` replay
        machinery. Totals stay scalar-exact probe for probe; only the
        (unobservable) intermediate meter states differ, by at most one
        chunk of lookahead. Returns one match list per outer row; cache hits
        skip their physical charges exactly as in the replayed path.
        """
        config = self.probe_config
        if config is None:
            raise ExecutionError(f"leg {self.alias!r} has no probe config")
        if config.hash_column is not None:
            raise ExecutionError(
                f"leg {self.alias!r}: hash probes are not batchable"
            )
        residual = config.residual_joins
        index = config.access_index
        # Resolve the outer-side reads once: sources on the varying alias
        # become direct row-slot reads per outer row; sources on any other
        # (fixed) alias are constants for the whole chunk.
        key_alias = config.key_alias
        key_varies = key_alias == vary_alias
        key_slot = config.key_slot
        key_const = (
            binding[key_alias][key_slot]
            if key_alias is not None and not key_varies
            else None
        )
        oval_specs: tuple = ()
        if residual:
            oval_specs = tuple(
                (
                    oalias == vary_alias,
                    oslot if oalias == vary_alias else binding[oalias][oslot],
                )
                for oalias, oslot in config.residual_sources
            )

        out: list = [None] * len(outer_rows)
        misses: list[tuple[int, Any, tuple, Any]] = []
        probe_keys: list = []
        hits = 0
        centries = cache.entries if cache is not None else None
        # Within-chunk duplicates: a sequential cached loop would miss on the
        # first occurrence of a key and *hit* on every later one (the put
        # happens before the next probe). The batch consults the cache before
        # any put, so later occurrences must be folded onto the first
        # explicitly or they'd repeat the full probe the scalar path skips.
        pending: dict = {}
        dups: list[tuple[int, int]] = []
        single_res = len(oval_specs) == 1
        if single_res:
            ovaries, ospec = oval_specs[0]
        for i, outer in enumerate(outer_rows):
            key = outer[key_slot] if key_varies else key_const
            if single_res:
                # One residual source is the common chain-join shape; build
                # the pair directly instead of via a generator round-trip.
                oval = outer[ospec] if ovaries else ospec
                ovals = (oval,)
                ckey = (key, oval)
            elif residual:
                ovals = tuple(
                    outer[spec] if varies else spec
                    for varies, spec in oval_specs
                )
                ckey = (key,) + ovals
            else:
                ovals = ()
                ckey = key
            if centries is not None:
                entry = centries.get(ckey)
                if entry is not None:
                    centries.move_to_end(ckey)
                    out[i] = entry
                    hits += 1
                    continue
                rep = pending.get(ckey)
                if rep is not None:
                    dups.append((i, rep))
                    hits += 1
                    continue
                pending[ckey] = i
            misses.append((i, key, ovals, ckey))
            if index is not None and key is not None:
                probe_keys.append(key)

        local_tests = self.local_tests
        if self.positional is not None:
            # Positional predicates only exist after a driving switch, which
            # mode NONE never performs — the turbo path cannot reach here.
            raise ExecutionError(
                f"leg {self.alias!r}: positional predicate on the turbo path"
            )
        # Candidate resolution. With local predicates, candidates come from
        # the once-per-generation pre-filtered groups (local evals charged
        # from the precomputed scalar-exact counts); without, straight from
        # the merged row descent. RIDs are never needed either way.
        groups: dict | None = None
        scan_group: tuple | None = None
        row_map: dict = {}
        inline_tests: list | None = None
        if local_tests:
            if index is not None:
                groups = self._turbo_filtered_if_warm(index)
                if groups is None:
                    inline_tests = [test for _, test in local_tests]
                    if probe_keys:
                        row_map = index.lookup_rows_batch(probe_keys)
            else:
                scan_group = self._turbo_scan_filtered()
        elif index is not None and probe_keys:
            row_map = index.lookup_rows_batch(probe_keys)

        raw = self.table.raw_rows()
        one_residual = len(residual) == 1
        if one_residual:
            res_slot = residual[0][1]
        descends = entries = fetches = evals = 0
        for i, key, ovals, ckey in misses:
            if index is not None:
                descends += 1
                if key is None:
                    # Scalar lookup_rids: descend charged, no entries walked.
                    matches: list[Row] = []
                    out[i] = matches
                    if cache is not None:
                        cache.put(ckey, matches)
                    continue
                if groups is not None:
                    group = groups.get(key)
                    if group is None:
                        rows: Sequence[Row] = ()
                        count = 0
                    else:
                        rows, local_evals, count = group
                        evals += local_evals
                else:
                    rows = row_map[key]
                    count = len(rows)
                entries += count if count else 1
                fetches += count
                if inline_tests is not None and count:
                    self._turbo_rows_seen += count
                    passing = []
                    for row in rows:
                        for test in inline_tests:
                            evals += 1
                            if not test(row):
                                break
                        else:
                            passing.append(row)
                    rows = passing
            else:
                # Scan probe: every heap row is fetched as a candidate.
                if scan_group is not None:
                    rows, local_evals, count = scan_group
                    evals += local_evals
                    fetches += count
                else:
                    rows = raw
                    fetches += len(raw)
            # Residual filter over the locally-passing candidates.
            if one_residual:
                oval = ovals[0]
                matches = [
                    row
                    for row in rows
                    if (cell := row[res_slot]) is not None and cell == oval
                ]
                evals += len(rows)
            elif not residual:
                matches = list(rows)
            else:
                matches = []
                for row in rows:
                    for j, (_, slot) in enumerate(residual):
                        evals += 1
                        cell = row[slot]
                        if cell is None or cell != ovals[j]:
                            break
                    else:
                        matches.append(row)
            out[i] = matches
            if cache is not None:
                cache.put(ckey, matches)
        for i, rep in dups:
            out[i] = out[rep]
        meter = self.meter
        meter.index_descends += descends
        meter.index_entries += entries
        meter.row_fetches += fetches
        meter.predicate_evals += evals
        if cache is not None:
            cache.hits += hits
            cache.misses += len(misses)
            meter.probe_cache_hits += hits
            meter.probe_cache_misses += len(misses)
        return out

    def _turbo_scan_filtered(self) -> tuple:
        """Locally pre-filtered scan candidates for the turbo path.

        Local predicates are pure functions of the candidate row, so their
        outcome — and the exact short-circuit eval count a scalar probe
        would charge — is computed once per (probe epoch, heap version) as
        ``(passing rows, local evals, total rows)``. A scan probe walks the
        whole heap anyway, so one build pays for itself by the first probe.
        """
        gen = (self.probe_epoch, self.table.version, None)
        if self._turbo_groups_gen != gen:
            tests = [test for _, test in self.local_tests]
            passing: list[Row] = []
            evals = 0
            raw = self.table.raw_rows()
            for row in raw:
                for test in tests:
                    evals += 1
                    if not test(row):
                        break
                else:
                    passing.append(row)
            self._turbo_groups = (passing, evals, len(raw))
            self._turbo_groups_gen = gen
        return self._turbo_groups

    def _turbo_filtered_if_warm(self, index) -> dict | None:
        """Pre-filtered per-key groups, built only past break-even.

        Building costs one pass over the whole index; it can only win once
        this leg's probes have cumulatively pushed at least that many
        candidate rows through the inline local-predicate filter
        (``_turbo_rows_seen``). Before that point returns ``None`` and the
        caller filters inline — bounding the worst case (leg probed a
        handful of times) at the work already paid.
        """
        gen = (self.probe_epoch, self.table.version, index.name)
        if self._turbo_groups_gen == gen:
            return self._turbo_groups
        if self._turbo_rows_seen < len(index) and not getattr(
            index, "prebuild_groups", False
        ):
            # Backends whose filtered_groups is a cached vectorized kernel
            # (columnar) opt out of the break-even gate: the build is one
            # whole-column pass, amortized across probes and generations.
            return None
        self._turbo_groups = index.filtered_groups(
            [test for _, test in self.local_tests]
        )
        self._turbo_groups_gen = gen
        return self._turbo_groups

    def probe_turbo(self, binding: Binding, cache=None) -> list[Row]:
        """Single-probe twin of :meth:`probe_batch_turbo`.

        Deep pipeline positions mostly see one remaining outer row at a
        time (the parent's match list is short), where the batch scaffolding
        costs more than it saves; this path does the same cache consult,
        lookup, filter, and aggregate charges for exactly one outer binding.
        Same legality conditions as :meth:`probe_batch_turbo`.
        """
        config = self.probe_config
        if config is None:
            raise ExecutionError(f"leg {self.alias!r} has no probe config")
        residual = config.residual_joins
        index = config.access_index
        meter = self.meter
        key_alias = config.key_alias
        key = (
            binding[key_alias][config.key_slot]
            if key_alias is not None
            else None
        )
        if residual:
            ovals = tuple(
                binding[oalias][oslot]
                for oalias, oslot in config.residual_sources
            )
            # Flat cache key: the shape is fixed per probe epoch, and the
            # cache flushes on epoch change, so no ambiguity is possible.
            ckey = (key,) + ovals
        else:
            ovals = ()
            ckey = key
        if cache is not None:
            entries = cache.entries
            entry = entries.get(ckey)
            if entry is not None:
                entries.move_to_end(ckey)
                cache.hits += 1
                meter.probe_cache_hits += 1
                return entry
            cache.misses += 1
        if self.positional is not None:
            # Positional predicates only exist after a driving switch, which
            # mode NONE never performs — the turbo path cannot reach here.
            raise ExecutionError(
                f"leg {self.alias!r}: positional predicate on the turbo path"
            )
        local_tests = self.local_tests
        if index is not None:
            meter.index_descends += 1
            if key is None:
                matches: list[Row] = []
                if cache is not None:
                    cache.put(ckey, matches)
                    meter.probe_cache_misses += 1
                return matches
            if local_tests:
                groups = self._turbo_filtered_if_warm(index)
                if groups is not None:
                    group = groups.get(key)
                    if group is None:
                        rows: Sequence[Row] = ()
                        count = 0
                    else:
                        rows, local_evals, count = group
                        meter.predicate_evals += local_evals
                else:
                    rows = index.lookup_rows_quiet(key)
                    count = len(rows)
                    if count:
                        self._turbo_rows_seen += count
                        evals = 0
                        passing = []
                        for row in rows:
                            for _, test in local_tests:
                                evals += 1
                                if not test(row):
                                    break
                            else:
                                passing.append(row)
                        rows = passing
                        meter.predicate_evals += evals
            else:
                rows = index.lookup_rows_quiet(key)
                count = len(rows)
            meter.index_entries += count if count else 1
            meter.row_fetches += count
        elif local_tests:
            rows, local_evals, count = self._turbo_scan_filtered()
            meter.predicate_evals += local_evals
            meter.row_fetches += count
        else:
            rows = self.table.raw_rows()
            meter.row_fetches += len(rows)
        # Residual filter over the locally-passing candidates.
        if len(residual) == 1:
            slot = residual[0][1]
            oval = ovals[0]
            matches = [
                row
                for row in rows
                if (cell := row[slot]) is not None and cell == oval
            ]
            meter.predicate_evals += len(rows)
        elif not residual:
            matches = list(rows)
        else:
            matches = []
            evals = 0
            for row in rows:
                for j, (_, slot) in enumerate(residual):
                    evals += 1
                    cell = row[slot]
                    if cell is None or cell != ovals[j]:
                        break
                else:
                    matches.append(row)
            meter.predicate_evals += evals
        if cache is not None:
            cache.put(ckey, matches)
            meter.probe_cache_misses += 1
        return matches

    def _fast_group_rows(
        self, candidates: Sequence[tuple[int, Row]]
    ) -> tuple[list[Row], int, int, tuple[tuple[int, int], ...] | None]:
        """Filter *candidates* through locals + positional, counting exactly.

        Returns ``(surviving rows, evals, candidate count, local deltas)``
        where ``evals`` is precisely what a scalar probe charges for this
        candidate set before residual joins (short-circuited local evals
        plus one positional eval per locally-passing row) and ``deltas`` are
        the per-local-predicate (evaluated, passed) increments. All of it is
        a pure function of the candidate set, the probe epoch's local tests,
        and the positional predicate — so the result is memoized per key.
        """
        local_tests = self.local_tests
        positional = self.positional
        evals = 0
        rows: list[Row] = []
        deltas = [[0, 0] for _ in local_tests] if local_tests else None
        for rid, row in candidates:
            ok = True
            for slot, (_, test) in enumerate(local_tests):
                evals += 1
                passed = test(row)
                if deltas is not None:
                    pair = deltas[slot]
                    pair[0] += 1
                    pair[1] += 1 if passed else 0
                if not passed:
                    ok = False
                    break
            if ok and positional is not None:
                evals += 1
                if not positional.test(rid, row):
                    ok = False
            if ok:
                rows.append(row)
        return (
            rows,
            evals,
            len(candidates),
            tuple((pair[0], pair[1]) for pair in deltas)
            if deltas is not None
            else None,
        )

    def probe_batch_fast(
        self,
        binding: Binding,
        vary_alias: str,
        outer_rows: Sequence[Row],
        cache=None,
        defer: bool = False,
        bump_incoming: bool = True,
        aggregate: bool = False,
    ) -> list:
        """Monitored batch probe with chunk-aggregated accounting.

        The amortized twin of :meth:`probe_batch` + :meth:`replay_prepared`
        for runs where nothing reads the work meter mid-query (no limits, no
        observability, no faults): each chunk's physical charges, monitor
        updates, and cache counters hit the meter once, up front, instead of
        probe by probe. Per-probe counts stay scalar-exact — they are
        *derived* from per-key candidate groups that replicate the scalar
        short-circuit precisely — so final meter totals are identical; only
        (unobservable) intermediate meter states run up to one chunk ahead.

        Monitor-window observations are what adaptation decisions read, so
        their application point is the caller's choice:

        * ``defer=False`` — fold the whole chunk's samples into the window
          here (``observe_many``), in outer-row order, along with the
          local-predicate counters; legal when no reorder check can fire
          between this call and the consumption of the chunk's last probe.
          ``bump_incoming`` selects whether ``incoming_since_check`` also
          advances here (chunk-bulk) or per consumed probe in the caller.
        * ``defer=True`` — return per-probe records
          ``(matches, index_matches, work, local_deltas)`` and apply
          nothing; the caller replays each observation at the scalar
          logical point (positions where checks can interleave mid-chunk).
        * ``aggregate=True`` (fast adaptive mode,
          ``monitor_granularity="chunk"``) — fold the chunk into the
          window as ONE weighted aggregate via
          :meth:`~repro.core.monitor.AggregatedWindow.observe_chunk`:
          an O(1) ring update per chunk instead of per sample. Requires
          the leg's monitor to carry an aggregated window; implies the
          chunk-bulk treatment of the local counters and
          ``incoming_since_check``.

        Per-key groups (rows passing locals + positional, with exact eval
        counts) are memoized per (probe epoch, heap version), so repeated
        join keys skip candidate filtering entirely — the same amortization
        the turbo path gets from ``filtered_groups``, but with the counters
        monitored execution needs.
        """
        config = self.probe_config
        if config is None:
            raise ExecutionError(f"leg {self.alias!r} has no probe config")
        if config.hash_column is not None:
            raise ExecutionError(
                f"leg {self.alias!r}: hash probes are not batchable"
            )
        residual = config.residual_joins
        index = config.access_index
        key_alias = config.key_alias
        key_varies = key_alias == vary_alias
        key_slot = config.key_slot
        key_const = (
            binding[key_alias][key_slot]
            if key_alias is not None and not key_varies
            else None
        )
        oval_specs: tuple = ()
        if residual:
            oval_specs = tuple(
                (
                    oalias == vary_alias,
                    oslot if oalias == vary_alias else binding[oalias][oslot],
                )
                for oalias, oslot in config.residual_sources
            )

        gen = (self.probe_epoch, self.table.version)
        if self._fast_groups_gen != gen:
            self._fast_groups = {}
            self._fast_scan_group = None
            self._fast_probe_records = {}
            self._fast_groups_gen = gen
        groups = self._fast_groups

        n = len(outer_rows)
        records: list = [None] * n
        misses: list[tuple[int, Any, tuple, Any]] = []
        group_keys: list = []
        hits = 0
        centries = cache.entries if cache is not None else None
        # Within-chunk duplicates fold onto the first occurrence when a
        # cache is armed (same divergence contract as the turbo path: more
        # savings than the sequential scalar cache, identical monitor
        # observations). Without a cache every duplicate pays its full
        # scalar charges, keeping uncached meter totals exact.
        pending: dict = {}
        dups: list[tuple[int, int]] = []
        single_res = len(oval_specs) == 1
        if single_res:
            ovaries, ospec = oval_specs[0]
        # Lean shape: no residual joins, no probe cache, indexed access. A
        # key's full probe record is then a pure function of its memoized
        # group, so the chunk needs only the key sequence — no per-row
        # (i, key, ovals, ckey) tuples, no duplicate folding.
        lean = index is not None and not residual and centries is None
        keys_seq: list | None = None
        key_set: set | None = None
        if lean:
            keys_seq = (
                [outer[key_slot] for outer in outer_rows]
                if key_varies
                else [key_const] * n
            )
            key_set = set(keys_seq)
            group_keys = [
                key
                for key in key_set
                if key is not None and key not in groups
            ]
        for i, outer in () if lean else enumerate(outer_rows):
            key = outer[key_slot] if key_varies else key_const
            if single_res:
                oval = outer[ospec] if ovaries else ospec
                ovals = (oval,)
                ckey = (key, oval)
            elif residual:
                ovals = tuple(
                    outer[spec] if varies else spec
                    for varies, spec in oval_specs
                )
                ckey = (key,) + ovals
            else:
                ovals = ()
                ckey = key
            if centries is not None:
                entry = centries.get(ckey)
                if entry is not None:
                    centries.move_to_end(ckey)
                    records[i] = entry
                    hits += 1
                    continue
                rep = pending.get(ckey)
                if rep is not None:
                    dups.append((i, rep))
                    hits += 1
                    continue
                pending[ckey] = i
            misses.append((i, key, ovals, ckey))
            if (
                index is not None
                and key is not None
                and key not in groups
            ):
                group_keys.append(key)

        # Resolve candidate groups for keys not yet memoized: one merged
        # descent over the index, then one filtering pass per new key —
        # or, when the backend offers vectorized per-key records
        # (columnar), one kernel gather with identical eval accounting.
        if index is not None and group_keys:
            build = getattr(index, "fast_group_records", None)
            built = (
                build(group_keys, self.local_tests, self.positional)
                if build is not None
                else None
            )
            if built is not None:
                groups.update(built)
            else:
                raw = self.table.raw_rows()
                for key, rids in index.lookup_rids_batch(group_keys).items():
                    groups[key] = self._fast_group_rows(
                        [(rid, raw[rid]) for rid in rids]
                    )
        scan_group: tuple | None = None
        if index is None:
            scan_group = self._fast_scan_group
            if scan_group is None:
                raw = self.table.raw_rows()
                scan_group = self._fast_scan_group = self._fast_group_rows(
                    list(enumerate(raw))
                )

        one_residual = len(residual) == 1
        if one_residual:
            res_slot = residual[0][1]
        descends = entries = fetches = evals_total = 0
        if lean:
            # Lean miss loop: each key's full probe record — matches,
            # count, work — is built once and the tuple shared across
            # every probe of that key (record identity is safe: consumers
            # only read record[0..3]). Work/meter sums are exact: every
            # probe descends; entries/fetches/evals are per-key constants.
            probe_records = self._fast_probe_records
            descends = n
            for key in key_set:
                if key in probe_records:
                    continue
                if key is None:
                    # Scalar lookup_rids(None): descend charged, no
                    # entries — zero contribution to every other sum.
                    probe_records[None] = (
                        ([], 0, INDEX_DESCEND_COST, None),
                        0,
                        0,
                        0,
                        0,
                    )
                    continue
                rows, base_evals, count, deltas = groups[key]
                probe_entries = count if count else 1
                work = (
                    INDEX_DESCEND_COST
                    + probe_entries * INDEX_ENTRY_COST
                    + count * ROW_FETCH_COST
                    + base_evals * PREDICATE_EVAL_COST
                )
                probe_records[key] = (
                    (rows, count, work, deltas),
                    probe_entries,
                    count,
                    base_evals,
                    len(rows),
                )
            # Aggregate per DISTINCT key (duplicate probes of a key add
            # identical integer contributions, so multiplying by the
            # multiplicity is exact), including the per-predicate
            # (evaluated, passed) deltas the epilogue folds into
            # local_counts — that loop is per-record otherwise.
            lean_output = 0
            lean_deltas = (
                [[0, 0] for _ in self.local_tests]
                if self.local_tests
                else None
            )
            if key_varies:
                records = [probe_records[key][0] for key in keys_seq]
                for key, mult in Counter(keys_seq).items():
                    record, pe, pf, ev, nm = probe_records[key]
                    entries += pe * mult
                    fetches += pf * mult
                    evals_total += ev * mult
                    lean_output += nm * mult
                    deltas = record[3]
                    if lean_deltas is not None and deltas is not None:
                        for slot, (evaluated, passed) in enumerate(deltas):
                            pair = lean_deltas[slot]
                            pair[0] += evaluated * mult
                            pair[1] += passed * mult
            else:
                record, pe1, pf1, ev1, nm1 = probe_records[key_const]
                records = [record] * n
                entries = pe1 * n
                fetches = pf1 * n
                evals_total = ev1 * n
                lean_output = nm1 * n
                deltas = record[3]
                if lean_deltas is not None and deltas is not None:
                    for slot, (evaluated, passed) in enumerate(deltas):
                        pair = lean_deltas[slot]
                        pair[0] += evaluated * n
                        pair[1] += passed * n
        for i, key, ovals, ckey in misses:
            if index is not None:
                descends += 1
                if key is None:
                    # Scalar lookup_rids(None): descend charged, no entries.
                    record = ([], 0, INDEX_DESCEND_COST, None)
                    records[i] = record
                    if cache is not None:
                        cache.put(ckey, record)
                    continue
                rows, base_evals, count, deltas = groups[key]
                probe_entries = count if count else 1
                probe_fetches = count
                entries += probe_entries
                fetches += probe_fetches
            else:
                rows, base_evals, count, deltas = scan_group
                probe_entries = 0
                probe_fetches = count
                fetches += count
            evals = base_evals
            if one_residual:
                oval = ovals[0]
                matches = [
                    row
                    for row in rows
                    if (cell := row[res_slot]) is not None and cell == oval
                ]
                evals += len(rows)
            elif not residual:
                matches = rows
            else:
                matches = []
                for row in rows:
                    for j, (_, slot) in enumerate(residual):
                        evals += 1
                        cell = row[slot]
                        if cell is None or cell != ovals[j]:
                            break
                    else:
                        matches.append(row)
            evals_total += evals
            work = (
                (INDEX_DESCEND_COST if index is not None else 0.0)
                + probe_entries * INDEX_ENTRY_COST
                + probe_fetches * ROW_FETCH_COST
                + evals * PREDICATE_EVAL_COST
            )
            record = (matches, count, work, deltas)
            records[i] = record
            if cache is not None:
                cache.put(ckey, record)
        for i, rep in dups:
            records[i] = records[rep]

        meter = self.meter
        meter.index_descends += descends
        meter.index_entries += entries
        meter.row_fetches += fetches
        meter.predicate_evals += evals_total
        if cache is not None:
            cache.hits += hits
            cache.misses += len(misses)
            meter.probe_cache_hits += hits
            meter.probe_cache_misses += len(misses)
        if not self.monitoring_enabled:
            if defer:
                return records
            return [record[0] for record in records]
        meter.monitor_updates += n
        if defer:
            return records
        if aggregate:
            # Deferred: the executor folds ONE window aggregate per leg per
            # driving chunk at the chunk boundary (flush_chunk), matching
            # the vectorized adaptive cascade's per-chunk kernel folds.
            if lean:
                # Chunk sums fall out of the meter totals: every cost
                # constant is an exact binary fraction, so this aggregate
                # equals the per-record float sum bit for bit.
                self.monitor.defer_chunk(
                    n,
                    fetches,
                    lean_output,
                    n * INDEX_DESCEND_COST
                    + entries * INDEX_ENTRY_COST
                    + fetches * ROW_FETCH_COST
                    + evals_total * PREDICATE_EVAL_COST,
                )
            else:
                sum_matches = 0
                sum_output = 0
                sum_work = 0.0
                for record in records:
                    sum_matches += record[1]
                    sum_output += len(record[0])
                    sum_work += record[2]
                self.monitor.defer_chunk(
                    n, sum_matches, sum_output, sum_work
                )
        else:
            self.monitor.window.observe_many(
                (record[1], len(record[0]), record[2]) for record in records
            )
        if self.local_tests:
            counts_list = self.local_counts
            if lean:
                # Same integer sums, grouped per distinct key above.
                for slot, (evaluated, passed) in enumerate(lean_deltas):
                    counts = counts_list[slot]
                    counts[0] += evaluated
                    counts[1] += passed
            else:
                for record in records:
                    deltas = record[3]
                    if deltas is not None:
                        for slot, (evaluated, passed) in enumerate(deltas):
                            counts = counts_list[slot]
                            counts[0] += evaluated
                            counts[1] += passed
        if bump_incoming:
            self.incoming_since_check += n
        return [record[0] for record in records]

    def consume_fast_record(self, record: tuple) -> list[Row]:
        """Apply one deferred probe record's observations; return matches.

        The per-consumption tail of :meth:`probe_batch_fast(defer=True)`:
        window sample, local-predicate counters, and the check counter are
        applied at the exact logical point the scalar probe would have —
        physical meter charges were already folded into the chunk aggregate.
        """
        matches = record[0]
        if self.monitoring_enabled:
            self.monitor.window.observe(record[1], len(matches), record[2])
            deltas = record[3]
            if deltas is not None:
                counts_list = self.local_counts
                for slot, (evaluated, passed) in enumerate(deltas):
                    counts = counts_list[slot]
                    counts[0] += evaluated
                    counts[1] += passed
            self.incoming_since_check += 1
        return matches

    def replay_prepared(
        self, prepared: PreparedProbe, hit: bool | None
    ) -> list[Row]:
        """Apply a prepared probe's deferred accounting; return its matches.

        Mirrors the observable tail of :meth:`probe`: execution-unit
        charges (skipped on a cache hit — the documented savings), the
        monitor's ``record_probe`` with the probe's full work (identical on
        hits, so estimates never diverge), the local-predicate counters,
        ``incoming_since_check``, and the observability hook.
        """
        meter = self.meter
        if hit:
            meter.charge_probe_cache(True)
        else:
            if hit is not None:
                meter.charge_probe_cache(False)
            meter.index_descends += prepared.descends
            meter.index_entries += prepared.entries
            meter.row_fetches += prepared.fetches
            meter.predicate_evals += prepared.evals
        matches = prepared.matches
        if self.monitoring_enabled:
            try:
                deltas = prepared.local_deltas
                if deltas is not None:
                    counts_list = self.local_counts
                    for slot, (evaluated, passed) in enumerate(deltas):
                        if evaluated:
                            counts = counts_list[slot]
                            counts[0] += evaluated
                            counts[1] += passed
                self.monitor.record_probe(
                    prepared.index_matches, len(matches), prepared.work
                )
                meter.charge_monitor_update()
                self.incoming_since_check += 1
            except Exception as exc:
                self._degrade_monitoring(exc)
        if self.obs is not None:
            self.obs.on_probe(self.alias, prepared.index_matches, len(matches))
            if hit is not None:
                self.obs.on_probe_cache(self.alias, hit)
        return matches

    def _retry_hook(self, site: str):
        """Per-retry observability callback for a fault site (or None)."""
        if self.obs is None:
            return None
        return lambda: self.obs.on_fault_retry(site)

    def _degrade_monitoring(self, exc: BaseException) -> None:
        """Disable this leg's monitoring after a failure inside it.

        Monitoring is pure observation: losing it costs estimate freshness,
        never correctness, so the query continues. The executor's hook
        records a ``DEGRADED`` event; without a hook the failure is kept on
        ``monitor_failure`` for post-mortem inspection.
        """
        self.monitoring_enabled = False
        self.monitor_failure = exc
        if self.degrade_hook is not None:
            self.degrade_hook(self.alias, exc)

    def _hash_table_for(self, column: str) -> HashProbeTable:
        table = self._hash_tables.get(column)
        if table is None:
            table = HashProbeTable(
                self.table,
                column,
                self.local_tests,
                self.meter,
                local_counts=self.local_counts if self.monitoring_enabled else None,
            )
            self._hash_tables[column] = table
        return table

    def _passes_residuals(
        self,
        binding: Binding,
        rid: int,
        row: Row,
        config: ProbeConfig,
        skip_locals: bool = False,
    ) -> bool:
        # Local predicates first: they also reject rows whose scan-order key
        # is NULL, so the positional comparison below never sees NULLs.
        # (Hash candidates were filtered at build time; rows with NULL
        # scan-order keys fail the pushed local predicate there too.)
        for slot, (_, test) in enumerate(self.local_tests):
            if skip_locals:
                break
            self.meter.charge_predicate_eval()
            passed = test(row)
            if self.monitoring_enabled:
                counts = self.local_counts[slot]
                counts[0] += 1
                counts[1] += 1 if passed else 0
            if not passed:
                return False
        if self.positional is not None:
            self.meter.charge_predicate_eval()
            if not self.positional.test(rid, row):
                return False
        for get_outer, slot in config.residual_joins:
            self.meter.charge_predicate_eval()
            cell = row[slot]
            if cell is None or cell != get_outer(binding):
                return False
        return True

    # ------------------------------------------------------------------
    # Driving-leg role
    # ------------------------------------------------------------------
    def open_driving_cursor(
        self,
        resume: Cursor | None = None,
        partition: "ScanPartition | None" = None,
    ) -> Cursor:
        """Create (or resume) the driving scan cursor for this leg.

        *partition* bounds a fresh cursor to one slice of the scan's stable
        total order (parallel partitioned execution): it starts strictly
        after ``partition.start_after`` and stops before ``partition.stop_at``.
        """
        if resume is not None:
            cursor = resume
        else:
            start_after = partition.start_after if partition is not None else None
            stop_at = partition.stop_at if partition is not None else None
            entry_count = (
                partition.entry_count if partition is not None else None
            )
            spec = self.plan_leg.driving
            if spec.kind is DrivingKind.INDEX_SCAN:
                index = self.indexes.get(spec.index_column or "")
                if index is None:
                    raise ExecutionError(
                        f"leg {self.alias!r}: driving index on "
                        f"{spec.index_column!r} does not exist"
                    )
                cursor = IndexScanCursor(
                    index,
                    list(spec.ranges),
                    start_after=start_after,
                    stop_at=stop_at,
                    partition_entry_count=entry_count,
                )
            else:
                cursor = TableScanCursor(
                    self.table,
                    start_after=start_after,
                    stop_at=stop_at,
                    partition_entry_count=entry_count,
                )
        if self.pending_driving_monitor is not None:
            # Injected merged statistics (parallel continuation): keep the
            # pre-seeded monitor for the first open only; driving switches
            # and resumes still restart the scan monitor below.
            self.driving_monitor = self.pending_driving_monitor
            self.pending_driving_monitor = None
        else:
            self.driving_monitor = DrivingMonitor(self._history_window)
        return cursor

    def driving_rows(self, cursor: Cursor) -> Iterator[Row]:
        """Scan rows through *cursor*, applying residual local predicates.

        For index scans the pushed-down ranges already enforce the chosen
        sargable predicate, so only the *other* local predicates are
        rechecked (matching how S_LPI and S_LPR are monitored separately,
        Sec 4.3.1).
        """
        pushed = self._pushed_predicate(cursor)
        residual_tests = [
            test for predicate, test in self.local_tests if predicate is not pushed
        ]
        monitor = self.driving_monitor
        while True:
            try:
                if self.table.faults is not None:
                    # Cursor advances consult the fault injector before any
                    # state change, so transient faults are retryable.
                    _, row = call_with_retry(
                        lambda: next(cursor),
                        self.retry_policy,
                        on_retry=self._retry_hook("cursor-advance"),
                    )
                else:
                    _, row = next(cursor)
            except StopIteration:
                return
            self.meter.charge_predicate_eval(len(residual_tests))
            survived = all(test(row) for test in residual_tests)
            if self.monitoring_enabled and monitor is not None:
                try:
                    monitor.record_scanned(survived)
                    self.meter.charge_monitor_update()
                except Exception as exc:
                    self._degrade_monitoring(exc)
            if self.obs is not None:
                self.obs.on_scan_row(self.alias, survived)
            if survived:
                yield row

    def _pushed_predicate(self, cursor: Cursor):
        """The local predicate enforced by the cursor's index ranges."""
        if not isinstance(cursor, IndexScanCursor):
            return None
        column = cursor.index.column
        spec = self.plan_leg.driving
        if spec.kind is not DrivingKind.INDEX_SCAN or spec.index_column != column:
            # A dynamically chosen access path: find the matching predicate.
            for predicate, _ in self.local_tests:
                if predicate.key_ranges(column) is not None:
                    return predicate
            return None
        for predicate, _ in self.local_tests:
            if predicate.key_ranges(column) is not None:
                return predicate
        return None

    def pushed_driving_predicate(self):
        """The local predicate the driving spec pushes into its index scan."""
        spec = self.plan_leg.driving
        if spec.kind is not DrivingKind.INDEX_SCAN or spec.index_column is None:
            return None
        for predicate, _ in self.local_tests:
            if predicate.key_ranges(spec.index_column) is not None:
                return predicate
        return None

    # ------------------------------------------------------------------
    # Monitoring-derived numbers used by the controller
    # ------------------------------------------------------------------
    def measured_local_selectivity(self, predicate_slot: int) -> float | None:
        evaluated, passed = self.local_counts[predicate_slot]
        if evaluated == 0:
            return None
        return passed / evaluated
