"""The adaptation controller: when to check, what to change.

Ties the pieces together at the two safe points the executor exposes:

* ``on_suffix_depleted(i)`` — the Fig 2 trigger: when the leg at position
  ``i`` has consumed a batch of ``c`` incoming rows and its suffix is
  depleted, rebuild run-time models and possibly permute the suffix;
* ``on_pipeline_depleted()`` — the Fig 3 trigger: when the driving leg has
  produced ``c`` rows and the whole pipeline is depleted, compare the
  remaining cost of the current plan against plans led by every other leg
  and possibly switch the driving leg.

Checks charge ``REORDER_CHECK`` work units and monitors charge
``MONITOR_UPDATE`` units, so the Sec 5.4 overhead experiment can read the
adaptation overhead straight off the meter.
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING

from repro.core.config import AdaptiveConfig
from repro.core.driving import (
    apply_dynamic_spec,
    decide_driving_switch,
    dynamic_driving_spec,
)
from repro.core.events import AdaptationEvent, EventKind
from repro.optimizer.cost import cost_of_order
from repro.core.ranks import RuntimeModelBuilder
from repro.core.reorder import decide_inner_order
from repro.errors import ExecutionError, ReproError
from repro.obs.recorder import DecisionRecord, rank_terms_for
from repro.obs.timeseries import snapshot_legs
from repro.storage.cursor import IndexScanCursor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.executor.pipeline import PipelineExecutor

logger = logging.getLogger(__name__)


class AdaptationController:
    """Implements the executor's :class:`AdaptationHooks` protocol."""

    def __init__(self, config: AdaptiveConfig) -> None:
        self.config = config
        self.pipeline: "PipelineExecutor | None" = None
        self._builder: RuntimeModelBuilder | None = None
        # Experiment counters.
        self.inner_checks = 0
        self.driving_checks = 0

    def attach(self, pipeline: "PipelineExecutor") -> None:
        self.pipeline = pipeline
        self._builder = RuntimeModelBuilder(pipeline)

    def _require_pipeline(self) -> "PipelineExecutor":
        if self.pipeline is None or self._builder is None:
            raise ExecutionError("controller is not attached to a pipeline")
        return self.pipeline

    # ------------------------------------------------------------------
    # Fig 2: REORDER_INNER_TABLE(i)
    # ------------------------------------------------------------------
    def on_suffix_depleted(self, position: int) -> None:
        config = self.config
        if not config.mode.reorders_inner:
            return
        pipeline = self._require_pipeline()
        order = pipeline.order
        if position >= len(order) - 1:
            return  # a single-leg suffix cannot be permuted
        leg = pipeline.legs[order[position]]
        if leg.incoming_since_check < config.check_frequency:
            return
        leg.incoming_since_check = 0
        pipeline.catalog.meter.charge_reorder_check()
        self.inner_checks += 1
        assert self._builder is not None
        try:
            if pipeline.catalog.faults is not None:
                pipeline.catalog.faults.fire("controller")
            self._builder.refresh_join_selectivities()
            provider = self._builder.build_provider()
            new_suffix = decide_inner_order(
                pipeline, provider, position, config.inner_policy
            )
            obs = pipeline.obs
            if obs is not None:
                obs.on_check(
                    "inner",
                    applied=new_suffix is not None,
                    driving_rows=pipeline.driving_rows_total,
                    position=position,
                )
                if obs.audit is not None:
                    if new_suffix is None:
                        # Kept check — the ~per-batch common case. One
                        # tuple append; DecisionRecord envelopes are
                        # materialized lazily off the execution path.
                        try:
                            obs.audit.on_kept(
                                "inner",
                                pipeline.driving_rows_total,
                                position,
                                tuple(pipeline.order),
                            )
                        except Exception:  # pragma: no cover - advisory
                            logger.exception(
                                "decision-audit capture failed (ignored)"
                            )
                    else:
                        self._audit_check(
                            obs.audit,
                            pipeline,
                            provider,
                            check="inner",
                            position=position,
                            new_order=tuple(pipeline.order[:position])
                            + tuple(new_suffix),
                        )
            if new_suffix is not None:
                old_order = tuple(pipeline.order)
                new_order = tuple(pipeline.order[:position]) + tuple(new_suffix)
                pipeline.record_event(
                    AdaptationEvent(
                        kind=EventKind.INNER_REORDER,
                        driving_rows_produced=pipeline.driving_rows_total,
                        old_order=old_order,
                        new_order=new_order,
                        estimated_current_cost=cost_of_order(old_order, provider),
                        estimated_new_cost=cost_of_order(new_order, provider),
                        position=position,
                    )
                )
                pipeline.apply_inner_order(position, new_suffix)
        except ReproError as exc:
            # Context for degraded-mode events: which check, which leg,
            # which position, and how far execution had progressed.
            raise ExecutionError(
                f"inner-reorder check failed at position {position} "
                f"(leg {order[position]!r}, order {tuple(order)}, "
                f"{pipeline.driving_rows_total} driving rows)"
            ) from exc

    # ------------------------------------------------------------------
    # Fig 3: REORDER_DRIVING_TABLE()
    # ------------------------------------------------------------------
    def on_pipeline_depleted(self) -> bool:
        config = self.config
        if not config.mode.reorders_driving:
            return False
        pipeline = self._require_pipeline()
        if len(pipeline.order) < 2:
            return False
        if pipeline.driving_rows_since_check < config.check_frequency:
            return False
        cursor = pipeline.driving_cursor
        if (
            config.switch_at_key_boundary
            and isinstance(cursor, IndexScanCursor)
            and cursor.scans_multiple_keys()
            and not cursor.at_key_boundary()
        ):
            # Postpone the check until the current key group drains, so a
            # plain ``key > v`` positional predicate suffices (Sec 4.2).
            # Single-value scans ignore the key order entirely and may
            # switch anywhere (their positional predicate is RID-only).
            return False
        pipeline.driving_rows_since_check = 0
        pipeline.catalog.meter.charge_reorder_check()
        self.driving_checks += 1
        assert self._builder is not None
        try:
            if pipeline.catalog.faults is not None:
                pipeline.catalog.faults.fire("controller")
            if config.dynamic_access_path:
                self._refresh_dynamic_specs()
            self._builder.refresh_join_selectivities()
            provider = self._builder.build_provider()
            obs = pipeline.obs
            audit_costs: dict[str, float] | None = (
                {} if obs is not None and obs.audit is not None else None
            )
            new_order = decide_driving_switch(
                pipeline, provider, config, audit_costs=audit_costs
            )
            if obs is not None:
                obs.on_check(
                    "driving",
                    applied=new_order is not None,
                    driving_rows=pipeline.driving_rows_total,
                )
                if obs.audit is not None:
                    self._audit_check(
                        obs.audit,
                        pipeline,
                        provider,
                        check="driving",
                        position=0,
                        new_order=(
                            None if new_order is None else tuple(new_order)
                        ),
                        candidate_costs=audit_costs,
                    )
            if new_order is None:
                return False
            old_order = tuple(pipeline.order)
            pipeline.record_event(
                AdaptationEvent(
                    kind=EventKind.DRIVING_SWITCH,
                    driving_rows_produced=pipeline.driving_rows_total,
                    old_order=old_order,
                    new_order=tuple(new_order),
                    estimated_current_cost=cost_of_order(old_order, provider),
                    estimated_new_cost=cost_of_order(tuple(new_order), provider),
                )
            )
            pipeline.apply_driving_switch(new_order)
        except ReproError as exc:
            raise ExecutionError(
                f"driving-switch check failed (driving leg "
                f"{pipeline.order[0]!r}, order {tuple(pipeline.order)}, "
                f"{pipeline.driving_rows_total} driving rows)"
            ) from exc
        return True

    def _audit_check(
        self,
        audit,
        pipeline: "PipelineExecutor",
        provider,
        *,
        check: str,
        position: int,
        new_order: tuple[str, ...] | None,
        candidate_costs: dict[str, float] | None = None,
    ) -> None:
        """Feed one check's rank-rule inputs to the flight recorder.

        Runs only at the (already metered) check points and reads only the
        memoized cost model + monitor windows — wall-clock cost, zero
        WorkMeter delta. Capture depth follows the decision: **applied**
        checks (the rare ones ``repro replay`` must explain) record the
        full Eq (3) rank terms, the monitors' window estimates, and the
        cost comparison; kept **driving** checks (also rare — once per
        ``check_frequency`` driving rows) keep the candidate cost table,
        a free side product of :func:`decide_driving_switch`. Kept
        *inner* checks — thousands per adaptive query — never reach this
        method at all: they take the tuple-cheap
        :meth:`~repro.obs.recorder.FlightRecording.on_kept` path, which
        is what holds the always-on recorder inside its ≤5% wall budget.
        Advisory like the monitors: a failure here must never degrade or
        abort the query, so everything is swallowed.
        """
        try:
            order = list(pipeline.order)
            applied = new_order is not None
            current_cost: float | None = None
            new_cost: float | None = None
            if check == "driving" and candidate_costs:
                # Side product of decide_driving_switch — already paid for.
                current_cost = candidate_costs.get(order[0])
                new_cost = (
                    candidate_costs.get(new_order[0]) if applied else None
                )
            elif applied:
                current_cost = cost_of_order(tuple(order), provider)
                new_cost = cost_of_order(tuple(new_order), provider)
            audit.on_decision(
                DecisionRecord(
                    check=check,
                    applied=applied,
                    driving_rows=pipeline.driving_rows_total,
                    position=position,
                    order_before=tuple(order),
                    order_after=new_order,
                    rank_terms=(
                        rank_terms_for(order, max(position, 1), provider)
                        if applied
                        else ()
                    ),
                    candidate_costs=dict(candidate_costs or {}),
                    estimated_current_cost=current_cost,
                    estimated_new_cost=new_cost,
                    window=snapshot_legs(pipeline) if applied else {},
                    monitor_granularity=self.config.monitor_granularity,
                )
            )
        except Exception:  # pragma: no cover - advisory-only capture
            logger.exception("decision-audit capture failed (ignored)")

    def _refresh_dynamic_specs(self) -> None:
        """Sec 6 extension: re-pick access paths from monitored locals.

        Only legs that have never driven are eligible — a frozen scan's
        order must stay stable for its positional predicate to remain
        correct.
        """
        pipeline = self._require_pipeline()
        for alias in pipeline.order[1:]:
            if pipeline.registry.has_driven(alias):
                continue
            leg = pipeline.legs[alias]
            spec = dynamic_driving_spec(leg)
            if spec is not None:
                apply_dynamic_spec(leg, spec)
