"""Unit tests for repro.catalog."""

import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.statistics import StatisticsLevel
from repro.errors import CatalogError
from repro.storage.schema import Column
from repro.storage.types import ColumnType


def make_catalog() -> Catalog:
    catalog = Catalog()
    catalog.create_table(
        "t", [Column("id", ColumnType.INT), Column("v", ColumnType.STRING)]
    )
    return catalog


class TestTables:
    def test_create_and_lookup(self):
        catalog = make_catalog()
        assert catalog.table("t").name == "t"
        assert catalog.table_names() == ("t",)

    def test_duplicate_table(self):
        catalog = make_catalog()
        with pytest.raises(CatalogError, match="already exists"):
            catalog.create_table("t", [Column("x", ColumnType.INT)])

    def test_unknown_table(self):
        with pytest.raises(CatalogError, match="unknown table"):
            make_catalog().table("missing")

    def test_shared_meter(self):
        catalog = make_catalog()
        catalog.create_table("u", [Column("x", ColumnType.INT)])
        assert catalog.table("t").meter is catalog.table("u").meter


class TestIndexes:
    def test_create_index(self):
        catalog = make_catalog()
        index = catalog.create_index("t", "id")
        assert catalog.index_on("t", "id") is index
        assert "id" in catalog.indexes_of("t")

    def test_create_index_idempotent(self):
        catalog = make_catalog()
        first = catalog.create_index("t", "id")
        assert catalog.create_index("t", "id") is first

    def test_index_on_missing_column_table(self):
        with pytest.raises(CatalogError):
            make_catalog().index_on("missing", "id")

    def test_index_on_returns_none_without_index(self):
        assert make_catalog().index_on("t", "id") is None


class TestDataAndStats:
    def test_insert_refreshes_indexes(self):
        catalog = make_catalog()
        catalog.create_index("t", "id")
        catalog.insert_many("t", [(2, "b"), (1, "a")])
        assert catalog.index_on("t", "id").lookup_rids(1) == [1]

    def test_stats_none_before_analyze(self):
        catalog = make_catalog()
        assert catalog.stats("t") is None

    def test_analyze_basic(self):
        catalog = make_catalog()
        catalog.insert_many("t", [(1, "a"), (2, "a")])
        catalog.analyze()
        stats = catalog.stats("t")
        assert stats.cardinality == 2
        assert stats.column("v").ndv == 1

    def test_analyze_cardinality_level(self):
        catalog = make_catalog()
        catalog.insert_many("t", [(1, "a")])
        catalog.analyze(level=StatisticsLevel.CARDINALITY)
        stats = catalog.stats("t")
        assert stats.cardinality == 1
        assert stats.column("v") is None

    def test_analyze_detailed_level(self):
        catalog = make_catalog()
        catalog.insert_many("t", [(1, "a"), (2, "a"), (3, "b")])
        catalog.analyze(level=StatisticsLevel.DETAILED)
        stats = catalog.stats("t")
        assert stats.column("v").frequent_values == {"a": 2, "b": 1}

    def test_analyze_single_table(self):
        catalog = make_catalog()
        catalog.create_table("u", [Column("x", ColumnType.INT)])
        catalog.insert_many("t", [(1, "a")])
        catalog.analyze("t")
        assert catalog.stats("t") is not None
        assert catalog.stats("u") is None
