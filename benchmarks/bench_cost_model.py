"""E2 — Fig 1 / Sec 3.2: the pipelined cost model worked example.

The paper's running example (Fig 1) compares two orders of a 4-table
pipeline under Eq (1): the original plan costs 251p and the reordered plan
176p, with every table's probe cost equal to p. This bench evaluates both
orders through the library's cost model and checks the exact totals, and
additionally verifies the ASI/rank machinery: the exhaustive-search optimum
over all connected orders agrees with ascending-rank ordering (Eq 4).
"""

from conftest import emit_report

from repro.bench import format_table
from repro.optimizer import best_order_exhaustive, cost_of_order, greedy_rank_order
from repro.query.joingraph import JoinGraph, JoinPredicate


class Figure1Provider:
    """Fixed (JC, PC) parameters reproducing the Fig 1 numbers.

    All probe costs are p = 1. Join cardinalities depend on which legs
    precede (T3's available predicates differ between the two plans).
    """

    DRIVING = {"T1": 50.0, "T2": 50.0, "T3": 100.0, "T4": 75.0}
    # (alias, preceding set) -> JC; default by alias below.
    JC_BY_CONTEXT = {
        ("T3", frozenset({"T1", "T2"})): 1.0,   # plan (a): T1,T2,T3,T4
        ("T3", frozenset({"T2", "T1", "T4"})): 2.0,  # plan (b): T2,T1,T4,T3
    }
    JC_DEFAULT = {"T1": 1.0, "T2": 2.0, "T3": 2.0, "T4": 1.5}

    def driving_params(self, alias):
        return self.DRIVING[alias], 1.0

    def inner_params(self, alias, bound):
        jc = self.JC_BY_CONTEXT.get((alias, bound), self.JC_DEFAULT[alias])
        return jc, 1.0


def fig1_graph() -> JoinGraph:
    return JoinGraph(
        ["T1", "T2", "T3", "T4"],
        [
            JoinPredicate("T1", "a", "T2", "a"),
            JoinPredicate("T2", "b", "T3", "b"),
            JoinPredicate("T3", "c", "T4", "c"),
            JoinPredicate("T1", "d", "T4", "d"),
        ],
    )


def run_cost_model():
    provider = Figure1Provider()
    plan_a = ("T1", "T2", "T3", "T4")
    plan_b = ("T2", "T1", "T4", "T3")
    cost_a = cost_of_order(plan_a, provider)
    cost_b = cost_of_order(plan_b, provider)
    graph = fig1_graph()
    best, best_cost = best_order_exhaustive(plan_a, graph, provider)
    ranked = greedy_rank_order(best[0], best[1:], graph, provider)
    return cost_a, cost_b, best, best_cost, ranked


def test_fig1_cost_model(benchmark):
    cost_a, cost_b, best, best_cost, ranked = benchmark.pedantic(
        run_cost_model, rounds=1, iterations=1
    )
    report = format_table(
        ["plan", "order", "Eq (1) cost"],
        [
            ("(a) original", "T1,T2,T3,T4", f"{cost_a:.0f}p (paper: 251p)"),
            ("(b) reordered", "T2,T1,T4,T3", f"{cost_b:.0f}p (paper: 176p)"),
            ("exhaustive best", ",".join(best), f"{best_cost:.0f}p"),
        ],
        title="Fig 1 — pipelined cost model worked example",
    )
    emit_report("cost_model", report)
    assert cost_a == 251.0
    assert cost_b == 176.0
    assert best_cost <= cost_b
    # Greedy ascending-rank ordering reproduces the exhaustive optimum for
    # the winning driving leg (the ASI property, Sec 3.3).
    assert ranked == best
