"""The flight recorder: bounded always-on telemetry with offline replay.

Contract under test (the PR's acceptance bar):

* the in-memory ring and the JSONL store are both bounded — an always-on
  recorder cannot grow without limit;
* segment rotation is atomic: readers only ever see finalized
  ``telemetry-NNNNNN.jsonl`` files, never a half-written ``.part``;
* every emitted record validates against the shared schema
  (``repro.obs.schema``), so ``scripts/validate_trace.py`` and the
  recorder cannot drift apart;
* ``repro replay`` reconstructs the **exact** AdaptationEvent sequence of
  the live run from the stored record, annotated with the rank-rule
  inputs captured at each controller check;
* an armed recorder never touches the deterministic WorkMeter and never
  changes a result row (differential vs. an unobserved run).
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro import AdaptiveConfig, QueryObservability, ReorderMode
from repro.dmv import load_dmv, six_table_workload
from repro.obs.analytics import TelemetryAnalytics
from repro.obs.audit import (
    find_record,
    latest_record,
    load_records,
    reconstruct_events,
    render_diff,
    render_listing,
    render_replay,
)
from repro.obs.recorder import (
    FlightRecord,
    FlightRecorder,
    TelemetryStore,
)
from repro.obs.schema import validate_telemetry_record

ADAPTIVE = AdaptiveConfig(mode=ReorderMode.BOTH, check_frequency=2, warmup_rows=2)


@pytest.fixture(scope="module")
def extended_dmv():
    db, _ = load_dmv(scale=0.02, extended=True)
    return db


@pytest.fixture(scope="module")
def adaptive_query(extended_dmv):
    """A six-table query that actually adapts under the aggressive config."""
    for query in six_table_workload(count=8):
        result = extended_dmv.execute(query.sql, ADAPTIVE)
        if result.stats.events:
            return query
    pytest.fail("no query in the six-table sample adapted")


def record_one(db, sql, config=ADAPTIVE, recorder=None) -> FlightRecord:
    recorder = recorder or FlightRecorder()
    bundle = recorder.arm(config)
    result = db.execute(sql, config, obs=bundle)
    return recorder.finish_query(bundle, result, sql=sql, config=config)


# ---------------------------------------------------------------------------
# Ring buffer
# ---------------------------------------------------------------------------
class TestRing:
    def _finish_n(self, recorder, n):
        config = AdaptiveConfig()
        for i in range(n):
            bundle = recorder.arm(config)
            recorder.finish_query(
                bundle, sql=f"SELECT {i}", config=config, outcome="sql_error",
                error=ValueError("synthetic"),
            )

    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=4)
        self._finish_n(recorder, 10)
        recent = recorder.recent()
        assert len(recent) == 4
        assert recorder.recorded_total == 10
        # Newest records survive; oldest were evicted.
        assert recent[-1].sql == "SELECT 9"
        assert recent[0].sql == "SELECT 6"

    def test_query_ids_unique_and_findable(self):
        recorder = FlightRecorder(capacity=8)
        self._finish_n(recorder, 8)
        ids = [record.query_id for record in recorder.recent()]
        assert len(set(ids)) == 8
        assert recorder.find(ids[3]).sql == "SELECT 3"
        assert recorder.find("q-nope") is None

    def test_slow_queue_tracks_threshold(self):
        recorder = FlightRecorder(capacity=8, slow_query_ms=5.0)
        config = AdaptiveConfig()
        for wall in (1.0, 10.0, 3.0, 50.0):
            bundle = recorder.arm(config)
            recorder.finish_query(
                bundle, sql="SELECT 1", config=config, wall_ms=wall
            )
        assert recorder.slow_total == 2
        assert [r.wall_ms for r in recorder.slow_queries()] == [10.0, 50.0]
        assert all(r.slow for r in recorder.slow_queries())

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


# ---------------------------------------------------------------------------
# Rotating store
# ---------------------------------------------------------------------------
class TestTelemetryStore:
    def test_active_segment_is_a_part_file(self, tmp_path):
        store = TelemetryStore(str(tmp_path), max_segment_bytes=1 << 20)
        store.append({"type": "flight", "n": 1})
        names = os.listdir(tmp_path)
        assert names == ["telemetry-000001.jsonl.part"]
        # Readers see nothing until rotation finalizes the segment.
        assert store.segment_paths() == []
        assert TelemetryStore.iter_records(str(tmp_path)) == []
        store.close()
        assert os.listdir(tmp_path) == ["telemetry-000001.jsonl"]
        assert [r["n"] for r in TelemetryStore.iter_records(str(tmp_path))] == [1]

    def test_rotation_by_size_and_retention(self, tmp_path):
        # 1-byte cap: every append rotates; retention keeps the newest 3.
        store = TelemetryStore(str(tmp_path), max_segment_bytes=1, max_segments=3)
        for i in range(7):
            store.append({"type": "flight", "n": i})
        store.close()
        segments = store.segment_paths()
        assert len(segments) == 3
        assert not any(name.endswith(".part") for name in os.listdir(tmp_path))
        assert store.rotations_total == 7
        assert store.appended_total == 7
        # Oldest first; only the newest records survive pruning.
        kept = [r["n"] for r in TelemetryStore.iter_records(str(tmp_path))]
        assert kept == [4, 5, 6]

    def test_reopen_does_not_clobber_existing_segments(self, tmp_path):
        first = TelemetryStore(str(tmp_path), max_segment_bytes=1)
        first.append({"type": "flight", "n": 0})
        first.close()
        second = TelemetryStore(str(tmp_path), max_segment_bytes=1)
        second.append({"type": "flight", "n": 1})
        second.close()
        kept = [r["n"] for r in TelemetryStore.iter_records(str(tmp_path))]
        assert kept == [0, 1]

    def test_malformed_lines_are_skipped_on_read(self, tmp_path):
        path = tmp_path / "telemetry-000001.jsonl"
        path.write_text('{"type":"flight","n":1}\nnot json\n\n{"n":2}\n')
        records = TelemetryStore.iter_records(str(tmp_path))
        assert [r.get("n") for r in records] == [1, 2]

    def test_parameters_validated(self, tmp_path):
        with pytest.raises(ValueError):
            TelemetryStore(str(tmp_path), max_segment_bytes=0)
        with pytest.raises(ValueError):
            TelemetryStore(str(tmp_path), max_segments=0)


# ---------------------------------------------------------------------------
# Recorded queries: schema, passivity, and replay fidelity
# ---------------------------------------------------------------------------
class TestRecordedQuery:
    def test_recorder_bundle_stays_cold(self):
        bundle = FlightRecorder().arm(AdaptiveConfig())
        assert bundle.hot is False
        assert bundle.tracer is None and bundle.metrics is None
        assert bundle.audit is not None

    def test_record_validates_against_shared_schema(
        self, extended_dmv, adaptive_query
    ):
        record = record_one(extended_dmv, adaptive_query.sql)
        # Round-trip through JSON exactly as the store would write it.
        payload = json.loads(json.dumps(record.to_dict(), default=str))
        assert validate_telemetry_record(payload) == []

    def test_zero_work_meter_delta_and_identical_rows(
        self, extended_dmv, adaptive_query
    ):
        baseline = extended_dmv.execute(adaptive_query.sql, ADAPTIVE)
        recorder = FlightRecorder()
        bundle = recorder.arm(ADAPTIVE)
        recorded = extended_dmv.execute(adaptive_query.sql, ADAPTIVE, obs=bundle)
        assert dataclasses.asdict(recorded.stats.work) == dataclasses.asdict(
            baseline.stats.work
        ), "armed recorder changed the deterministic meter"
        assert sorted(recorded.rows) == sorted(baseline.rows)
        assert recorded.stats.events == baseline.stats.events
        assert recorded.final_order == baseline.final_order

    def test_replay_reconstructs_exact_event_sequence(
        self, extended_dmv, adaptive_query
    ):
        """Acceptance: offline replay == the live AdaptationEvent sequence."""
        recorder = FlightRecorder()
        bundle = recorder.arm(ADAPTIVE)
        result = extended_dmv.execute(adaptive_query.sql, ADAPTIVE, obs=bundle)
        record = recorder.finish_query(
            bundle, result, sql=adaptive_query.sql, config=ADAPTIVE
        )
        assert result.stats.events, "fixture promised an adapting query"
        # Round-trip through the wire format before reconstructing.
        restored = FlightRecord.from_dict(
            json.loads(json.dumps(record.to_dict(), default=str))
        )
        replayed = reconstruct_events(restored)
        live = list(result.stats.events)
        assert len(replayed) == len(live)
        for offline, online in zip(replayed, live):
            assert offline.kind == online.kind
            assert offline.driving_rows_produced == online.driving_rows_produced
            assert offline.old_order == online.old_order
            assert offline.new_order == online.new_order
            assert offline.position == online.position
            assert offline.worker == online.worker
            assert offline.estimated_current_cost == pytest.approx(
                online.estimated_current_cost
            )
            assert offline.estimated_new_cost == pytest.approx(
                online.estimated_new_cost
            )

    def test_decisions_carry_rank_rule_inputs(self, extended_dmv, adaptive_query):
        record = record_one(extended_dmv, adaptive_query.sql)
        assert record.decisions, "adaptive run must audit its checks"
        applied = [d for d in record.decisions if d.applied]
        assert applied, "an adapting query must have at least one applied check"
        for decision in applied:
            assert decision.check in ("inner", "driving")
            assert decision.order_after is not None
            assert decision.window, "window estimates missing from decision"
            if decision.check == "inner":
                assert decision.rank_terms, "inner check must carry Eq(3) terms"
            else:
                assert decision.candidate_costs, (
                    "driving check must carry Fig 3 candidate costs"
                )

    def test_legs_report_q_error_vs_prior(self, extended_dmv, adaptive_query):
        record = record_one(extended_dmv, adaptive_query.sql)
        assert set(record.legs) == set(record.final_order)
        q_errors = [
            leg["q_error"] for leg in record.legs.values() if "q_error" in leg
        ]
        assert q_errors, "no leg reported an estimate-vs-actual q-error"
        assert all(q >= 1.0 for q in q_errors)

    def test_normalization_and_template(self, extended_dmv):
        sql = (
            "SELECT   a.id FROM Accidents a, Location l\n"
            "WHERE a.locationid = l.id AND l.state = 'NY'"
        )
        record = record_one(extended_dmv, sql)
        assert "\n" not in record.sql and "  " not in record.sql
        assert "'NY'" not in record.template and "?" in record.template
        # Same shape, different literal -> same template.
        other = record_one(extended_dmv, sql.replace("'NY'", "'CA'"))
        assert other.template == record.template
        assert other.sql != record.sql

    def test_failed_query_still_leaves_a_record(self, extended_dmv):
        from repro.errors import BudgetExceeded
        from repro.robustness.limits import ExecutionLimits

        recorder = FlightRecorder()
        bundle = recorder.arm(ADAPTIVE)
        sql = six_table_workload(count=2)[0].sql
        limits = ExecutionLimits(max_work_units=1.0)
        with pytest.raises(BudgetExceeded) as excinfo:
            extended_dmv.execute(sql, ADAPTIVE, limits=limits, obs=bundle)
        record = recorder.finish_query(
            bundle, sql=sql, config=ADAPTIVE,
            outcome="budget_exceeded", error=excinfo.value, wall_ms=1.5,
        )
        assert record.outcome == "budget_exceeded"
        assert record.error and "BudgetExceeded" in record.error
        assert record.rows == 0 and record.wall_ms == 1.5
        payload = json.loads(json.dumps(record.to_dict(), default=str))
        assert validate_telemetry_record(payload) == []

    def test_audit_composes_with_hot_bundle(self, extended_dmv, adaptive_query):
        """--trace/--metrics plus recorder: audit rides the hot bundle."""
        recorder = FlightRecorder()
        base = QueryObservability.armed(sample_every=5)
        bundle = recorder.arm(ADAPTIVE, base=base)
        assert bundle is base and bundle.hot
        result = extended_dmv.execute(adaptive_query.sql, ADAPTIVE, obs=bundle)
        record = recorder.finish_query(
            bundle, result, sql=adaptive_query.sql, config=ADAPTIVE
        )
        assert record.decisions and result.trace is base.tracer

    def test_decision_cap_truncates_not_grows(self, extended_dmv, adaptive_query):
        recorder = FlightRecorder()
        bundle = recorder.arm(ADAPTIVE, max_decisions=1)
        result = extended_dmv.execute(adaptive_query.sql, ADAPTIVE, obs=bundle)
        record = recorder.finish_query(
            bundle, result, sql=adaptive_query.sql, config=ADAPTIVE
        )
        assert len(record.decisions) == 1
        assert bundle.audit.truncated


# ---------------------------------------------------------------------------
# Offline plane: load / replay / diff / analytics
# ---------------------------------------------------------------------------
class TestOfflinePlane:
    @pytest.fixture(scope="class")
    def recorded_dir(self, tmp_path_factory, extended_dmv):
        directory = str(tmp_path_factory.mktemp("telemetry"))
        recorder = FlightRecorder(
            store=TelemetryStore(directory), slow_query_ms=0.0001
        )
        for query in six_table_workload(count=4):
            record_one(extended_dmv, query.sql, recorder=recorder)
        recorder.close()
        return directory

    def test_load_and_lookup(self, recorded_dir):
        records = load_records(recorded_dir)
        assert len(records) == 4
        assert latest_record(records) is records[-1]
        target = records[1]
        assert find_record(records, target.query_id) is target
        assert find_record(records, "q-missing") is None

    def test_replay_report_names_the_rank_rule(self, recorded_dir, extended_dmv):
        records = load_records(recorded_dir)
        adapted = [r for r in records if r.events]
        assert adapted, "six-table sample should adapt at least once"
        report = render_replay(adapted[0])
        assert f"FLIGHT RECORD {adapted[0].query_id}" in report
        assert "adaptation timeline" in report
        assert "why:" in report
        assert "(SLOW)" in report  # threshold 0.0001ms marks everything slow
        # Rank-rule inputs or Fig 3 candidates appear in the why block.
        assert ("rank terms (Eq 3" in report) or (
            "candidate driving orders (Fig 3" in report
        )

    def test_listing_and_diff(self, recorded_dir):
        records = load_records(recorded_dir)
        listing = render_listing(records)
        assert len(listing.splitlines()) == 1 + len(records)
        for record in records:
            assert record.query_id in listing
        diff = render_diff(records[0], records[1])
        assert f"DIFF {records[0].query_id} vs {records[1].query_id}" in diff
        assert "final_order" in diff
        assert render_listing([]) == "(telemetry store is empty)"

    def test_analytics_aggregates_per_template(self, recorded_dir):
        records = load_records(recorded_dir)
        analytics = TelemetryAnalytics.from_records(records)
        assert analytics.records_total == len(records)
        summary = analytics.as_dict()
        assert summary["records_total"] == len(records)
        total_queries = sum(
            t["queries"] for t in summary["templates"].values()
        )
        assert total_queries == len(records)
        for template in summary["templates"].values():
            assert template["outcomes"].get("ok", 0) == template["queries"]
            assert template["slow_total"] == template["queries"]
        rendered = analytics.render()
        assert "TELEMETRY ANALYTICS" in rendered
        assert "adaptations/query=" in rendered

    def test_feedback_store_input_shape(self, recorded_dir):
        records = load_records(recorded_dir)
        feedback = TelemetryAnalytics.from_records(
            records
        ).per_template_selectivities()
        assert feedback, "no measured selectivities for the feedback loop"
        for legs in feedback.values():
            for selectivity in legs.values():
                assert 0.0 < selectivity
