"""The paper's Example 2: run-time monitoring sees through correlation.

``make = 'Mazda' AND model = '323'`` — every 323 *is* a Mazda, so the
conjunction is exactly as selective as the model predicate alone. A static
optimizer multiplying per-column selectivities (independence assumption)
underestimates the result by an order of magnitude; the run-time monitor
measures the conjunction directly (Eq 6) and gets it right, which is what
lets the adaptive controller re-cost plans correctly mid-query.

Run with::

    python examples/correlated_statistics.py
"""

from repro import AdaptiveConfig, ReorderMode
from repro.core.ranks import measured_combined_local_selectivity
from repro.executor.pipeline import PipelineExecutor
from repro.dmv import load_dmv

SQL = (
    "SELECT o.name, c.year FROM Owner o, Car c "
    "WHERE c.ownerid = o.id AND c.make = 'Mazda' AND c.model = '323'"
)


def main() -> None:
    db, _ = load_dmv(scale=0.05)
    cars = db.catalog.table("Car").raw_rows()
    make_slot = db.catalog.table("Car").schema.position_of("make")
    model_slot = db.catalog.table("Car").schema.position_of("model")

    actual_make = sum(1 for r in cars if r[make_slot] == "Mazda") / len(cars)
    actual_model = sum(1 for r in cars if r[model_slot] == "323") / len(cars)
    actual_both = (
        sum(1 for r in cars if r[make_slot] == "Mazda" and r[model_slot] == "323")
        / len(cars)
    )
    print(f"actual sel(make='Mazda')              = {actual_make:.4f}")
    print(f"actual sel(model='323')               = {actual_model:.4f}")
    print(f"actual sel(make AND model)            = {actual_both:.4f}")
    print(f"independence assumption would predict = {actual_make * actual_model:.6f}")
    print(
        f"  -> under-estimated by {actual_both / (actual_make * actual_model):.1f}x "
        "(the paper reports >13x on the real DMV data)\n"
    )

    # Run the join with Owner driving so Car is monitored as an inner leg,
    # then read the monitored combined selectivity (Eq 6).
    plan = db.plan(SQL)
    order = ("o",) + tuple(a for a in plan.order if a != "o")
    executor = PipelineExecutor(
        plan.with_order(order),
        db.catalog,
        AdaptiveConfig(mode=ReorderMode.MONITOR_ONLY),
    )
    rows = executor.run_to_completion()
    measured = measured_combined_local_selectivity(executor.legs["c"])
    print(f"query returned {len(rows)} rows")
    print(f"monitored combined selectivity (Eq 6) = {measured:.4f}")
    print(
        "The monitor measures the conjunction as a whole, so the "
        "correlation is captured exactly (Sec 4.3.3)."
    )


if __name__ == "__main__":
    main()
