"""Property test: kernel chunk folds == scalar ProbeSample chunk folds.

The chunked vectorized adaptive engine never runs a scalar probe: each
leg's per-chunk :class:`~repro.core.monitor.AggregatedWindow` fold —
``(n, index matches, output rows, work units)`` — is derived from the
columnar index's group-kernel aggregates (``totals`` / ``evals`` /
``pass_offsets`` / ``ev`` / ``pa`` summed over the chunk's key ranks).
The engine's correctness contract is that those folds are *numerically
identical* to what ``AggregatedWindow.observe_chunk`` would receive from
summing scalar per-probe samples: every cost constant is an exact binary
fraction, so the quarter-integer float work sums are equal bit for bit
under any regrouping.

This test checks that equivalence directly against an independent scalar
reimplementation of the probe (entry walk + short-circuit local evals),
over randomized leg shapes: random table sizes, NULL keys in the indexed
column, NULL cells under the local predicates, probe sequences mixing
present keys, missing keys, and NULL keys, and random chunk boundaries
(so window eviction folds whole aggregates on both sides).
"""

from __future__ import annotations

import random

import pytest

from repro.core.monitor import AggregatedWindow
from repro.db import Database
from repro.query.predicates import Between, Comparison, IsNull, Op
from repro.storage.columnar import _np
from repro.storage.compiled import compile_row_test
from repro.storage.counters import (
    INDEX_DESCEND_COST,
    INDEX_ENTRY_COST,
    PREDICATE_EVAL_COST,
    ROW_FETCH_COST,
)

pytestmark = pytest.mark.skipif(
    _np is None, reason="group kernels require numpy"
)

COMPARE_OPS = (Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE)
STRINGS = ("alpha", "beta", "gamma", "")
KEY_SPACE = 15


def random_rows(rng: random.Random, nrows: int) -> list[tuple]:
    rows = []
    for _ in range(nrows):
        k = None if rng.random() < 0.10 else rng.randint(0, KEY_SPACE)
        a = None if rng.random() < 0.15 else rng.randint(-20, 20)
        b = None if rng.random() < 0.15 else round(rng.uniform(-50.0, 50.0), 3)
        s = None if rng.random() < 0.15 else rng.choice(STRINGS)
        rows.append((k, a, b, s))
    return rows


def random_predicate(rng: random.Random):
    column = rng.choice(("a", "b", "s"))
    if column == "s":
        value = rng.choice(STRINGS)
    elif column == "b":
        value = round(rng.uniform(-50.0, 50.0), 3)
    else:
        value = rng.randint(-20, 20)
    shape = rng.randrange(3)
    if shape == 0:
        return Comparison(column, rng.choice(COMPARE_OPS), value)
    if shape == 1 and column != "s":
        low, high = sorted((value, -value if column == "a" else 0.0))
        return Between(column, low, high)
    return IsNull(column, negated=rng.random() < 0.5)


def random_probe_keys(rng: random.Random, n: int) -> list:
    keys = []
    for _ in range(n):
        roll = rng.random()
        if roll < 0.10:
            keys.append(None)  # NULL key: descend only, no entries
        elif roll < 0.30:
            keys.append(rng.randint(KEY_SPACE + 10, KEY_SPACE + 20))  # miss
        else:
            keys.append(rng.randint(0, KEY_SPACE))
    return keys


def scalar_sample(key, lookup, raw, tests):
    """One scalar probe's (index matches, output rows, work units).

    Independent reimplementation of the scalar indexed probe: descend,
    walk the key's entries in entry order, fetch each candidate row, run
    the local tests with short-circuit eval counting.
    """
    if key is None:
        return 0, 0, INDEX_DESCEND_COST
    rids = lookup.get(key, ())
    count = len(rids)
    entries = count if count else 1
    evals = 0
    output = 0
    for rid in rids:
        row = raw[rid]
        for test in tests:
            evals += 1
            if not test(row):
                break
        else:
            output += 1
    work = (
        INDEX_DESCEND_COST
        + entries * INDEX_ENTRY_COST
        + count * ROW_FETCH_COST
        + evals * PREDICATE_EVAL_COST
    )
    return count, output, work


@pytest.mark.parametrize("seed", range(25))
def test_kernel_chunk_folds_match_scalar_probe_folds(seed):
    rng = random.Random(5_151_000 + seed)
    db = Database(backend="columnar")
    db.create_table(
        "t", [("k", "int"), ("a", "int"), ("b", "float"), ("s", "string")]
    )
    db.insert("t", random_rows(rng, rng.randint(1, 150)))
    db.create_index("t", "k")
    table = db.catalog.table("t")
    index = db.catalog.index_on("t", "k")
    schema = table.schema
    raw = table.raw_rows()

    predicates = [random_predicate(rng) for _ in range(rng.randrange(3))]
    local_tests = []
    for predicate in predicates:
        test = compile_row_test(predicate, schema)
        assert test is not None
        test.predicate = predicate  # as RuntimeLeg attaches it
        local_tests.append((predicate, test))
    built = index.cascade_groups(local_tests)
    assert built is not None, "vectorizable leg refused a kernel"
    kernel, _keys_np, rank = built
    tests = [test for _, test in local_tests]
    present_keys = list(rank)
    lookup = index.lookup_rids_batch(present_keys) if present_keys else {}

    window_kernel = AggregatedWindow(size=37)
    window_scalar = AggregatedWindow(size=37)
    kernel_counts = [[0, 0] for _ in tests]
    scalar_counts = [[0, 0] for _ in tests]

    for _ in range(rng.randint(1, 6)):  # several chunks: exercise eviction
        chunk = random_probe_keys(rng, rng.randint(1, 60))
        flow = len(chunk)

        # -- kernel side: the engine's per-chunk aggregate ---------------
        ranks = _np.asarray(
            [-1 if key is None else rank.get(key, -2) for key in chunk],
            dtype=_np.int64,
        )
        present_ranks = ranks[ranks >= 0]
        missing = int(_np.count_nonzero(ranks == -2))
        if len(present_ranks):
            touched = int(kernel.totals[present_ranks].sum())
            evals = int(kernel.evals[present_ranks].sum())
            offsets = kernel.pass_offsets
            output = int(
                (offsets[present_ranks + 1] - offsets[present_ranks]).sum()
            )
            for slot in range(len(tests)):
                kernel_counts[slot][0] += int(
                    kernel.ev[slot][present_ranks].sum()
                )
                kernel_counts[slot][1] += int(
                    kernel.pa[slot][present_ranks].sum()
                )
        else:
            touched = evals = output = 0
        entries = touched + missing
        window_kernel.observe_chunk(
            flow,
            touched,
            output,
            flow * INDEX_DESCEND_COST
            + entries * INDEX_ENTRY_COST
            + touched * ROW_FETCH_COST
            + evals * PREDICATE_EVAL_COST,
        )

        # -- scalar side: sum per-probe samples, fold once ---------------
        sum_matches = 0
        sum_output = 0
        sum_work = 0.0
        for key in chunk:
            matches, out_rows, work = scalar_sample(key, lookup, raw, tests)
            sum_matches += matches
            sum_output += out_rows
            sum_work += work
            if key is not None:
                for slot, test in enumerate(tests):
                    for rid in lookup.get(key, ()):
                        row = raw[rid]
                        ok = True
                        for prior in tests[:slot]:
                            if not prior(row):
                                ok = False
                                break
                        if not ok:
                            continue  # short-circuited before this test
                        scalar_counts[slot][0] += 1
                        if test(row):
                            scalar_counts[slot][1] += 1
        window_scalar.observe_chunk(flow, sum_matches, sum_output, sum_work)

        # Bit-identical at every chunk boundary, not just at the end.
        assert len(window_kernel) == len(window_scalar)
        assert window_kernel.sum_matches == window_scalar.sum_matches
        assert window_kernel.sum_output == window_scalar.sum_output
        assert window_kernel.sum_work == window_scalar.sum_work

    # Per-test (evaluated, passed) local-predicate counters agree too —
    # these feed the controller's rank-rule selectivity estimates.
    assert kernel_counts == scalar_counts
    db.close()


# ---------------------------------------------------------------------------
# Parallel fold-merge: barrier-merged worker folds == the serial fold.
#
# Partitioned execution chunks each worker's partition independently, so a
# partition boundary lands where a serial run's driving chunk would span,
# and a wave barrier can interrupt a worker *inside* a chunk — between
# ``defer_chunk`` and ``flush_chunk`` — leaving a non-empty pending
# accumulator in its snapshot. The merge contract is that summing the
# worker windows plus their pending folds, applied in the serial fold
# order (window contents first, pending aggregate after), reproduces the
# serial monitor bit for bit: every work constant is an exact binary
# fraction, so the float work sums are invariant under any regrouping.
# ---------------------------------------------------------------------------

from repro.core.monitor import LegMonitor  # noqa: E402
from repro.executor.monitor_merge import (  # noqa: E402
    LegWindowSnapshot,
    MonitorSnapshot,
    merge_snapshots,
)


def _random_leg(rng: random.Random):
    """A random columnar leg: (db, raw rows, local tests, rid lookup)."""
    db = Database(backend="columnar")
    db.create_table(
        "t", [("k", "int"), ("a", "int"), ("b", "float"), ("s", "string")]
    )
    db.insert("t", random_rows(rng, rng.randint(1, 120)))
    db.create_index("t", "k")
    table = db.catalog.table("t")
    index = db.catalog.index_on("t", "k")
    raw = table.raw_rows()
    tests = []
    for predicate in (random_predicate(rng) for _ in range(rng.randrange(3))):
        test = compile_row_test(predicate, table.schema)
        assert test is not None
        tests.append(test)
    present = sorted(
        {row[0] for row in raw if row[0] is not None}
    )
    lookup = index.lookup_rids_batch(present) if present else {}
    return db, raw, tests, lookup


def _fold(keys, lookup, raw, tests):
    """Sum scalar probe samples over *keys* into one (n, m, o, w) fold."""
    n = m = o = 0
    w = 0.0
    for key in keys:
        matches, out_rows, work = scalar_sample(key, lookup, raw, tests)
        n += 1
        m += matches
        o += out_rows
        w += work
    return n, m, o, w


def _defer_batches(monitor, keys, rng, lookup, raw, tests):
    """Feed *keys* to the monitor as randomly-sized deferred sub-batches
    (one per parent-batch refill), without flushing."""
    position = 0
    while position < len(keys):
        step = rng.randint(1, max(1, len(keys) - position))
        batch = keys[position:position + step]
        monitor.defer_chunk(*_fold(batch, lookup, raw, tests))
        position += step


def _snapshot(monitor) -> MonitorSnapshot:
    window = monitor.window
    return MonitorSnapshot(
        legs={
            "x": LegWindowSnapshot(
                samples=len(window),
                sum_matches=window.sum_matches,
                sum_output=window.sum_output,
                sum_work=window.sum_work,
                lifetime=window.lifetime_samples,
                pending=monitor.pending_chunk(),
            )
        }
    )


def _inject(merged: LegWindowSnapshot, size: int) -> AggregatedWindow:
    """Apply the ``inject_into_host`` fold order to a fresh window."""
    window = AggregatedWindow(size)
    if merged.samples > 0:
        window.observe_chunk(
            merged.samples,
            merged.sum_matches,
            merged.sum_output,
            merged.sum_work,
        )
    window.lifetime_samples = merged.lifetime
    if merged.pending[0] > 0:
        window.observe_chunk(*merged.pending)
        window.lifetime_samples = merged.lifetime + merged.pending[0]
    return window


@pytest.mark.parametrize("seed", range(15))
def test_barrier_fold_merge_matches_serial_fold(seed):
    """N workers chunking a partitioned probe stream independently —
    partition boundaries splitting serial chunks, barriers landing inside
    worker chunks — merge to the serial monitor's exact window sums."""
    rng = random.Random(7_272_000 + seed)
    db, raw, tests, lookup = _random_leg(rng)
    stream = random_probe_keys(rng, rng.randint(20, 120))
    window_size = 100_000  # no eviction: totals compare fold-for-fold

    # Serial reference: driving chunks of random width, each deferred as
    # sub-batches (parent-batch refills) and flushed at the boundary.
    serial = LegMonitor(window=window_size, aggregated=True)
    position = 0
    boundaries = []
    while position < len(stream):
        width = rng.randint(1, 16)
        chunk = stream[position:position + width]
        boundaries.append(position)
        _defer_batches(serial, chunk, rng, lookup, raw, tests)
        serial.flush_chunk()
        position += len(chunk)

    # Parallel: contiguous partitions whose boundaries deliberately avoid
    # the serial chunk boundaries where possible, so serial chunks span
    # workers; each worker chunks its own partition and leaves its final
    # partial chunk deferred (a barrier landing mid-chunk).
    workers = rng.randint(2, 4)
    cuts = sorted(
        rng.sample(range(1, len(stream)), min(workers - 1, len(stream) - 1))
    )
    partitions = [
        stream[start:stop]
        for start, stop in zip([0] + cuts, cuts + [len(stream)])
    ]
    snapshots = []
    saw_pending = False
    for partition in partitions:
        monitor = LegMonitor(window=window_size, aggregated=True)
        position = 0
        while position < len(partition):
            width = rng.randint(1, 16)
            chunk = partition[position:position + width]
            _defer_batches(monitor, chunk, rng, lookup, raw, tests)
            position += len(chunk)
            if position < len(partition):
                monitor.flush_chunk()  # chunk boundary inside the partition
        saw_pending = saw_pending or monitor.pending_chunk()[0] > 0
        snapshots.append(_snapshot(monitor))
    assert saw_pending, "no worker snapshot carried a deferred fold"

    merged = merge_snapshots(snapshots).legs["x"]
    host = _inject(merged, window_size)
    assert len(host) == len(serial.window)
    assert host.lifetime_samples == serial.window.lifetime_samples
    assert host.sum_matches == serial.window.sum_matches
    assert host.sum_output == serial.window.sum_output
    assert host.sum_work == serial.window.sum_work  # bit-identical floats
    db.close()


def test_partition_boundary_splits_chunk_pending_merge():
    """Deterministic split-chunk case: one serial chunk of NULL, missing,
    and present keys lands across two workers, both interrupted before
    flushing — the merged pending folds reproduce the serial flush."""
    rng = random.Random(424_242)
    db, raw, tests, lookup = _random_leg(rng)
    present = [key for key in lookup if lookup[key]][:2] or [0]
    chunk = [None, present[0], KEY_SPACE + 12, present[-1], None, 3]

    serial = LegMonitor(window=64, aggregated=True)
    serial.defer_chunk(*_fold(chunk, lookup, raw, tests))
    serial.flush_chunk()

    left = LegMonitor(window=64, aggregated=True)
    left.defer_chunk(*_fold(chunk[:2], lookup, raw, tests))
    left.defer_chunk(*_fold(chunk[2:3], lookup, raw, tests))
    right = LegMonitor(window=64, aggregated=True)
    right.defer_chunk(*_fold(chunk[3:], lookup, raw, tests))
    assert left.pending_chunk()[0] == 3
    assert right.pending_chunk()[0] == 3

    merged = merge_snapshots([_snapshot(left), _snapshot(right)]).legs["x"]
    assert merged.samples == 0  # nothing reached a window: all pending
    assert merged.pending[0] == len(chunk)
    host = _inject(merged, 64)
    assert len(host) == len(serial.window)
    assert host.lifetime_samples == serial.window.lifetime_samples
    assert host.sum_matches == serial.window.sum_matches
    assert host.sum_output == serial.window.sum_output
    assert host.sum_work == serial.window.sum_work
    db.close()
