"""Behavioral tests for the adaptation controller."""

import pytest

from repro import AdaptiveConfig, ReorderMode
from repro.core.config import InnerReorderPolicy
from repro.core.controller import AdaptationController
from repro.errors import ExecutionError

from tests.conftest import build_three_table_db


def execute(db, sql, **config_kwargs):
    config = AdaptiveConfig(**config_kwargs)
    return db.execute(sql, config)


SKEW_SQL = (
    "SELECT o.name FROM Owner o, Car c, Demo d "
    "WHERE c.ownerid = o.id AND o.id = d.ownerid "
    "AND c.make = 'Rare' AND o.country = 'DE' AND d.salary < 70000"
)


class TestModeGating:
    def test_none_mode_never_switches(self, three_table_db):
        result = execute(three_table_db, SKEW_SQL, mode=ReorderMode.NONE)
        assert result.stats.total_switches == 0
        assert result.stats.inner_checks == 0
        assert result.stats.driving_checks == 0

    def test_monitor_only_checks_nothing(self, three_table_db):
        result = execute(three_table_db, SKEW_SQL, mode=ReorderMode.MONITOR_ONLY)
        assert result.stats.total_switches == 0
        # Monitoring happened (work was charged) but no checks ran.
        assert result.stats.work.monitor_updates > 0
        assert result.stats.driving_checks == 0

    def test_inner_only_never_switches_driving(self, three_table_db):
        result = execute(
            three_table_db,
            SKEW_SQL,
            mode=ReorderMode.INNER_ONLY,
            check_frequency=1,
            warmup_rows=1,
        )
        assert result.stats.driving_switches == 0
        assert result.final_order[0] == result.stats.order_history[0][0]

    def test_driving_only_full_reorder_on_switch(self):
        # DRIVING_ONLY may rearrange inners, but only as part of a driving
        # switch (Fig 3 step 5) — no standalone inner reorders.
        db = build_three_table_db(owners=400, seed=2)
        result = execute(
            db, SKEW_SQL, mode=ReorderMode.DRIVING_ONLY, warmup_rows=5
        )
        assert result.stats.inner_reorders == 0


class TestCheckFrequency:
    def test_no_checks_before_c_rows(self):
        db = build_three_table_db(owners=300, seed=2)
        result = execute(
            db, SKEW_SQL, mode=ReorderMode.BOTH, check_frequency=10**6
        )
        assert result.stats.driving_checks == 0
        assert result.stats.inner_checks == 0

    def test_smaller_c_checks_more(self):
        db = build_three_table_db(owners=300, seed=2)
        frequent = execute(
            db, SKEW_SQL, mode=ReorderMode.MONITOR_ONLY
        )
        del frequent
        few = execute(db, SKEW_SQL, mode=ReorderMode.BOTH, check_frequency=50)
        many = execute(db, SKEW_SQL, mode=ReorderMode.BOTH, check_frequency=2)
        assert many.stats.driving_checks >= few.stats.driving_checks

    def test_check_charges_work(self):
        db = build_three_table_db(owners=300, seed=2)
        result = execute(db, SKEW_SQL, mode=ReorderMode.BOTH, check_frequency=2)
        if result.stats.driving_checks or result.stats.inner_checks:
            assert result.stats.work.reorder_checks > 0


class TestAttachment:
    def test_unattached_controller_raises(self):
        controller = AdaptationController(AdaptiveConfig())
        with pytest.raises(ExecutionError, match="not attached"):
            controller.on_pipeline_depleted()


class TestSkewScenario:
    """The headline behaviour: a skew-fooled plan is corrected at run time."""

    @pytest.fixture(scope="class")
    def skew_db(self):
        return build_three_table_db(owners=2000, seed=42)

    def test_driving_switch_fires_and_wins(self, skew_db):
        static = execute(skew_db, SKEW_SQL, mode=ReorderMode.NONE)
        adaptive = execute(skew_db, SKEW_SQL, mode=ReorderMode.BOTH)
        assert sorted(static.rows) == sorted(adaptive.rows)
        assert adaptive.stats.driving_switches >= 1
        assert adaptive.stats.total_work < static.stats.total_work
        # The switch must have moved the rare-make Car leg to the front.
        assert adaptive.final_order[0] == "c"

    def test_exhaustive_policy_also_wins(self, skew_db):
        static = execute(skew_db, SKEW_SQL, mode=ReorderMode.NONE)
        adaptive = execute(
            skew_db,
            SKEW_SQL,
            mode=ReorderMode.BOTH,
            inner_policy=InnerReorderPolicy.EXHAUSTIVE,
        )
        assert sorted(static.rows) == sorted(adaptive.rows)
        assert adaptive.stats.total_work < static.stats.total_work

    def test_anti_thrash_limits_switches(self, skew_db):
        adaptive = execute(
            skew_db,
            SKEW_SQL,
            mode=ReorderMode.BOTH,
            history_window=20,
            check_frequency=2,
            warmup_rows=2,
        )
        # Even with a tiny window, the escalating re-switch penalty must
        # keep the driving leg from ping-ponging indefinitely.
        assert adaptive.stats.driving_switches <= 6


class TestKeyBoundaryVariant:
    def test_results_match_and_switches_possible(self):
        db = build_three_table_db(owners=1500, seed=9)
        sql = (
            "SELECT o.name FROM Owner o, Car c, Demo d "
            "WHERE c.ownerid = o.id AND o.id = d.ownerid "
            "AND c.make = 'Rare' AND d.salary BETWEEN 20000 AND 90000"
        )
        static = execute(db, sql, mode=ReorderMode.NONE)
        boundary = execute(
            db, sql, mode=ReorderMode.BOTH, switch_at_key_boundary=True
        )
        assert sorted(static.rows) == sorted(boundary.rows)


class TestDynamicAccessPath:
    def test_results_match(self):
        db = build_three_table_db(owners=1500, seed=13)
        static = execute(db, SKEW_SQL, mode=ReorderMode.NONE)
        dynamic = execute(
            db, SKEW_SQL, mode=ReorderMode.BOTH, dynamic_access_path=True
        )
        assert sorted(static.rows) == sorted(dynamic.rows)
