"""The asyncio query server: sessions, worker slots, drain, live stats.

Topology::

    client ──NDJSON──▶ connection handler ──▶ admission ──▶ fair scheduler
                                                │ reject            │
                                                ▼                   ▼
                                            response ◀── worker slot × N
                                                             │ to_thread
                                                             ▼
                                              DatabaseEngine (plan cache +
                                              thread-scoped meter + limits)

* The **connection handler** (one per client) only parses, admits, and
  enqueues — it never blocks on the engine, so a slow query cannot stall
  another client's rejections or pings.
* **Worker slots** are ``max_concurrency`` asyncio tasks — the admission
  semaphore in loop form. Each pulls the next query in round-robin
  session order, applies the degradation ladder at *dequeue* time (the
  pressure reading is freshest there), and runs the engine in a thread.
* The **engine** executes with server-clamped
  :class:`~repro.robustness.limits.ExecutionLimits` wired to the
  request's :class:`~repro.robustness.limits.CancellationToken`; a client
  disconnect cancels its in-flight queries cooperatively at the next
  pipeline safe point or parallel wave barrier.
* **SIGTERM/SIGINT** start a drain: the listener closes, new queries get
  ``SHUTTING_DOWN``, in-flight queries finish (bounded by a grace
  period, then cancelled), and ``serve_forever`` returns 0.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import signal
import threading
import time
from dataclasses import dataclass
from typing import Any

from repro.db import Database
from repro.errors import (
    BudgetExceeded,
    CatalogError,
    PlanError,
    QueryError,
    ReproError,
    SchemaError,
)
from repro.executor.parallel import catalog_generation
from repro.obs.metrics import MetricsRegistry, record_storage_gauges
from repro.obs.recorder import FlightRecorder, TelemetryStore
from repro.robustness.limits import CancellationToken, ExecutionLimits
from repro.server.admission import (
    AdmissionController,
    SHED_SERIAL,
    SHED_STATIC,
    ServerConfig,
)
from repro.server.plancache import PlanCache
from repro.server.protocol import (
    MAX_LINE_BYTES,
    ErrorCode,
    ProtocolError,
    decode_request,
    encode_response,
    error_response,
    ok_response,
    parse_query_request,
)
from repro.server.scheduler import FairScheduler
from repro.server.session import PendingQuery, Session, TokenBucket

logger = logging.getLogger(__name__)

#: End-to-end latency buckets (ms), admission to response.
LATENCY_BUCKETS_MS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    500.0, 1000.0, 2500.0, 5000.0, 10000.0, 30000.0,
)


@dataclass(frozen=True)
class EngineResult:
    """What one engine execution produced, ready for serialization."""

    rows: list[tuple]
    work_units: float
    wall_ms: float
    switches: int
    degraded: bool
    workers: int
    plan_cache: str  # hit / miss / wait / off
    # Which execution engine ran (ExecutionStats.engine) — lets load
    # clients assert parallel-vector engagement from the stats op.
    engine: str = "scalar"
    # Flight-recorder context (None/0 when the engine records nothing).
    query_id: str | None = None
    slow: bool = False
    probe_cache_hits: int = 0
    probe_cache_misses: int = 0


class DatabaseEngine:
    """Thread-side adapter: plan cache + scoped metering + execution.

    ``execute`` runs on worker threads (via ``asyncio.to_thread``); all
    shared state it touches is thread-safe: the plan cache locks, the
    thread-scoped meter isolates per-query work accounting, and parallel
    (fork-pool) executions are serialized by a mutex because the pool is
    one shared resource.
    """

    def __init__(self, db: Database, config: ServerConfig) -> None:
        self.db = db
        self.config = config
        self.plan_cache = PlanCache(config.plan_cache_size)
        self.meter = db.enable_concurrent_metering()
        self._parallel_mutex = threading.Lock()
        # Always-on flight recorder: every served query leaves a bounded
        # record; a telemetry directory adds the rotating JSONL store.
        store = (
            TelemetryStore(
                config.telemetry_dir,
                max_segment_bytes=config.telemetry_segment_bytes,
                max_segments=config.telemetry_segments,
            )
            if config.telemetry_dir
            else None
        )
        self.recorder = FlightRecorder(
            capacity=config.telemetry_ring,
            store=store,
            slow_query_ms=config.slow_query_ms,
        )
        # Fold rows appended after index creation so the first concurrent
        # queries cannot race a lazy refresh.
        for name in db.catalog.table_names():
            for index in db.catalog.indexes_of(name).values():
                index.refresh()

    def _classify(self, error: BaseException, limits: ExecutionLimits) -> str:
        if isinstance(error, BudgetExceeded):
            token = limits.cancellation
            if token is not None and token.cancelled:
                return "cancelled"
            return "budget_exceeded"
        if isinstance(error, (QueryError, PlanError, CatalogError, SchemaError)):
            return "sql_error"
        return "internal_error"

    def execute(
        self,
        sql: str,
        config,
        limits: ExecutionLimits,
        context: dict | None = None,
    ) -> EngineResult:
        context = context or {}
        # Recorder-only bundle: the decision audit is armed but the bundle
        # stays cold, so the executor keeps its batched fast paths and the
        # deterministic WorkMeter sees zero extra charges. Armed before
        # planning so rejected statements leave flight records too.
        bundle = self.recorder.arm(config)
        started = time.perf_counter()
        try:
            generation = catalog_generation(self.db.catalog)
            plan, outcome = self.plan_cache.get_or_plan(
                sql, generation, self.db.plan
            )
            if self.plan_cache.capacity <= 0:
                outcome = "off"
            with self.meter.scoped():
                if config.workers > 1:
                    with self._parallel_mutex:
                        result = self.db.execute(
                            plan, config, limits=limits, obs=bundle
                        )
                else:
                    result = self.db.execute(
                        plan, config, limits=limits, obs=bundle
                    )
        except BaseException as error:
            self.recorder.finish_query(
                bundle,
                sql=sql,
                config=config,
                outcome=self._classify(error, limits),
                error=error,
                wall_ms=(time.perf_counter() - started) * 1000.0,
                **context,
            )
            raise
        record = self.recorder.finish_query(
            bundle, result, sql=sql, config=config, **context
        )
        return EngineResult(
            rows=result.rows,
            work_units=result.stats.total_work,
            wall_ms=result.stats.wall_seconds * 1000.0,
            switches=result.stats.total_switches,
            degraded=result.stats.degraded,
            workers=result.stats.workers,
            plan_cache=outcome,
            engine=result.stats.engine,
            query_id=record.query_id,
            slow=record.slow,
            probe_cache_hits=result.stats.work.probe_cache_hits,
            probe_cache_misses=result.stats.work.probe_cache_misses,
        )


class QueryServer:
    """One serving instance over one :class:`~repro.db.Database`."""

    def __init__(
        self,
        db: Database,
        config: ServerConfig | None = None,
        *,
        engine: Any | None = None,
    ) -> None:
        self.db = db
        self.config = config or ServerConfig()
        self.admission = AdmissionController(self.config)
        self.scheduler = FairScheduler()
        self.engine = engine if engine is not None else DatabaseEngine(
            db, self.config
        )
        self.metrics = MetricsRegistry()
        self.sessions: dict[int, Session] = {}
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._server: asyncio.AbstractServer | None = None
        self._workers: list[asyncio.Task] = []
        self._done = asyncio.Event()
        self._draining = False
        self._started_at = time.monotonic()
        self.protocol_errors = 0
        self.exit_code = 0

    # -- lifecycle -----------------------------------------------------
    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_LINE_BYTES,
        )
        self._started_at = time.monotonic()
        self._workers = [
            asyncio.create_task(self._worker_loop(), name=f"query-slot-{i}")
            for i in range(self.config.max_concurrency)
        ]

    async def serve_forever(
        self,
        *,
        install_signals: bool = True,
        on_ready: Any | None = None,
    ) -> int:
        """Run until SIGTERM/SIGINT drains the server; returns exit code.

        *on_ready* (if given) is called with the server once the listener
        is bound — the point at which :attr:`port` is known.
        """
        await self.start()
        if on_ready is not None:
            on_ready(self)
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError):
                    loop.add_signal_handler(
                        signum,
                        lambda s=signum: asyncio.ensure_future(
                            self.shutdown(reason=signal.Signals(s).name)
                        ),
                    )
        await self._done.wait()
        return self.exit_code

    async def shutdown(
        self, *, grace: float | None = None, reason: str = "shutdown"
    ) -> None:
        """Drain-then-exit: stop intake, finish in-flight, then stop."""
        if self._draining:
            return
        self._draining = True
        self.admission.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        grace = self.config.drain_grace_seconds if grace is None else grace
        loop = asyncio.get_running_loop()
        deadline = loop.time() + grace
        while (
            self.admission.in_flight > 0 or self.scheduler.pending > 0
        ) and loop.time() < deadline:
            await asyncio.sleep(0.02)
        if self.admission.in_flight > 0:
            # Grace expired: cancel stragglers cooperatively and let the
            # worker slots return their BUDGET_EXCEEDED responses.
            for session in list(self.sessions.values()):
                for token in tuple(session.in_flight):
                    token.cancel(f"server draining ({reason})")
            cancel_deadline = loop.time() + max(grace, 1.0)
            while self.admission.in_flight > 0 and loop.time() < cancel_deadline:
                await asyncio.sleep(0.02)
        await self.scheduler.stop()
        # Bound the final drain by the grace window: a query sitting
        # between cooperative safe points must not keep serve_forever
        # alive until its own (up to 60s) timeout fires.
        if self._workers:
            _, stragglers = await asyncio.wait(
                self._workers, timeout=max(grace, 1.0)
            )
            for task in stragglers:
                task.cancel()
            if stragglers:
                await asyncio.gather(*stragglers, return_exceptions=True)
        for writer in list(self._writers.values()):
            with contextlib.suppress(Exception):
                writer.close()
        # Finalize the telemetry store's active segment so a drained
        # server leaves only complete ``.jsonl`` segments behind.
        recorder = getattr(self.engine, "recorder", None)
        if recorder is not None:
            with contextlib.suppress(Exception):
                recorder.close()
        self._done.set()

    # -- connection handling -------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        session = Session(
            peer=str(peername),
            bucket=TokenBucket(
                self.config.rate_limit_qps, self.config.rate_limit_burst
            ),
        )
        write_lock = asyncio.Lock()

        async def send(payload: dict) -> None:
            if writer.is_closing():
                return
            async with write_lock:
                writer.write(encode_response(payload))
                with contextlib.suppress(ConnectionError):
                    await writer.drain()

        session.send = send
        self.sessions[session.session_id] = session
        self._writers[session.session_id] = writer
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                    ConnectionError,
                ):
                    break
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                await self._dispatch(session, line)
        finally:
            dropped = session.disconnect()
            dropped += await self.scheduler.remove_session(session)
            if dropped:
                self.admission.on_dequeued(dropped)
                self.metrics.counter("server_dropped_on_disconnect_total").inc(
                    amount=dropped
                )
            self.sessions.pop(session.session_id, None)
            self._writers.pop(session.session_id, None)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(self, session: Session, line: bytes) -> None:
        send = session.send
        assert send is not None
        try:
            msg = decode_request(line)
        except ProtocolError as error:
            self.protocol_errors += 1
            await send(
                error_response(None, ErrorCode.BAD_REQUEST, str(error))
            )
            return
        op = msg["op"]
        request_id = msg.get("id")
        if op == "ping":
            await send({"id": request_id, "status": "ok", "pong": True})
            return
        if op == "stats":
            await send(
                {"id": request_id, "status": "ok", "stats": self.stats_payload()}
            )
            return
        if op == "telemetry":
            await send(self._telemetry_response(request_id, msg))
            return
        if op != "query":
            self.protocol_errors += 1
            await send(
                error_response(
                    request_id, ErrorCode.BAD_REQUEST, f"unknown op {op!r}"
                )
            )
            return
        try:
            request = parse_query_request(msg)
        except ProtocolError as error:
            self.protocol_errors += 1
            await send(
                error_response(request_id, ErrorCode.BAD_REQUEST, str(error))
            )
            return
        decision = self.admission.submit(session)
        if not decision.admitted:
            self.metrics.counter("server_rejections_total").inc(
                decision.reject_code or "unknown"
            )
            await send(
                error_response(
                    request_id,
                    decision.reject_code or ErrorCode.INTERNAL,
                    decision.reject_reason or "rejected",
                )
            )
            return
        session.submitted += 1
        pending = PendingQuery(
            request=request,
            session=session,
            token=CancellationToken(),
            enqueued_at=time.perf_counter(),
        )
        await self.scheduler.enqueue(pending)

    # -- worker slots ---------------------------------------------------
    async def _worker_loop(self) -> None:
        while True:
            pending = await self.scheduler.next()
            if pending is None:
                return
            self.admission.on_dequeued()
            session = pending.session
            if session.closed or pending.token.cancelled:
                continue
            try:
                await self._run_one(pending)
            except asyncio.CancelledError:
                raise
            except Exception as error:
                # A fault outside _run_one's own try block (shed/limits
                # computation, metrics, or sending the response) must not
                # kill this query slot — that would silently shrink server
                # concurrency and leave the client without a response.
                logger.exception(
                    "query slot fault while serving %s", session.name
                )
                self.metrics.counter("server_worker_faults_total").inc()
                send = session.send
                if send is not None:
                    with contextlib.suppress(Exception):
                        await send(
                            error_response(
                                pending.request.request_id,
                                ErrorCode.INTERNAL,
                                f"worker fault: "
                                f"{type(error).__name__}: {error}",
                            )
                        )

    async def _run_one(self, pending: PendingQuery) -> None:
        session = pending.session
        request = pending.request
        shed = self.admission.shed_level()
        applied = self.admission.apply_shed(request, shed)
        limits, _ = self.admission.build_limits(
            request, applied, token=pending.token
        )
        self.admission.in_flight += 1
        session.in_flight.add(pending.token)
        queued_ms = (time.perf_counter() - pending.enqueued_at) * 1000.0
        outcome = "ok"
        # The real engine records a flight record per query; give it the
        # serving context (session, shed rung, queue wait). Test doubles
        # without a recorder keep the plain 3-argument call.
        kwargs = (
            {
                "context": {
                    "session": session.name,
                    "shed": shed,
                    "queued_ms": round(queued_ms, 3),
                }
            }
            if getattr(self.engine, "recorder", None) is not None
            else {}
        )
        try:
            result = await asyncio.to_thread(
                self.engine.execute, request.sql, applied, limits, **kwargs
            )
            stats = {
                "work_units": round(result.work_units, 3),
                "wall_ms": round(result.wall_ms, 3),
                "queued_ms": round(queued_ms, 3),
                "switches": result.switches,
                "degraded": result.degraded,
                "mode": applied.mode.value,
                "workers": result.workers,
                "shed": shed,
                "plan_cache": result.plan_cache,
                "engine": getattr(result, "engine", "scalar"),
            }
            self.metrics.counter("server_engine_total").inc(stats["engine"])
            query_id = getattr(result, "query_id", None)
            if query_id is not None:
                stats["query_id"] = query_id
            payload = ok_response(request.request_id, result.rows, stats)
            self.metrics.counter("server_rows_returned_total").inc(
                amount=len(result.rows)
            )
            if getattr(result, "slow", False):
                self.metrics.counter("server_slow_queries_total").inc()
            hits = getattr(result, "probe_cache_hits", 0)
            misses = getattr(result, "probe_cache_misses", 0)
            if hits:
                self.metrics.counter("server_probe_cache_hits_total").inc(
                    amount=hits
                )
            if misses:
                self.metrics.counter("server_probe_cache_misses_total").inc(
                    amount=misses
                )
        except BudgetExceeded as error:
            if pending.token.cancelled:
                outcome = "cancelled"
                code = ErrorCode.CANCELLED
            else:
                outcome = "budget_exceeded"
                code = ErrorCode.BUDGET_EXCEEDED
            payload = error_response(
                request.request_id,
                code,
                error.progress_summary(),
                progress={
                    "rows_emitted": error.rows_emitted,
                    "work_units": round(error.work_units, 3),
                    "elapsed_ms": round(error.elapsed_seconds * 1000.0, 3),
                    "driving_rows": error.driving_rows,
                },
            )
        except (QueryError, PlanError, CatalogError, SchemaError) as error:
            outcome = "sql_error"
            payload = error_response(
                request.request_id, ErrorCode.SQL_ERROR, str(error)
            )
        except ReproError as error:
            outcome = "internal_error"
            payload = error_response(
                request.request_id, ErrorCode.INTERNAL, str(error)
            )
        except Exception as error:  # engine bug: answer, keep the slot alive
            outcome = "internal_error"
            payload = error_response(
                request.request_id,
                ErrorCode.INTERNAL,
                f"{type(error).__name__}: {error}",
            )
        finally:
            self.admission.in_flight -= 1
            session.in_flight.discard(pending.token)
        session.completed += 1
        self.metrics.counter("server_queries_total").inc(outcome)
        if shed != "none":
            self.metrics.counter("server_shed_total").inc(shed)
        self.metrics.histogram(
            "server_latency_ms", LATENCY_BUCKETS_MS
        ).observe((time.perf_counter() - pending.enqueued_at) * 1000.0)
        send = session.send
        if send is not None:
            await send(payload)

    # -- telemetry -------------------------------------------------------
    def _telemetry_response(self, request_id: Any, msg: dict) -> dict:
        """The ``telemetry`` op: flight-record summaries or exposition.

        ``format: "prometheus"`` returns the server metrics registry in
        Prometheus text exposition; the default JSON form returns recorder
        counters plus bounded summaries of the recent and slow rings.
        """
        if msg.get("format") == "prometheus":
            return {
                "id": request_id,
                "status": "ok",
                "exposition": self.metrics.render_prometheus(),
            }
        recorder = getattr(self.engine, "recorder", None)
        if recorder is None:
            return error_response(
                request_id, ErrorCode.BAD_REQUEST, "engine has no flight recorder"
            )
        limit = msg.get("limit")
        if limit is not None and (
            isinstance(limit, bool) or not isinstance(limit, int) or limit < 1
        ):
            return error_response(
                request_id, ErrorCode.BAD_REQUEST, "limit must be an int >= 1"
            )
        limit = limit or 20

        def summary(record) -> dict:
            return {
                "query_id": record.query_id,
                "ts": record.ts,
                "template": record.template,
                "outcome": record.outcome,
                "wall_ms": round(record.wall_ms, 3),
                "work_units": round(record.work_units, 3),
                "rows": record.rows,
                "adaptations": record.adaptations,
                "decisions": len(record.decisions),
                "slow": record.slow,
                "session": record.session,
                "shed": record.shed,
            }

        store = recorder.store
        return {
            "id": request_id,
            "status": "ok",
            "telemetry": {
                "recorded_total": recorder.recorded_total,
                "slow_total": recorder.slow_total,
                "slow_query_ms": recorder.slow_query_ms,
                "store": (
                    {
                        "directory": store.directory,
                        "segments": len(store.segment_paths()),
                        "appended_total": store.appended_total,
                        "rotations_total": store.rotations_total,
                    }
                    if store is not None
                    else None
                ),
                "recent": [summary(r) for r in recorder.recent(limit)],
                "slow": [summary(r) for r in recorder.slow_queries(limit)],
            },
        }

    # -- stats -----------------------------------------------------------
    def stats_payload(self) -> dict:
        """The live ``stats`` document (see scripts/validate_stats.py)."""
        admission = self.admission
        config = self.config
        queries = self.metrics.counter("server_queries_total")
        latency = self.metrics.histogram(
            "server_latency_ms", LATENCY_BUCKETS_MS
        )
        self.metrics.gauge("server_queue_depth").set(admission.queued)
        self.metrics.gauge("server_in_flight").set(admission.in_flight)
        plan_cache = getattr(self.engine, "plan_cache", None)
        recorder = getattr(self.engine, "recorder", None)
        slow_counter = self.metrics.counter("server_slow_queries_total")
        if self.db is not None:
            storage = self.db.storage_stats()
        else:  # engine-only server (tests/stubs): nothing to report
            storage = {
                "backend": "none",
                "total_bytes": 0,
                "table_count": 0,
                "kernel_plan_bytes": 0,
                "per_table": [],
            }
        record_storage_gauges(self.metrics, storage)
        return {
            "server": {
                "uptime_s": round(time.monotonic() - self._started_at, 3),
                "sessions": len(self.sessions),
                "draining": self._draining,
                "protocol_errors": self.protocol_errors,
            },
            "admission": {
                "in_flight": admission.in_flight,
                "queue_depth": admission.queued,
                "max_concurrency": config.max_concurrency,
                "max_queue_depth": config.max_queue_depth,
                "accepted_total": admission.accepted_total,
                "rejected_overload_total": admission.rejected_overload_total,
                "rejected_rate_limit_total": admission.rejected_rate_limit_total,
                "rejected_draining_total": admission.rejected_draining_total,
                "shed_serial_total": admission.shed_totals[SHED_SERIAL],
                "shed_static_total": admission.shed_totals[SHED_STATIC],
            },
            "latency_ms": {
                "count": latency.count(),
                "mean": latency.mean(),
                "p50": latency.quantile(0.50),
                "p95": latency.quantile(0.95),
                "p99": latency.quantile(0.99),
            },
            "queries": {
                "ok_total": queries.value("ok"),
                "budget_exceeded_total": queries.value("budget_exceeded"),
                "cancelled_total": queries.value("cancelled"),
                "sql_error_total": queries.value("sql_error"),
                "internal_error_total": queries.value("internal_error"),
                "rows_returned_total": self.metrics.counter(
                    "server_rows_returned_total"
                ).total,
                "dropped_on_disconnect_total": self.metrics.counter(
                    "server_dropped_on_disconnect_total"
                ).total,
            },
            "plan_cache": (
                plan_cache.stats()
                if plan_cache is not None
                else {
                    "size": 0, "capacity": 0, "hits": 0, "misses": 0,
                    "single_flight_waits": 0, "evictions": 0,
                    "invalidations": 0,
                }
            ),
            "telemetry": {
                "recorded_total": (
                    recorder.recorded_total if recorder is not None else 0
                ),
                "slow_total": (
                    recorder.slow_total if recorder is not None else 0
                ),
                "slow_queries_total": slow_counter.total,
                "probe_cache_hits_total": self.metrics.counter(
                    "server_probe_cache_hits_total"
                ).total,
                "probe_cache_misses_total": self.metrics.counter(
                    "server_probe_cache_misses_total"
                ).total,
                "store_segments": (
                    len(recorder.store.segment_paths())
                    if recorder is not None and recorder.store is not None
                    else 0
                ),
            },
            "storage": {
                "backend": storage["backend"],
                "total_bytes": storage["total_bytes"],
                "table_count": storage["table_count"],
                "kernel_plan_bytes": storage.get("kernel_plan_bytes", 0),
            },
            "engines": dict(
                self.metrics.counter("server_engine_total").as_dict()
            ),
            "per_table": storage["per_table"],
            "per_session": [
                {
                    "session": session.name,
                    "submitted": session.submitted,
                    "completed": session.completed,
                    "rejected": session.rejected,
                    "queued": len(session.queue),
                    "in_flight": len(session.in_flight),
                }
                for session in sorted(
                    self.sessions.values(), key=lambda s: s.session_id
                )
            ],
        }
