"""The vectorized (batched) execution path of the pipelined NLJN executor.

The scalar :class:`~repro.executor.pipeline.PipelineExecutor` walks one row
at a time through a Python state machine, so interpreter overhead — not
index work — dominates wall-clock time. This module keeps the state machine
(and therefore every adaptation decision point) but moves the *physical*
work into batches:

* the driving leg is read ahead through an uncharged :class:`DrivingShadow`
  that predicts the next ``batch_size`` surviving rows without touching the
  real cursor, and the first inner leg is resolved for all of them in one
  :meth:`~repro.executor.access.RuntimeLeg.probe_batch` call;
* deeper inner legs batch over the parent's match list the same way;
* ``probe_batch`` sorts the batch's join keys and resolves them with one
  merged left-to-right descent over the index, and an optional per-leg LRU
  :class:`~repro.executor.probecache.ProbeCache` memoizes repeated keys.

**Semantics lock.** Batching must not change results, work accounting, or
adaptation. Three rules enforce that:

1. *Deferred replay* — prepared probes carry their would-be charges and
   monitor observations; :meth:`RuntimeLeg.replay_prepared` applies them at
   the exact logical point the scalar path would have probed, so the meter,
   the Eq 5–11 monitor estimates, ``incoming_since_check``, budget checks,
   and observability hooks see the identical row stream in the identical
   order.
2. *Safe windows* — lookahead never crosses a point where a reorder check
   could fire. With check frequency ``c``, a chunk prepared for position
   ``p`` is capped at ``c`` minus the rows already counted toward the next
   check, so every prepared deque is provably empty whenever the controller
   is allowed to permute the pipeline (Sec 4.1/4.2 preconditions). The
   driving lookahead is capped the same way against driving-switch checks.
3. *Real consumption* — predicted driving rows are only used to prepare
   probes; the rows actually consumed still come from the real charging
   cursor iterator, so scan accounting, monitor records, and freeze/resume
   positions are scalar-identical by construction (the shadow asserts its
   prediction matches the consumed row object).

Configurations the lookahead cannot model (fault injection, the invariant
oracle's RID tracking, the ``switch_at_key_boundary`` variant which peeks
the cursor, unknown controller implementations, single-leg pipelines) fall
back to the scalar ``_run`` wholesale; hash-probed legs fall back to scalar
probes per leg.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.core.controller import AdaptationController
from repro.errors import ExecutionError
from repro.executor.access import RuntimeLeg
from repro.executor.pipeline import PipelineExecutor, _NoAdaptation
from repro.executor.probecache import ProbeCache
from repro.executor.vector import adaptive_cascade, vector_cascade
from repro.robustness.guard import SandboxedController
from repro.storage.cursor import IndexScanCursor
from repro.storage.table import Row


class DrivingShadow:
    """Uncharged lookahead over the driving scan.

    Replicates the cursor's visit order (RID order for table scans, the
    per-range (key, rid) walk for index scans) and the driving-row residual
    local predicates, reading only ``raw_rows()`` / ``peek_range()`` so no
    work is charged and no cursor or monitor state moves. The rows it
    returns are the same objects the real cursor will yield next.
    """

    __slots__ = ("_raw", "_tests", "_iter")

    def __init__(self, leg: RuntimeLeg, cursor) -> None:
        self._raw = leg.table.raw_rows()
        pushed = leg._pushed_predicate(cursor)
        self._tests = [
            test for predicate, test in leg.local_tests if predicate is not pushed
        ]
        if isinstance(cursor, IndexScanCursor):
            self._iter = self._index_rids(cursor)
        else:
            self._iter = self._table_rids(cursor)

    def _table_rids(self, cursor) -> Iterator[int]:
        last = cursor.last_position
        start = 0 if last is None else last[0] + 1
        end = len(self._raw)
        if cursor.stop_at is not None:
            # Partition-bounded cursor: the lookahead must not prepare
            # probes for rows the cursor will never yield.
            end = min(end, cursor.stop_at[0])
        yield from range(start, end)

    def _index_rids(self, cursor: IndexScanCursor) -> Iterator[int]:
        # Mirrors IndexScanCursor._entries: same range walk, same
        # start-after skipping and stop-at bounding, but relative to the
        # cursor's *current* position and without charging descends or
        # entry touches.
        index = cursor.index
        start = cursor.last_position
        stop = cursor.stop_at
        for key_range in cursor.ranges:
            entry_start = None
            if start is not None:
                if key_range.high is not None and (
                    key_range.high < start[0]
                    or (key_range.high == start[0] and not key_range.high_inclusive)
                ):
                    continue
                entry_start = (start[0], start[1])
            for key, rid in index.peek_range(
                low=key_range.low,
                high=key_range.high,
                low_inclusive=key_range.low_inclusive,
                high_inclusive=key_range.high_inclusive,
                start_after=entry_start,
            ):
                if stop is not None and (key, rid) >= stop:
                    return
                yield rid

    def next_survivors(self, limit: int) -> list[Row]:
        """Up to *limit* upcoming rows that survive the residual locals."""
        out: list[Row] = []
        raw = self._raw
        tests = self._tests
        for rid in self._iter:
            row = raw[rid]
            for test in tests:
                if not test(row):
                    break
            else:
                out.append(row)
                if len(out) >= limit:
                    break
        return out


class TurboDrivingScan:
    """Chunked, aggregate-charging driving scan for unobserved static runs.

    Walks the same visit order as the real cursor (RID order or the sorted
    per-range (key, rid) walk) and applies the same residual local
    predicates, but charges each chunk's aggregate work — row fetches, index
    descends/entries, the scalar path's ``len(residual_tests)`` predicate
    evals per scanned row — in one shot when the chunk is produced. Only
    used by the turbo path, where nothing can read the meter mid-run, so
    the aggregate totals are observably identical to the per-row charges of
    :meth:`RuntimeLeg.driving_rows`.
    """

    __slots__ = (
        "_raw",
        "_tests",
        "_ntests",
        "_meter",
        "_iter",
        "_is_index",
        "_pending_descends",
    )

    def __init__(self, leg: RuntimeLeg, cursor) -> None:
        self._raw = leg.table.raw_rows()
        pushed = leg._pushed_predicate(cursor)
        self._tests = [
            test for predicate, test in leg.local_tests if predicate is not pushed
        ]
        self._ntests = len(self._tests)
        self._meter = leg.meter
        self._pending_descends = 0
        self._is_index = isinstance(cursor, IndexScanCursor)
        if self._is_index:
            self._iter = self._index_rids(cursor)
        else:
            last = cursor.last_position
            start = 0 if last is None else last[0] + 1
            end = len(self._raw)
            if cursor.stop_at is not None:
                end = min(end, cursor.stop_at[0])
            self._iter = iter(range(start, end))

    def _index_rids(self, cursor: IndexScanCursor) -> Iterator[int]:
        # Same walk as IndexScanCursor._entries (including the cursor's
        # partition bounds); a descend is owed per range actually entered,
        # charged with the chunk that consumes from it.
        index = cursor.index
        start = cursor.last_position
        stop = cursor.stop_at
        for key_range in cursor.ranges:
            entry_start = None
            if start is not None:
                if key_range.high is not None and (
                    key_range.high < start[0]
                    or (key_range.high == start[0] and not key_range.high_inclusive)
                ):
                    continue
                entry_start = (start[0], start[1])
            self._pending_descends += 1
            for key, rid in index.peek_range(
                low=key_range.low,
                high=key_range.high,
                low_inclusive=key_range.low_inclusive,
                high_inclusive=key_range.high_inclusive,
                start_after=entry_start,
            ):
                if stop is not None and (key, rid) >= stop:
                    return
                yield rid

    def next_survivors(self, limit: int) -> list[Row]:
        """Up to *limit* surviving rows; charges the chunk's scan work."""
        out: list[Row] = []
        raw = self._raw
        tests = self._tests
        walked = 0
        if tests:
            for rid in self._iter:
                walked += 1
                row = raw[rid]
                for test in tests:
                    if not test(row):
                        break
                else:
                    out.append(row)
                    if len(out) >= limit:
                        break
        else:
            for rid in self._iter:
                walked += 1
                out.append(raw[rid])
                if walked >= limit:
                    break
        meter = self._meter
        meter.row_fetches += walked
        if self._is_index:
            # Each consumed entry was an index-entry touch in the scalar walk.
            meter.index_entries += walked
        if self._ntests:
            meter.predicate_evals += walked * self._ntests
        if self._pending_descends:
            meter.index_descends += self._pending_descends
            self._pending_descends = 0
        return out


class BatchedPipelineExecutor(PipelineExecutor):
    """Drop-in executor running the batched path (scalar fallback built in)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        size = self.config.probe_cache_size
        self.probe_caches: dict[str, ProbeCache] = (
            {alias: ProbeCache(size) for alias in self.plan.order}
            if size > 0
            else {}
        )
        # Why (if) this execution ran scalar; None means fully batched.
        self.batch_fallback_reason: str | None = None

    # ------------------------------------------------------------------
    def _scalar_fallback_reason(self) -> str | None:
        if len(self.order) < 2:
            return "single-leg pipeline"
        if self.oracle is not None:
            return "invariant oracle armed"
        if self.catalog.faults is not None:
            return "fault injection armed"
        if self.config.switch_at_key_boundary:
            return "switch_at_key_boundary peeks the live cursor"
        controller = self.controller
        if isinstance(controller, SandboxedController):
            controller = controller.inner
        if not isinstance(controller, (AdaptationController, _NoAdaptation)):
            # A custom controller may permute the pipeline at points the
            # safe-window bounds don't model; stay scalar for correctness.
            return "unrecognized adaptation controller"
        return None

    def _cache_for(self, alias: str) -> ProbeCache | None:
        cache = self.probe_caches.get(alias)
        if cache is None:
            return None
        leg = self.legs[alias]
        cache.ensure(leg.probe_epoch, leg.table.version)
        return cache

    # ------------------------------------------------------------------
    def _run(self) -> Iterator[tuple]:
        reason = self._scalar_fallback_reason()
        if reason is not None:
            self.batch_fallback_reason = reason
            yield from super()._run()
            return

        if self._enforcer is None and (self.obs is None or not self.obs.hot):
            if not self.config.mode.monitors:
                # Mode NONE with no limits and no observability: nothing can
                # read the meter, the monitors, or the pipeline mid-run, so
                # the turbo loop may charge work in chunk aggregates and skip
                # the per-probe replay machinery entirely. Final totals,
                # results, and stats are scalar-identical.
                yield from self._run_turbo()
                return
            # Monitored modes with no limits and no observability: the
            # meter is only read at query end, so physical charges may be
            # chunk-aggregated; monitor observations are applied in bulk
            # exactly where no reorder check can interleave, per-probe
            # elsewhere. Decisions, events, and final totals stay
            # scalar-identical (see _run_fast).
            yield from self._run_fast()
            return

        self.engine_used = "batched"
        if self.obs is not None and self.obs.hot:
            self.vector_gate_reason = "hot observability armed"
        elif self._enforcer is not None:
            self.vector_gate_reason = "execution limits armed"
        self._open_driving(self.order[0])
        self._compile_all_probes()
        config = self.config
        mode = config.mode
        batch_size = config.batch_size
        check_freq = config.check_frequency
        controller = self.controller
        meter = self.catalog.meter
        limits = self._enforcer
        obs = self.obs if (self.obs is not None and self.obs.hot) else None
        projector = self._projector

        leg_count = len(self.order)
        last = leg_count - 1
        binding: dict[str, Row] = {}
        # Current match list + cursor per inner position.
        match_rows: list[list[Row]] = [[] for _ in range(leg_count)]
        match_idx: list[int] = [0] * leg_count
        # Prepared (not yet replayed) probes per position, aligned with the
        # upcoming outer rows at position - 1.
        prepared: list[deque] = [deque() for _ in range(leg_count)]
        # Shadow-predicted upcoming driving rows, aligned with prepared[1].
        expected: deque[Row] = deque()
        shadow: DrivingShadow | None = None

        position = 0
        while True:
            if position == 0:
                self.depleted_from = 0
                if controller.on_pipeline_depleted():
                    # Driving switch: every probe was recompiled; the safe
                    # windows guarantee the deques were already empty, but
                    # clear defensively and drop the stale shadow.
                    leg_count = len(self.order)
                    last = leg_count - 1
                    binding.clear()
                    expected.clear()
                    for pending in prepared:
                        pending.clear()
                    shadow = None
                if limits is not None:
                    limits.check()
                if not expected:
                    shadow = self._refill_driving(
                        shadow, expected, prepared, binding,
                        leg_count, batch_size, check_freq, mode, obs,
                    )
                assert self._driving_iter is not None
                row = next(self._driving_iter, None)
                if row is None:
                    return
                self.depleted_from = None
                self.driving_rows_since_check += 1
                self.driving_rows_total += 1
                if obs is not None:
                    obs.on_driving_row(self)
                binding[self.order[0]] = row
                position = 1
                leg = self.legs[self.order[1]]
                if expected:
                    predicted = expected.popleft()
                    if predicted is not row:
                        raise ExecutionError(
                            "batched executor: driving lookahead diverged "
                            f"from the cursor on leg {self.order[0]!r}"
                        )
                    entry, hit = prepared[1].popleft()
                    match_rows[1] = leg.replay_prepared(entry, hit)
                else:
                    match_rows[1] = leg.probe(binding)
                match_idx[1] = 0
                continue

            rows_list = match_rows[position]
            idx = match_idx[position]
            if idx >= len(rows_list):
                # Suffix at >= position is depleted (Sec 4.1).
                self.depleted_from = position
                if obs is not None:
                    obs.on_suffix_depleted(position)
                controller.on_suffix_depleted(position)
                position -= 1
                continue
            match_idx[position] = idx + 1
            row = rows_list[idx]
            self.depleted_from = None
            binding[self.order[position]] = row
            if position == last:
                if limits is not None:
                    limits.check_emit()
                self.rows_emitted += 1
                meter.charge_row_emitted()
                if obs is not None:
                    obs.on_rows_emitted()
                yield projector(binding)
                continue
            position += 1
            leg = self.legs[self.order[position]]
            pending = prepared[position]
            if not pending:
                self._refill_inner(
                    position, binding, match_rows, match_idx, prepared,
                    last, batch_size, check_freq, mode,
                )
            if pending:
                entry, hit = pending.popleft()
                match_rows[position] = leg.replay_prepared(entry, hit)
            else:
                match_rows[position] = leg.probe(binding)
            match_idx[position] = 0

    # ------------------------------------------------------------------
    def _run_turbo(self) -> Iterator[tuple]:
        """Aggregate-charging batched loop for mode NONE without observers.

        Semantically identical to the scalar machine at every *observable*
        point: same result rows in the same order, same final meter totals
        (probe for probe, row for row), same stats counters. The shortcuts —
        chunk-aggregated charges, no controller calls, no per-probe replay —
        are all justified by the entry condition: a static plan (no reorder
        checks can ever fire), no limits, no observability, no oracle, no
        faults, so nothing can read intermediate state. Partial consumption
        of the ``rows()`` generator may observe charges up to one chunk
        ahead of scalar; full runs are exact.
        """
        self._open_driving(self.order[0])
        self._compile_all_probes()
        # Columnar fast path: when every leg supports it, the whole static
        # join collapses into a layered array computation with identical
        # rows, order, and final totals (see executor/vector.py). Any
        # unsupported shape returns None and this generic loop runs.
        cascade = vector_cascade(self)
        if cascade is not None:
            self.engine_used = "vector"
            yield from cascade
            return
        self.engine_used = "turbo"
        aliases = list(self.order)
        leg_count = len(aliases)
        last = leg_count - 1
        legs = [self.legs[alias] for alias in aliases]
        meter = self.catalog.meter
        projector = self._projector
        batch = self.config.batch_size
        binding: dict[str, Row] = {}
        batchable = [False] * leg_count
        for p in range(1, leg_count):
            pc = legs[p].probe_config
            batchable[p] = pc is not None and pc.hash_column is None
        assert self.driving_cursor is not None
        driving = TurboDrivingScan(legs[0], self.driving_cursor)
        a0 = aliases[0]
        a_last = aliases[last]
        first_leg = legs[1]
        first_batchable = batchable[1]
        # Per-position caches, generation-checked once per driving chunk
        # (probe epochs never move in mode NONE; heap versions only move if
        # the consumer mutates tables between yields, which also requires an
        # index refresh — the chunk-granular ensure covers that window).
        caches: list = [None] * leg_count
        for p in range(1, leg_count):
            if batchable[p]:
                caches[p] = self.probe_caches.get(aliases[p])

        # Upcoming driving rows, aligned with pending[1]'s match lists.
        expected: deque[Row] = deque()
        # Pre-resolved match lists per position, aligned with the parent's
        # upcoming rows (each parent-row visit pops exactly one).
        pending: list[deque] = [deque() for _ in range(leg_count)]
        match_rows: list[list[Row]] = [[] for _ in range(leg_count)]
        match_idx = [0] * leg_count

        position = 0
        while True:
            if position == 0:
                if not expected:
                    chunk = driving.next_survivors(batch)
                    if not chunk:
                        self.depleted_from = 0
                        return
                    for p in range(1, leg_count):
                        cache_p = caches[p]
                        if cache_p is not None:
                            cache_p.ensure(
                                legs[p].probe_epoch, legs[p].table.version
                            )
                    expected.extend(chunk)
                    if first_batchable:
                        pending[1].extend(
                            first_leg.probe_batch_turbo(
                                binding, a0, chunk, caches[1]
                            )
                        )
                row = expected.popleft()
                self.driving_rows_since_check += 1
                self.driving_rows_total += 1
                binding[a0] = row
                if first_batchable:
                    matches = pending[1].popleft()
                else:
                    matches = first_leg.probe(binding)
                if last == 1:
                    if matches:
                        count = len(matches)
                        self.rows_emitted += count
                        meter.rows_emitted += count
                        for inner in matches:
                            binding[a_last] = inner
                            yield projector(binding)
                    continue
                match_rows[1] = matches
                match_idx[1] = 0
                position = 1
                continue

            rows_list = match_rows[position]
            idx = match_idx[position]
            if idx >= len(rows_list):
                position -= 1
                continue
            match_idx[position] = idx + 1
            row = rows_list[idx]
            alias = aliases[position]
            binding[alias] = row
            nxt = position + 1
            leg = legs[nxt]
            if batchable[nxt]:
                pend = pending[nxt]
                if pend:
                    matches = pend.popleft()
                else:
                    remaining = len(rows_list) - idx
                    if remaining == 1:
                        # One remaining outer: the batch scaffolding costs
                        # more than it saves.
                        matches = leg.probe_turbo(binding, caches[nxt])
                    else:
                        outers = rows_list[idx : idx + batch]
                        pend.extend(
                            leg.probe_batch_turbo(
                                binding, alias, outers, caches[nxt]
                            )
                        )
                        binding[alias] = row
                        matches = pend.popleft()
            else:
                matches = leg.probe(binding)
            if nxt == last:
                if matches:
                    count = len(matches)
                    self.rows_emitted += count
                    meter.rows_emitted += count
                    for inner in matches:
                        binding[a_last] = inner
                        yield projector(binding)
                continue
            match_rows[nxt] = matches
            match_idx[nxt] = 0
            position = nxt

    # ------------------------------------------------------------------
    # Fast monitored path (chunk-aggregated observations)
    # ------------------------------------------------------------------
    # Observation schemes per pipeline position (see probe_batch_fast).
    _OBS_BULK = 0     # prep applies window + counts + incoming (chunk-bulk)
    _OBS_WINDOW = 1   # prep applies window + counts; incoming per pop
    _OBS_DEFER = 2    # per-probe records, everything applied per pop

    def _run_fast(self) -> Iterator[tuple]:
        """Monitored batched loop with chunk-aggregated accounting.

        Entry conditions: monitoring on, no limits, no observability (plus
        the scalar-fallback screens: no faults, no oracle, recognized
        controller, multi-leg). Then the meter is only read at query end,
        so physical charges and monitor-update charges are folded into one
        aggregate per chunk (``probe_batch_fast``); intermediate meter
        states run up to one chunk ahead, final totals are scalar-exact.

        Monitor windows and ``incoming_since_check`` feed reorder-check
        *gates and decisions*, so their application point is chosen per
        pipeline position to be provably decision-identical:

        * positions where no check can fire between a chunk's preparation
          and the consumption of its last probe get chunk-bulk windows —
          the last position always (``on_suffix_depleted`` ignores
          single-leg suffixes, and shallower checks only fire after the
          nested chunk is fully consumed), every position when inner
          reordering is off (inner checks never fire; driving checks only
          at driving-chunk boundaries, where the safe-window caps have
          drained all prepared state);
        * position ``last - 1`` additionally needs ``incoming_since_check``
          advanced per consumed probe, because its own check gate reads the
          counter at mid-chunk depletion events — the window itself is
          bulk-safe since the capped chunk cannot reach the gate threshold
          before its final probe;
        * shallower positions (4+ leg pipelines with inner reordering) keep
          fully per-probe observation records: checks at deeper non-last
          positions can fire mid-chunk and read this leg's window.

        **Fast adaptive mode** (``monitor_granularity="chunk"``): the
        safe-window width caps and the per-probe schemes exist only to keep
        adaptation *bit-identical* to scalar. When the user opts into
        chunk granularity, chunks run at the full batch size everywhere,
        every position observes chunk-bulk (one O(1) aggregated ring entry
        per chunk — see :class:`~repro.core.monitor.AggregatedWindow`),
        and reorder checks fire at the first depletion with **no prepared
        state outstanding** — i.e. at chunk boundaries — once the check
        counters pass the frequency gate. Rows and final work totals stay
        exact; monitor estimates carry bounded within-chunk skew and
        adaptation points are coarser (amortized), which is precisely what
        buys the batched monitored speedup.
        """
        self._open_driving(self.order[0])
        self._compile_all_probes()
        config = self.config
        mode = config.mode
        batch_size = config.batch_size
        check_freq = config.check_frequency
        controller = self.controller
        meter = self.catalog.meter
        projector = self._projector
        reorders_inner = mode.reorders_inner
        chunked = config.monitor_granularity == "chunk"

        if chunked:
            # Chunk granularity: try the vectorized adaptive cascade. It
            # runs the whole cascade a driving chunk at a time with
            # kernel-folded monitoring and checks at chunk boundaries —
            # observably identical to this generic loop (same rows in
            # order, same meter, same windows, same decisions). It returns
            # True when the query completed, False to hand the partially
            # consumed cursors back to this loop (e.g. after a driving
            # switch introduces positional predicates), or None from
            # adaptive_cascade() when a static gate fails.
            self.engine_used = "fast"
            engine = adaptive_cascade(self)
            if engine is not None:
                self.engine_used = "vector-adaptive"
                completed = yield from engine
                if completed:
                    return
                self.engine_used = "vector-adaptive+fast"
        else:
            self.engine_used = "fast"
            self.vector_gate_reason = "exact monitor granularity"

        leg_count = len(self.order)
        last = leg_count - 1
        schemes = [self._OBS_BULK] * leg_count
        if reorders_inner and not chunked:
            for p in range(1, last):
                schemes[p] = (
                    self._OBS_WINDOW if p == last - 1 else self._OBS_DEFER
                )
        defer = self._OBS_DEFER
        window_scheme = self._OBS_WINDOW

        binding: dict[str, Row] = {}
        match_rows: list[list[Row]] = [[] for _ in range(leg_count)]
        match_idx: list[int] = [0] * leg_count
        pending: list[deque] = [deque() for _ in range(leg_count)]
        expected: deque[Row] = deque()
        shadow: DrivingShadow | None = None

        # The controller's depletion hooks gate on counters this loop
        # already tracks (incoming_since_check / driving_rows_since_check
        # vs the check frequency), so calls that would provably gate out
        # are skipped entirely — identical decisions, none of the per-call
        # dispatch and sandbox bookkeeping on the ~c-1 of every c
        # depletions that cannot fire a check.
        reorders_driving = mode.reorders_driving

        position = 0
        while True:
            if position == 0:
                self.depleted_from = 0
                if chunked and not expected:
                    # Driving-chunk boundary: apply every leg's deferred
                    # window folds as ONE aggregate per leg before any
                    # check (or end-of-query snapshot) can read a window.
                    self._flush_chunk_folds()
                if (
                    reorders_driving
                    and self.driving_rows_since_check >= check_freq
                    # Chunk granularity: defer the check to the driving
                    # chunk boundary so no prepared state can go stale
                    # (exact granularity drains the lookahead before the
                    # gate can pass, making this condition a no-op there).
                    and (not chunked or not expected)
                    and controller.on_pipeline_depleted()
                ):
                    # Driving switch: probes recompiled; the safe windows
                    # guarantee the deques were already empty, but clear
                    # defensively and drop the stale shadow.
                    leg_count = len(self.order)
                    last = leg_count - 1
                    schemes = [self._OBS_BULK] * leg_count
                    if reorders_inner and not chunked:
                        for p in range(1, last):
                            schemes[p] = (
                                self._OBS_WINDOW
                                if p == last - 1
                                else self._OBS_DEFER
                            )
                    binding.clear()
                    expected.clear()
                    for pend in pending:
                        pend.clear()
                    shadow = None
                if not expected:
                    shadow = self._refill_driving_fast(
                        shadow, expected, pending, binding,
                        leg_count, batch_size, check_freq, mode, schemes[1],
                        chunked,
                    )
                assert self._driving_iter is not None
                row = next(self._driving_iter, None)
                if row is None:
                    return
                self.depleted_from = None
                self.driving_rows_since_check += 1
                self.driving_rows_total += 1
                binding[self.order[0]] = row
                position = 1
                leg = self.legs[self.order[1]]
                if expected:
                    predicted = expected.popleft()
                    if predicted is not row:
                        raise ExecutionError(
                            "batched executor: driving lookahead diverged "
                            f"from the cursor on leg {self.order[0]!r}"
                        )
                    entry = pending[1].popleft()
                    scheme = schemes[1]
                    if scheme == defer:
                        match_rows[1] = leg.consume_fast_record(entry)
                    else:
                        if scheme == window_scheme:
                            leg.incoming_since_check += 1
                        match_rows[1] = entry
                else:
                    match_rows[1] = leg.probe(binding)
                match_idx[1] = 0
                continue

            rows_list = match_rows[position]
            idx = match_idx[position]
            if idx >= len(rows_list):
                # Suffix at >= position is depleted (Sec 4.1).
                self.depleted_from = position
                if reorders_inner and position < last:
                    if chunked:
                        # Chunk granularity: one inner check per driving
                        # chunk, at the chunk boundary (position-1
                        # depletion with nothing prepared or expected —
                        # i.e. the chunk's last driving row just drained).
                        # A whole-suffix permutation decided at position 1
                        # subsumes deeper suffix checks, so deeper
                        # depletions never fire mid-chunk; this is what
                        # the vectorized adaptive cascade replicates.
                        if (
                            position == 1
                            and not expected
                            and not pending[1]
                            and self.legs[self.order[1]].incoming_since_check
                            >= check_freq
                        ):
                            self._flush_chunk_folds()
                            controller.on_suffix_depleted(1)
                    elif (
                        self.legs[self.order[position]].incoming_since_check
                        >= check_freq
                    ):
                        controller.on_suffix_depleted(position)
                position -= 1
                continue
            match_idx[position] = idx + 1
            row = rows_list[idx]
            self.depleted_from = None
            binding[self.order[position]] = row
            if position == last:
                self.rows_emitted += 1
                meter.rows_emitted += 1
                yield projector(binding)
                continue
            position += 1
            leg = self.legs[self.order[position]]
            pend = pending[position]
            if not pend:
                self._refill_inner_fast(
                    position, binding, match_rows, match_idx, pending,
                    last, batch_size, check_freq, reorders_inner,
                    schemes[position], chunked,
                )
            if pend:
                entry = pend.popleft()
                scheme = schemes[position]
                if scheme == defer:
                    match_rows[position] = leg.consume_fast_record(entry)
                else:
                    if scheme == window_scheme:
                        leg.incoming_since_check += 1
                    match_rows[position] = entry
            else:
                match_rows[position] = leg.probe(binding)
            match_idx[position] = 0

    def _flush_chunk_folds(self) -> None:
        """Apply every leg's deferred window folds (chunk granularity).

        Chunk-granularity probes defer their window aggregates
        (:meth:`LegMonitor.defer_chunk`); this applies them as ONE
        :meth:`AggregatedWindow.observe_chunk` per leg — the same single
        fold per leg per driving chunk the vectorized adaptive cascade
        computes from its kernels. Called at every driving-chunk boundary
        before anything (a reorder check, an end-of-query snapshot) can
        read a window. No-op for legs with nothing pending.
        """
        for leg in self.legs.values():
            leg.monitor.flush_chunk()

    def _refill_driving_fast(
        self,
        shadow: DrivingShadow | None,
        expected: deque,
        pending: list[deque],
        binding: dict[str, Row],
        leg_count: int,
        batch_size: int,
        check_freq: int,
        mode,
        scheme: int,
        chunked: bool = False,
    ) -> DrivingShadow | None:
        """Fast-path twin of :meth:`_refill_driving` (same safe windows).

        Chunk granularity skips the safe-window caps — chunks run at the
        full batch size and checks are deferred to chunk boundaries by the
        caller's gates instead.
        """
        first_alias = self.order[1]
        first_leg = self.legs[first_alias]
        probe_config = first_leg.probe_config
        if probe_config is None or probe_config.hash_column is not None:
            return shadow  # hash legs prepare nothing; probe directly
        width = batch_size
        if not chunked:
            if mode.reorders_driving:
                width = min(width, check_freq - self.driving_rows_since_check)
            if mode.reorders_inner and leg_count >= 3:
                width = min(width, check_freq - first_leg.incoming_since_check)
            width = max(width, 1)
        if shadow is None:
            assert self.driving_cursor is not None
            shadow = DrivingShadow(
                self.legs[self.order[0]], self.driving_cursor
            )
        rows = shadow.next_survivors(width)
        if rows:
            driving_alias = self.order[0]
            saved = binding.get(driving_alias)
            pending[1].extend(
                first_leg.probe_batch_fast(
                    binding, driving_alias, rows,
                    self._cache_for(first_alias),
                    defer=scheme == self._OBS_DEFER,
                    bump_incoming=scheme == self._OBS_BULK,
                    aggregate=chunked,
                )
            )
            if saved is not None:
                binding[driving_alias] = saved
            expected.extend(rows)
        return shadow

    def _refill_inner_fast(
        self,
        position: int,
        binding: dict[str, Row],
        match_rows: list[list[Row]],
        match_idx: list[int],
        pending: list[deque],
        last: int,
        batch_size: int,
        check_freq: int,
        reorders_inner: bool,
        scheme: int,
        chunked: bool = False,
    ) -> None:
        """Fast-path twin of :meth:`_refill_inner` (same safe windows).

        Chunk granularity skips the safe-window cap; the caller's
        pending-empty gate defers checks to chunk boundaries instead.
        """
        alias = self.order[position]
        leg = self.legs[alias]
        probe_config = leg.probe_config
        if probe_config is None or probe_config.hash_column is not None:
            return
        width = batch_size
        if not chunked and reorders_inner and position < last:
            width = min(width, check_freq - leg.incoming_since_check)
            width = max(width, 1)
        parent_alias = self.order[position - 1]
        current = binding[parent_alias]
        if width > 1:
            parent_rows = match_rows[position - 1]
            parent_next = match_idx[position - 1]
            outers = [current]
            outers.extend(parent_rows[parent_next : parent_next + width - 1])
        else:
            outers = [current]
        pending[position].extend(
            leg.probe_batch_fast(
                binding, parent_alias, outers, self._cache_for(alias),
                defer=scheme == self._OBS_DEFER,
                bump_incoming=scheme == self._OBS_BULK,
                aggregate=chunked,
            )
        )
        binding[parent_alias] = current

    # ------------------------------------------------------------------
    def _refill_driving(
        self,
        shadow: DrivingShadow | None,
        expected: deque,
        prepared: list[deque],
        binding: dict[str, Row],
        leg_count: int,
        batch_size: int,
        check_freq: int,
        mode,
        obs,
    ) -> DrivingShadow | None:
        """Predict the next driving survivors and pre-resolve leg 1 probes.

        The chunk width shrinks to the distance to the next driving-switch
        check (and, with three or more legs, to position 1's next
        inner-reorder check) so no prepared probe can outlive a pipeline
        permutation.
        """
        first_alias = self.order[1]
        first_leg = self.legs[first_alias]
        probe_config = first_leg.probe_config
        if probe_config is None or probe_config.hash_column is not None:
            return shadow  # hash legs replay nothing; probe directly
        width = batch_size
        if mode.reorders_driving:
            width = min(width, check_freq - self.driving_rows_since_check)
        if mode.reorders_inner and leg_count >= 3:
            width = min(
                width, check_freq - first_leg.incoming_since_check
            )
        width = max(width, 1)
        if shadow is None:
            assert self.driving_cursor is not None
            shadow = DrivingShadow(
                self.legs[self.order[0]], self.driving_cursor
            )
        rows = shadow.next_survivors(width)
        if rows:
            driving_alias = self.order[0]
            saved = binding.get(driving_alias)
            prepared[1].extend(
                first_leg.probe_batch(
                    binding, driving_alias, rows, self._cache_for(first_alias)
                )
            )
            if saved is not None:
                binding[driving_alias] = saved
            expected.extend(rows)
            if obs is not None and obs.tracer is not None:
                obs.on_driving_batch(driving_alias, len(rows))
        return shadow

    def _refill_inner(
        self,
        position: int,
        binding: dict[str, Row],
        match_rows: list[list[Row]],
        match_idx: list[int],
        prepared: list[deque],
        last: int,
        batch_size: int,
        check_freq: int,
        mode,
    ) -> None:
        """Pre-resolve probes at *position* for the parent's upcoming rows.

        The chunk is the currently bound parent row plus lookahead into the
        parent's remaining match list, capped at the distance to this
        position's next inner-reorder check.
        """
        alias = self.order[position]
        leg = self.legs[alias]
        probe_config = leg.probe_config
        if probe_config is None or probe_config.hash_column is not None:
            return
        width = batch_size
        if mode.reorders_inner and position < last:
            width = min(width, check_freq - leg.incoming_since_check)
        width = max(width, 1)
        parent_alias = self.order[position - 1]
        current = binding[parent_alias]
        if width > 1:
            parent_rows = match_rows[position - 1]
            parent_next = match_idx[position - 1]
            outers = [current]
            outers.extend(parent_rows[parent_next : parent_next + width - 1])
        else:
            outers = [current]
        prepared[position].extend(
            leg.probe_batch(binding, parent_alias, outers, self._cache_for(alias))
        )
        binding[parent_alias] = current
