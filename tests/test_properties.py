"""Cross-cutting property-based tests (hypothesis)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AdaptiveConfig, Database, ReorderMode
from repro.query.query import QuerySpec
from repro.storage.index import SortedIndex
from repro.storage.schema import Column, TableSchema
from repro.storage.table import HeapTable
from repro.storage.types import ColumnType

from tests.conftest import reference_join


# ---------------------------------------------------------------------------
# Index vs. naive filter
# ---------------------------------------------------------------------------

@settings(max_examples=80, deadline=None)
@given(
    values=st.lists(
        st.one_of(st.integers(min_value=-5, max_value=15), st.none()),
        max_size=30,
    ),
    low=st.integers(min_value=-6, max_value=16),
    high=st.integers(min_value=-6, max_value=16),
    low_inclusive=st.booleans(),
    high_inclusive=st.booleans(),
)
def test_index_range_scan_equals_naive_filter(
    values, low, high, low_inclusive, high_inclusive
):
    schema = TableSchema("t", [Column("k", ColumnType.INT)])
    table = HeapTable(schema)
    table.insert_many([(value,) for value in values])
    index = SortedIndex("ix", table, "k")
    scanned = sorted(
        rid
        for _, rid in index.scan_range(low, high, low_inclusive, high_inclusive)
    )
    expected = sorted(
        rid
        for rid, value in enumerate(values)
        if value is not None
        and (value > low or (low_inclusive and value == low))
        and (value < high or (high_inclusive and value == high))
    )
    assert scanned == expected


# ---------------------------------------------------------------------------
# Aggregation vs. a Python reference
# ---------------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c"]),
            st.one_of(st.integers(min_value=-50, max_value=50), st.none()),
        ),
        max_size=40,
    )
)
def test_group_by_aggregates_match_reference(rows):
    db = Database()
    db.create_table("T", [("grp", "string"), ("v", "int")])
    db.insert("T", rows)
    db.analyze()
    result = db.execute(
        "SELECT T.grp, COUNT(*), COUNT(T.v), SUM(T.v), MIN(T.v), MAX(T.v) "
        "FROM T GROUP BY T.grp ORDER BY T.grp",
        AdaptiveConfig(mode=ReorderMode.NONE),
    ).rows
    expected = []
    for group in sorted({g for g, _ in rows}):
        values = [v for g, v in rows if g == group and v is not None]
        count_star = sum(1 for g, _ in rows if g == group)
        expected.append(
            (
                group,
                count_star,
                len(values),
                sum(values) if values else None,
                min(values) if values else None,
                max(values) if values else None,
            )
        )
    assert result == expected


@settings(max_examples=40, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=20),
            st.one_of(st.integers(min_value=-9, max_value=9), st.none()),
        ),
        max_size=30,
    ),
    descending=st.booleans(),
    limit=st.integers(min_value=0, max_value=10),
)
def test_order_by_limit_matches_reference(rows, descending, limit):
    db = Database()
    db.create_table("T", [("id", "int"), ("v", "int")])
    db.insert("T", rows)
    db.analyze()
    direction = "DESC" if descending else "ASC"
    result = db.execute(
        f"SELECT T.id, T.v FROM T ORDER BY T.v {direction}, T.id LIMIT {limit}",
        AdaptiveConfig(mode=ReorderMode.NONE),
    ).rows
    # Reference: NULLs first (ascending), stable on (v, id).
    def key(row):
        return (row[1] is not None, row[1] if row[1] is not None else 0)

    expected = sorted(rows, key=lambda r: (r[0],))
    expected = sorted(expected, key=key, reverse=descending)
    expected = expected[:limit]
    assert result == [tuple(r) for r in expected]


# ---------------------------------------------------------------------------
# Random conjunctive join queries vs. the brute-force reference
# ---------------------------------------------------------------------------

MAKES = ["A", "B", "C", "Rare"]
COUNTRIES = ["DE", "US", "FR"]


def _random_query(rng: random.Random) -> str:
    predicates = []
    if rng.random() < 0.7:
        predicates.append(f"c.make = '{rng.choice(MAKES)}'")
    if rng.random() < 0.7:
        predicates.append(f"o.country = '{rng.choice(COUNTRIES)}'")
    if rng.random() < 0.7:
        low = rng.randrange(20_000, 70_000)
        predicates.append(
            rng.choice(
                [
                    f"d.salary < {low + 20_000}",
                    f"d.salary BETWEEN {low} AND {low + 25_000}",
                ]
            )
        )
    if rng.random() < 0.3:
        makes = rng.sample(MAKES, 2)
        predicates.append(
            f"(c.make = '{makes[0]}' OR c.make = '{makes[1]}')"
        )
    where = " AND ".join(
        ["c.ownerid = o.id", "o.id = d.ownerid"] + predicates
    )
    return (
        "SELECT o.name, c.make, d.salary FROM Owner o, Car c, Demo d "
        f"WHERE {where}"
    )


@settings(max_examples=30, deadline=None)
@given(
    query_seed=st.integers(min_value=0, max_value=10_000),
    data_seed=st.integers(min_value=0, max_value=30),
    adaptive=st.booleans(),
)
def test_random_queries_match_reference(query_seed, data_seed, adaptive):
    from tests.conftest import build_three_table_db

    db = build_three_table_db(owners=25, seed=data_seed)
    sql = _random_query(random.Random(query_seed))
    config = AdaptiveConfig(
        mode=ReorderMode.BOTH if adaptive else ReorderMode.NONE,
        check_frequency=1,
        warmup_rows=1,
        switch_benefit_threshold=0.0,
    )
    result = db.execute(sql, config)
    plan = db.plan(sql)
    expanded = QuerySpec(
        tables=plan.query.tables,
        local_predicates=plan.query.local_predicates,
        join_predicates=plan.query.join_predicates,
        projection=plan.projection,
    )
    assert sorted(result.rows) == sorted(reference_join(db, expanded))
