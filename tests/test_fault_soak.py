"""Randomized fault soak: adaptation + injected faults never corrupt results.

The acceptance harness for the robustness layer. Over 20 (seed, fault-plan)
combinations and 3 DMV query templates it asserts, for every adaptive mode:

* the result multiset is identical to the ``ReorderMode.NONE`` baseline —
  transient storage faults are retried transparently and adaptation never
  duplicates or drops rows;
* an injected exception inside the controller or monitor never aborts the
  query — it records a ``DEGRADED`` event and the query still answers
  correctly from its static order.

A final sentinel test checks the soak was not vacuous: faults actually
fired, degraded events were actually produced, and adaptation actually
reordered something somewhere.
"""

from collections import Counter

import pytest

from repro import AdaptiveConfig, ReorderMode
from repro.core.events import EventKind
from repro.dmv import four_table_workload, load_dmv
from repro.robustness.faults import FaultPlan, FaultSpec

SEEDS = (101, 202, 303, 404)

# Five fault-plan shapes x four seeds = 20 (seed, fault-plan) combinations.
# Execution sites get *transient* faults (the retry layer must absorb
# them); the controller/monitor sites get *permanent* faults (the sandbox
# must absorb those instead).
PLAN_SHAPES = {
    "nth-storage": (
        FaultSpec(site="index-lookup", kind="transient", nth_call=3),
        FaultSpec(site="cursor-advance", kind="transient", nth_call=7),
    ),
    "random-storage": (
        FaultSpec(site="index-lookup", kind="transient", probability=0.01),
        FaultSpec(site="cursor-advance", kind="transient", probability=0.005),
    ),
    "controller-dead": (
        FaultSpec(site="controller", kind="permanent", nth_call=1),
    ),
    "monitor-dead": (
        FaultSpec(site="monitor", kind="permanent", nth_call=1),
        FaultSpec(site="index-lookup", kind="transient", nth_call=5),
    ),
    "mixed-chaos": (
        FaultSpec(site="cursor-advance", kind="transient", probability=0.01),
        FaultSpec(site="controller", kind="permanent", nth_call=2),
    ),
}

COMBOS = [
    (seed, shape) for seed in SEEDS for shape in PLAN_SHAPES
]  # 20 combinations

ADAPTIVE_MODES = (
    ReorderMode.INNER_ONLY,
    ReorderMode.DRIVING_ONLY,
    ReorderMode.BOTH,
)

# Check aggressively so adaptation (and therefore the controller fault
# sites) actually exercises during these small-scale queries.
def _config(mode: ReorderMode) -> AdaptiveConfig:
    return AdaptiveConfig(
        mode=mode, check_frequency=2, switch_benefit_threshold=0.0
    )


# Aggregate evidence that the soak exercised what it claims to exercise.
_TOTALS = {"fired": 0, "degraded": 0, "switches": 0, "runs": 0}
_REFERENCES: dict[str, Counter] = {}


@pytest.fixture(scope="module")
def dmv():
    db, _ = load_dmv(scale=0.01, seed=20070426)
    return db


def _queries(seed: int) -> list[str]:
    """One query each from three distinct DMV templates, varied by seed."""
    workload = four_table_workload(queries_per_template=1, seed=seed)
    chosen = {}
    for query in workload:
        if query.template in (1, 3, 5) and query.template not in chosen:
            chosen[query.template] = query.sql
    assert len(chosen) == 3
    return [chosen[template] for template in sorted(chosen)]


def _reference(db, sql: str) -> Counter:
    if sql not in _REFERENCES:
        baseline = db.execute(sql, AdaptiveConfig(mode=ReorderMode.NONE))
        _REFERENCES[sql] = Counter(baseline.rows)
    return _REFERENCES[sql]


@pytest.mark.parametrize(("seed", "shape"), COMBOS)
def test_soak_combo(dmv, seed, shape):
    plan = FaultPlan(specs=PLAN_SHAPES[shape], seed=seed)
    for sql in _queries(seed):
        reference = _reference(dmv, sql)
        for mode in ADAPTIVE_MODES:
            injector = plan.build()
            result = dmv.execute(sql, _config(mode), fault_plan=injector)
            assert Counter(result.rows) == reference, (
                f"result multiset diverged from ReorderMode.NONE "
                f"(seed={seed}, plan={shape}, mode={mode.value})"
            )
            if injector.fired["controller"]:
                # A controller failure must degrade, never abort.
                assert result.stats.degraded
            degraded = [
                event
                for event in result.stats.events
                if event.kind is EventKind.DEGRADED
            ]
            for event in degraded:
                assert event.reason  # always explains itself
            _TOTALS["fired"] += injector.total_fired
            _TOTALS["degraded"] += len(degraded)
            _TOTALS["switches"] += result.stats.total_switches
            _TOTALS["runs"] += 1


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_soak_oracle_cross_check(dmv, seed):
    """Debug-mode oracle agrees: RID-tuple multisets match the baseline."""
    plan = FaultPlan(specs=PLAN_SHAPES["mixed-chaos"], seed=seed)
    for sql in _queries(seed):
        baseline = dmv.execute(
            sql, AdaptiveConfig(mode=ReorderMode.NONE), oracle=True
        )
        chaotic = dmv.execute(
            sql,
            _config(ReorderMode.BOTH),
            fault_plan=plan,
            oracle=True,
        )
        assert chaotic.oracle.diff_against(baseline.oracle) is None
        assert Counter(chaotic.rows) == Counter(baseline.rows)


def test_soak_was_not_vacuous():
    """Runs after the parametrized soak (pytest preserves file order)."""
    assert _TOTALS["runs"] >= len(COMBOS) * 3 * 3
    assert _TOTALS["fired"] > 0, "no injected fault ever fired"
    assert _TOTALS["degraded"] > 0, "no controller/monitor failure degraded"
    assert _TOTALS["switches"] > 0, "adaptation never reordered anything"
