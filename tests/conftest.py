"""Shared fixtures and reference implementations for the test suite."""

from __future__ import annotations

import itertools
import random

import pytest

from repro import Database
from repro.catalog.statistics import StatisticsLevel
from repro.query.query import QuerySpec


def reference_join(db: Database, spec: QuerySpec) -> list[tuple]:
    """Brute-force evaluation of a query, independent of the executor.

    Materializes the cross product of the (locally filtered) tables and
    applies every join predicate — O(prod of table sizes), so only usable
    on the small tables the correctness tests build. Returns projected rows
    in arbitrary order.
    """
    filtered: dict[str, list[tuple]] = {}
    schemas = {}
    for alias, table_name in spec.tables.items():
        table = db.catalog.table(table_name)
        schemas[alias] = table.schema
        tests = [p.bind(table.schema) for p in spec.locals_of(alias)]
        filtered[alias] = [
            row for row in table.raw_rows() if all(t(row) for t in tests)
        ]
    aliases = list(spec.tables)
    results = []
    projection = spec.projection
    for combo in itertools.product(*(filtered[a] for a in aliases)):
        binding = dict(zip(aliases, combo))
        ok = True
        for predicate in spec.join_predicates:
            left = binding[predicate.left][
                schemas[predicate.left].position_of(predicate.left_column)
            ]
            right = binding[predicate.right][
                schemas[predicate.right].position_of(predicate.right_column)
            ]
            if left is None or right is None or left != right:
                ok = False
                break
        if not ok:
            continue
        results.append(
            tuple(
                binding[out.alias][schemas[out.alias].position_of(out.column)]
                for out in projection
            )
        )
    return results


def build_three_table_db(
    owners: int = 40, seed: int = 7, analyze: StatisticsLevel | None = StatisticsLevel.BASIC
) -> Database:
    """A small Owner/Car/Demo database with correlated, skewed data."""
    rng = random.Random(seed)
    db = Database()
    db.create_table(
        "Owner",
        [("id", "int"), ("name", "string"), ("country", "string")],
    )
    db.create_table(
        "Car",
        [("id", "int"), ("ownerid", "int"), ("make", "string")],
    )
    db.create_table("Demo", [("ownerid", "int"), ("salary", "int")])
    db.insert(
        "Owner",
        [
            (i, f"n{i}", "DE" if rng.random() < 0.6 else rng.choice(["US", "FR"]))
            for i in range(owners)
        ],
    )
    rows = []
    car_id = 0
    for owner in range(owners):
        for _ in range(rng.choice([0, 1, 1, 2])):
            make = "Rare" if rng.random() < 0.05 else rng.choice(["A", "B"])
            rows.append((car_id, owner, make))
            car_id += 1
    db.insert("Car", rows)
    db.insert("Demo", [(i, 20_000 + rng.randrange(80_000)) for i in range(owners)])
    for table, column in [
        ("Owner", "id"),
        ("Owner", "country"),
        ("Car", "ownerid"),
        ("Car", "make"),
        ("Demo", "ownerid"),
        ("Demo", "salary"),
    ]:
        db.create_index(table, column)
    if analyze is not None:
        db.analyze(level=analyze)
    return db


@pytest.fixture
def three_table_db() -> Database:
    return build_three_table_db()


@pytest.fixture(scope="session")
def mini_dmv():
    """A session-cached tiny DMV database for integration tests."""
    from repro.dmv import load_dmv

    return load_dmv(scale=0.02)
