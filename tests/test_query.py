"""Unit tests for repro.query.query."""

import pytest

from repro.errors import QueryError
from repro.query.joingraph import JoinPredicate
from repro.query.predicates import Comparison, Op
from repro.query.query import OutputColumn, QuerySpec


def make_spec() -> QuerySpec:
    return QuerySpec(
        tables={"o": "Owner", "c": "Car"},
        local_predicates={"o": [Comparison("country", Op.EQ, "DE")]},
        join_predicates=[JoinPredicate("c", "ownerid", "o", "id")],
        projection=[OutputColumn("o", "name")],
    )


class TestValidation:
    def test_empty_tables(self):
        with pytest.raises(QueryError):
            QuerySpec(tables={})

    def test_unknown_alias_in_locals(self):
        with pytest.raises(QueryError, match="unknown alias"):
            QuerySpec(
                tables={"o": "Owner"},
                local_predicates={"x": [Comparison("a", Op.EQ, 1)]},
            )

    def test_unknown_alias_in_join(self):
        with pytest.raises(QueryError):
            QuerySpec(
                tables={"o": "Owner"},
                join_predicates=[JoinPredicate("o", "id", "z", "id")],
            )

    def test_unknown_alias_in_projection(self):
        with pytest.raises(QueryError):
            QuerySpec(
                tables={"o": "Owner"},
                projection=[OutputColumn("z", "name")],
            )


class TestAccessors:
    def test_aliases(self):
        assert make_spec().aliases == ("o", "c")

    def test_table_of(self):
        assert make_spec().table_of("c") == "Car"
        with pytest.raises(QueryError):
            make_spec().table_of("z")

    def test_locals_of(self):
        spec = make_spec()
        assert len(spec.locals_of("o")) == 1
        assert spec.locals_of("c") == ()

    def test_join_graph(self):
        graph = make_spec().join_graph()
        assert graph.is_connected()

    def test_describe_mentions_everything(self):
        text = make_spec().describe()
        assert "Owner" in text and "country" in text and "SELECT o.name" in text
