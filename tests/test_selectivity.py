"""Unit tests for the static selectivity estimator."""

import pytest

from repro.catalog.statistics import (
    StatisticsLevel,
    collect_table_stats,
)
from repro.optimizer.selectivity import (
    DEFAULT_BETWEEN_SELECTIVITY,
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    Estimator,
    join_selectivity,
)
from repro.query.joingraph import JoinPredicate
from repro.query.predicates import Between, Comparison, Disjunction, InList, Op
from repro.storage.schema import Column, TableSchema
from repro.storage.table import HeapTable
from repro.storage.types import ColumnType


def make_stats(values, level=StatisticsLevel.BASIC):
    schema = TableSchema("t", [Column("k", ColumnType.INT)])
    table = HeapTable(schema)
    table.insert_many([(value,) for value in values])
    return collect_table_stats(table, level)


class TestWithoutStats:
    estimator = Estimator(None)

    def test_eq_default(self):
        sel = self.estimator.predicate_selectivity(Comparison("k", Op.EQ, 1))
        assert sel == DEFAULT_EQ_SELECTIVITY

    def test_range_default(self):
        sel = self.estimator.predicate_selectivity(Comparison("k", Op.LT, 1))
        assert sel == DEFAULT_RANGE_SELECTIVITY

    def test_between_default(self):
        sel = self.estimator.predicate_selectivity(Between("k", 1, 2))
        assert sel == DEFAULT_BETWEEN_SELECTIVITY

    def test_in_list_sums(self):
        sel = self.estimator.predicate_selectivity(InList("k", [1, 2, 3]))
        assert sel == pytest.approx(3 * DEFAULT_EQ_SELECTIVITY)

    def test_conjunction_multiplies(self):
        sel = self.estimator.conjunction_selectivity(
            [Comparison("k", Op.EQ, 1), Comparison("k", Op.LT, 5)]
        )
        assert sel == pytest.approx(
            DEFAULT_EQ_SELECTIVITY * DEFAULT_RANGE_SELECTIVITY
        )


class TestUniformity:
    def test_eq_is_one_over_ndv(self):
        estimator = Estimator(make_stats([1, 2, 3, 4]))
        sel = estimator.predicate_selectivity(Comparison("k", Op.EQ, 1))
        assert sel == pytest.approx(0.25)

    def test_eq_ignores_skew_without_frequent_values(self):
        # 90% of rows are value 1, but uniformity says 1/2.
        estimator = Estimator(make_stats([1] * 9 + [2]))
        sel = estimator.predicate_selectivity(Comparison("k", Op.EQ, 1))
        assert sel == pytest.approx(0.5)

    def test_ne_complements(self):
        estimator = Estimator(make_stats([1, 2, 3, 4]))
        sel = estimator.predicate_selectivity(Comparison("k", Op.NE, 1))
        assert sel == pytest.approx(0.75)

    def test_range_interpolates(self):
        estimator = Estimator(make_stats(list(range(0, 101))))
        sel = estimator.predicate_selectivity(Comparison("k", Op.LT, 25))
        assert sel == pytest.approx(0.25)

    def test_range_clamped(self):
        estimator = Estimator(make_stats(list(range(0, 11))))
        assert estimator.predicate_selectivity(Comparison("k", Op.LT, -5)) == 0.0
        assert estimator.predicate_selectivity(Comparison("k", Op.GE, -5)) == 1.0

    def test_between_combines(self):
        estimator = Estimator(make_stats(list(range(0, 101))))
        sel = estimator.predicate_selectivity(Between("k", 25, 75))
        assert sel == pytest.approx(0.5, abs=0.02)

    def test_disjunction(self):
        estimator = Estimator(make_stats([1, 2, 3, 4]))
        sel = estimator.predicate_selectivity(
            Disjunction([Comparison("k", Op.EQ, 1), Comparison("k", Op.EQ, 2)])
        )
        assert sel == pytest.approx(1 - 0.75 * 0.75)


class TestFrequentValues:
    def test_skew_captured(self):
        estimator = Estimator(make_stats([1] * 9 + [2], StatisticsLevel.DETAILED))
        sel = estimator.predicate_selectivity(Comparison("k", Op.EQ, 1))
        assert sel == pytest.approx(0.9)

    def test_rare_value_outside_top_n(self):
        values = [1] * 50 + [2] * 30 + list(range(100, 130))
        schema = TableSchema("t", [Column("k", ColumnType.INT)])
        table = HeapTable(schema)
        table.insert_many([(v,) for v in values])
        from repro.catalog.statistics import collect_column_stats
        from repro.catalog.statistics import TableStats

        stats = TableStats(
            cardinality=len(values),
            columns={"k": collect_column_stats(values, True, top_n=2)},
        )
        estimator = Estimator(stats)
        sel = estimator.predicate_selectivity(Comparison("k", Op.EQ, 110))
        # 30 remaining rows over 30 remaining distinct values -> ~1 row.
        assert sel == pytest.approx(1 / len(values), rel=0.5)


class TestJoinSelectivity:
    def test_one_over_max_ndv(self):
        left = make_stats([1, 2, 3, 4])
        right = make_stats([1, 1, 2, 2])
        predicate = JoinPredicate("l", "k", "r", "k")
        assert join_selectivity(predicate, left, right) == pytest.approx(0.25)

    def test_default_without_stats(self):
        predicate = JoinPredicate("l", "k", "r", "k")
        assert join_selectivity(predicate, None, None) == pytest.approx(0.01)
