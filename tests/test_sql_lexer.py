"""Unit tests for the SQL tokenizer."""

import pytest

from repro.errors import SqlSyntaxError
from repro.query.sql.lexer import TokenKind, tokenize


def kinds(sql):
    return [token.kind for token in tokenize(sql)]


def texts(sql):
    return [token.text for token in tokenize(sql)[:-1]]  # drop EOF


class TestBasics:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where and")
        assert [t.text for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE", "AND"]
        assert all(t.kind is TokenKind.KEYWORD for t in tokens[:-1])

    def test_identifier_preserves_case(self):
        (token, _) = tokenize("Owner")
        assert token.kind is TokenKind.IDENT
        assert token.text == "Owner"

    def test_eof_token(self):
        assert tokenize("")[-1].kind is TokenKind.EOF

    def test_punctuation(self):
        assert texts("( ) , . *") == ["(", ")", ",", ".", "*"]


class TestOperators:
    @pytest.mark.parametrize("op", ["=", "<", "<=", ">", ">=", "<>"])
    def test_operator(self, op):
        (token, _) = tokenize(op)
        assert token.kind is TokenKind.OPERATOR
        assert token.text == op

    def test_bang_equals_normalized(self):
        (token, _) = tokenize("!=")
        assert token.text == "<>"


class TestLiterals:
    def test_string(self):
        (token, _) = tokenize("'hello'")
        assert token.kind is TokenKind.STRING
        assert token.value == "hello"

    def test_string_with_escaped_quote(self):
        (token, _) = tokenize("'it''s'")
        assert token.value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError, match="unterminated"):
            tokenize("'oops")

    def test_integer(self):
        (token, _) = tokenize("42")
        assert token.kind is TokenKind.NUMBER
        assert token.value == 42
        assert isinstance(token.value, int)

    def test_float(self):
        (token, _) = tokenize("3.5")
        assert token.value == 3.5
        assert isinstance(token.value, float)

    def test_negative_number(self):
        (token, _) = tokenize("-7")
        assert token.value == -7

    def test_number_then_dot_ident(self):
        tokens = tokenize("a.b")
        assert [t.kind for t in tokens[:-1]] == [
            TokenKind.IDENT,
            TokenKind.DOT,
            TokenKind.IDENT,
        ]


class TestErrors:
    def test_illegal_character(self):
        with pytest.raises(SqlSyntaxError, match="unexpected character"):
            tokenize("SELECT @")

    def test_error_carries_position(self):
        with pytest.raises(SqlSyntaxError) as info:
            tokenize("ab @")
        assert info.value.position == 3
