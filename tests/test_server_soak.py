"""Concurrency soak: the server over the real engine, many async clients.

The acceptance contract of the serving layer:

* N concurrent clients firing the mixed DMV templates each receive
  row-for-row the result the serial engine produces for that statement —
  concurrent execution (shared plan cache, thread-scoped metering, shed
  reconfiguration) is invisible in results;
* mid-query disconnects cancel only the disconnecting client's work and
  never disturb other sessions;
* rate-limited sessions get typed ``RATE_LIMITED`` rejections while their
  admitted queries still execute correctly;
* a real ``repro serve`` process drains on SIGTERM and exits 0.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core.config import AdaptiveConfig
from repro.dmv import four_table_workload, load_dmv
from repro.server import ErrorCode, QueryServer, ServerConfig

CLIENTS = 8
QUERIES_PER_CLIENT = 12


@pytest.fixture(scope="module")
def soak_db():
    db, _ = load_dmv(scale=0.01)
    yield db
    db.close()


@pytest.fixture(scope="module")
def workload(soak_db):
    """(sql, baseline sorted rows) pairs from the serial engine."""
    items = []
    for query in four_table_workload(queries_per_template=3):
        result = soak_db.execute(query.sql, AdaptiveConfig())
        items.append((query.sql, sorted(tuple(r) for r in result.rows)))
    return items


async def query_once(reader, writer, request_id: int, sql: str) -> dict:
    writer.write(
        (json.dumps({"op": "query", "id": request_id, "sql": sql}) + "\n")
        .encode()
    )
    await writer.drain()
    line = await asyncio.wait_for(reader.readline(), timeout=30.0)
    assert line, "connection closed mid-conversation"
    return json.loads(line)


def run_soak(server_config: ServerConfig, db, scenario):
    async def main():
        server = QueryServer(db, server_config)
        await server.start()
        try:
            return await asyncio.wait_for(scenario(server), timeout=120.0)
        finally:
            await server.shutdown(grace=2.0)

    return asyncio.run(main())


class TestConcurrencySoak:
    def test_eight_clients_serial_equivalent_results(self, soak_db, workload):
        config = ServerConfig(
            port=0,
            max_concurrency=4,
            max_queue_depth=64,
            max_queue_per_session=16,
        )

        async def client(server, index: int, failures: list):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            try:
                for n in range(QUERIES_PER_CLIENT):
                    sql, baseline = workload[(index + n) % len(workload)]
                    response = await query_once(
                        reader, writer, index * 1000 + n, sql
                    )
                    if response["status"] != "ok":
                        failures.append(
                            f"client {index} query {n}: {response}"
                        )
                        continue
                    rows = sorted(tuple(r) for r in response["rows"])
                    if rows != baseline:
                        failures.append(
                            f"client {index} query {n}: rows diverge from "
                            f"serial baseline for {sql[:60]}"
                        )
            finally:
                writer.close()
                await writer.wait_closed()

        async def scenario(server):
            failures: list[str] = []
            await asyncio.gather(*(
                client(server, i, failures) for i in range(CLIENTS)
            ))
            # Collect the final stats document for the post-conditions.
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b'{"op": "stats"}\n')
            await writer.drain()
            stats = json.loads(await reader.readline())["stats"]
            writer.close()
            await writer.wait_closed()
            return failures, stats

        failures, stats = run_soak(config, soak_db, scenario)
        assert not failures, "\n".join(failures[:10])
        total = CLIENTS * QUERIES_PER_CLIENT
        assert stats["queries"]["ok_total"] == total
        assert stats["queries"]["internal_error_total"] == 0
        assert stats["server"]["protocol_errors"] == 0
        # The shared plan cache must have been doing its job: at most one
        # miss per distinct statement (plus single-flight waits, never
        # duplicate planning of a cached statement).
        cache = stats["plan_cache"]
        assert cache["misses"] <= len(set(sql for sql, _ in workload))
        assert cache["hits"] >= total - cache["misses"] - cache["single_flight_waits"]

    def test_mid_query_disconnects_do_not_disturb_others(
        self, soak_db, workload
    ):
        config = ServerConfig(
            port=0, max_concurrency=2, max_queue_depth=32,
            max_queue_per_session=16,
        )

        async def vanishing_client(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            # Pipeline several queries and hang up without reading.
            for n, (sql, _) in enumerate(workload[:6]):
                writer.write(
                    (json.dumps({"op": "query", "id": n, "sql": sql}) + "\n")
                    .encode()
                )
            await writer.drain()
            writer.close()
            await writer.wait_closed()

        async def steady_client(server, failures: list):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            try:
                for n in range(8):
                    sql, baseline = workload[n % len(workload)]
                    response = await query_once(reader, writer, n, sql)
                    if response["status"] != "ok":
                        failures.append(str(response))
                    elif sorted(tuple(r) for r in response["rows"]) != baseline:
                        failures.append(f"rows diverge on {sql[:60]}")
            finally:
                writer.close()
                await writer.wait_closed()

        async def scenario(server):
            failures: list[str] = []
            await asyncio.gather(
                vanishing_client(server),
                steady_client(server, failures),
                vanishing_client(server),
            )
            # Every session is gone; nothing may remain queued or running.
            deadline = asyncio.get_running_loop().time() + 10.0
            while (
                server.admission.in_flight or server.scheduler.pending
            ) and asyncio.get_running_loop().time() < deadline:
                await asyncio.sleep(0.02)
            return failures, server.admission.in_flight, server.scheduler.pending

        failures, in_flight, queued = run_soak(config, soak_db, scenario)
        assert not failures, "\n".join(failures[:10])
        assert in_flight == 0 and queued == 0

    def test_rate_limited_clients_get_typed_rejections(
        self, soak_db, workload
    ):
        config = ServerConfig(
            port=0,
            max_concurrency=2,
            rate_limit_qps=0.5,
            rate_limit_burst=3.0,
        )

        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            responses = []
            try:
                for n in range(8):
                    sql, baseline = workload[n % len(workload)]
                    response = await query_once(reader, writer, n, sql)
                    responses.append((response, baseline))
            finally:
                writer.close()
                await writer.wait_closed()
            return responses

        responses = run_soak(config, soak_db, scenario)
        ok = [r for r, _ in responses if r["status"] == "ok"]
        limited = [
            r for r, _ in responses
            if r["status"] == "error" and r["code"] == ErrorCode.RATE_LIMITED
        ]
        assert len(ok) >= 3, "burst admits at least the first three"
        assert limited, "the rate limiter must have fired"
        assert len(ok) + len(limited) == len(responses)
        for response, baseline in responses:
            if response["status"] == "ok":
                assert sorted(tuple(r) for r in response["rows"]) == baseline


class TestServeProcess:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        """A real `repro serve` process: query it, SIGTERM it, expect 0."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.getcwd(), "src")
        log = tmp_path / "serve.log"
        with open(log, "wb") as log_handle:
            process = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "serve",
                    "--scale", "0.01", "--port", "0",
                ],
                env=env,
                stderr=log_handle,
                stdout=subprocess.DEVNULL,
            )
        try:
            port = None
            deadline = time.time() + 60.0
            while time.time() < deadline and port is None:
                text = log.read_text(errors="replace")
                for token in text.split():
                    if token.startswith("127.0.0.1:"):
                        port = int(token.split(":")[1])
                        break
                if port is None:
                    assert process.poll() is None, f"server died:\n{text}"
                    time.sleep(0.1)
            assert port, "server never reported its port"

            async def roundtrip():
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                writer.write(
                    b'{"op": "query", "id": 1, "sql": '
                    b'"SELECT c.make FROM Car c WHERE c.year >= 2005"}\n'
                )
                await writer.drain()
                response = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                return response

            response = asyncio.run(roundtrip())
            assert response["status"] == "ok" and response["row_count"] > 0
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30.0) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10.0)
