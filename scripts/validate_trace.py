#!/usr/bin/env python3
"""Validate a JSONL span trace against the documented schema.

Schema (see ``src/repro/obs/trace.py``): one JSON object per line with
exactly the keys ``span_id``, ``parent_id``, ``name``, ``kind``,
``start_ms``, ``end_ms``, ``attrs``. Checks performed:

* every line parses as a JSON object with exactly those keys;
* types: ``span_id`` positive int, ``parent_id`` int or null, ``name``
  non-empty str, ``kind`` one of the documented kinds, ``start_ms`` /
  ``end_ms`` numbers (``end_ms`` may be null), ``attrs`` an object;
* span IDs are unique, every non-null ``parent_id`` resolves to a span
  that appeared on an **earlier** line (parents open before children);
* ``end_ms >= start_ms`` for every closed span;
* at least one root span (``parent_id`` null) exists.

Usage::

    python scripts/validate_trace.py trace.jsonl

Exits 0 and prints a summary on success; exits 1 with the first offending
line on failure. Stdlib only — runnable in any CI image.
"""

from __future__ import annotations

import json
import sys

EXPECTED_KEYS = (
    "span_id",
    "parent_id",
    "name",
    "kind",
    "start_ms",
    "end_ms",
    "attrs",
)
KINDS = ("phase", "leg", "check", "adapt", "event")


def fail(line_no: int, message: str) -> "None":
    print(f"INVALID: line {line_no}: {message}", file=sys.stderr)
    raise SystemExit(1)


def validate(path: str) -> int:
    seen_ids: set[int] = set()
    roots = 0
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if not lines:
        fail(0, "trace file is empty")
    for line_no, line in enumerate(lines, start=1):
        try:
            span = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(line_no, f"not valid JSON: {exc}")
        if not isinstance(span, dict):
            fail(line_no, f"expected an object, got {type(span).__name__}")
        if tuple(span) != EXPECTED_KEYS:
            fail(
                line_no,
                f"keys {tuple(span)!r} != expected {EXPECTED_KEYS!r}",
            )
        span_id = span["span_id"]
        if not isinstance(span_id, int) or isinstance(span_id, bool) or span_id < 1:
            fail(line_no, f"span_id must be a positive int, got {span_id!r}")
        if span_id in seen_ids:
            fail(line_no, f"duplicate span_id {span_id}")
        parent_id = span["parent_id"]
        if parent_id is None:
            roots += 1
        elif not isinstance(parent_id, int) or isinstance(parent_id, bool):
            fail(line_no, f"parent_id must be int or null, got {parent_id!r}")
        elif parent_id not in seen_ids:
            fail(
                line_no,
                f"parent_id {parent_id} does not reference an earlier span",
            )
        seen_ids.add(span_id)
        if not isinstance(span["name"], str) or not span["name"]:
            fail(line_no, f"name must be a non-empty string, got {span['name']!r}")
        if span["kind"] not in KINDS:
            fail(line_no, f"kind {span['kind']!r} not in {KINDS}")
        start_ms = span["start_ms"]
        end_ms = span["end_ms"]
        if not isinstance(start_ms, (int, float)) or isinstance(start_ms, bool):
            fail(line_no, f"start_ms must be a number, got {start_ms!r}")
        if end_ms is not None:
            if not isinstance(end_ms, (int, float)) or isinstance(end_ms, bool):
                fail(line_no, f"end_ms must be a number or null, got {end_ms!r}")
            if end_ms < start_ms:
                fail(line_no, f"end_ms {end_ms} < start_ms {start_ms}")
        if not isinstance(span["attrs"], dict):
            fail(line_no, f"attrs must be an object, got {span['attrs']!r}")
    if roots == 0:
        fail(len(lines), "no root span (parent_id null) in the trace")
    print(f"OK: {len(lines)} span(s), {roots} root(s)")
    return 0


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    return validate(argv[1])


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
