"""Resumable scan cursors and the scan orders they expose.

The driving leg of a pipeline is read through a cursor. The paper's
duplicate-prevention scheme (Sec 4.2) relies on two properties that these
cursors guarantee:

* every cursor reads its table in a *stable total order* — RID order for
  table scans, (key, RID) order for index scans — and exposes its current
  position in that order;
* a cursor can be *frozen* (simply stop pulling from it) and later resumed,
  or a fresh cursor can be started strictly after a frozen position.

:class:`ScanOrder` reifies the total order itself so that positional
predicates can be evaluated against arbitrary rows of the same table fetched
through *other* access paths (e.g. the old driving table probed through a
join-column index once it becomes an inner leg).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.storage.index import SortedIndex
from repro.storage.table import HeapTable, Row

Position = tuple[Any, ...]


@dataclass(frozen=True, slots=True)
class KeyRange:
    """A contiguous key range ``low..high`` on an indexed column.

    ``None`` bounds are unbounded. An equality predicate is the range
    ``[v, v]``. IN-lists become several disjoint single-value ranges.
    """

    low: Any = None
    high: Any = None
    low_inclusive: bool = True
    high_inclusive: bool = True

    @classmethod
    def equal(cls, value: Any) -> "KeyRange":
        return cls(low=value, high=value)

    def is_equality(self) -> bool:
        return (
            self.low is not None
            and self.low == self.high
            and self.low_inclusive
            and self.high_inclusive
        )

    def sort_key(self) -> tuple[int, Any]:
        # Unbounded-low ranges come first; bounded ranges sort by low bound.
        if self.low is None:
            return (0, 0)
        return (1, self.low)


@dataclass(frozen=True, slots=True)
class ScanPartition:
    """One contiguous slice of a driving scan's stable total order.

    ``start_after``/``stop_at`` are positions in the scan order (RID order
    for table scans, (key, RID) order for index scans); ``None`` means
    unbounded on that side. ``entry_count`` is the number of qualifying
    entries strictly inside the bounds, pre-computed by the partitioner so
    bounded cursors can report partition-relative remaining fractions.
    """

    start_after: Position | None
    stop_at: Position | None
    entry_count: int | None = None


def normalize_ranges(ranges: list[KeyRange]) -> list[KeyRange]:
    """Sort ranges by low bound; callers must supply disjoint ranges.

    The cursor walks ranges in this order, which keeps the global (key, rid)
    position monotonically increasing — the property positional predicates
    depend on.
    """
    return sorted(ranges, key=lambda r: r.sort_key())


class ScanOrder:
    """The total order in which a driving scan visits its table."""

    __slots__ = ("table", "index", "_key_pos")

    def __init__(self, table: HeapTable, index: SortedIndex | None = None) -> None:
        self.table = table
        self.index = index
        self._key_pos = (
            table.schema.position_of(index.column) if index is not None else None
        )

    @property
    def is_index_order(self) -> bool:
        return self.index is not None

    def position_of(self, rid: int, row: Row) -> Position:
        """The position of (rid, row) in this scan order."""
        if self._key_pos is None:
            return (rid,)
        return (row[self._key_pos], rid)

    def describe(self) -> str:
        if self.index is None:
            return f"RID order of {self.table.name}"
        return f"({self.index.column}, RID) order of {self.table.name}"


class TableScanCursor:
    """Full-table scan in RID order, resumable after any RID.

    A cursor may be bounded to a *partition* of the scan order: entries at
    positions ``<= start_after`` were consumed elsewhere and entries at
    positions ``>= stop_at`` belong to a later partition. Bounded cursors
    carry ``partition_entry_count`` (the number of entries inside the
    bounds, computed by the partitioner) so remaining-work estimates can be
    made relative to the partition instead of the whole table.
    """

    __slots__ = (
        "table",
        "order",
        "_next_rid",
        "last_position",
        "exhausted",
        "stop_at",
        "partition_entry_count",
        "entries_yielded",
    )

    def __init__(
        self,
        table: HeapTable,
        start_after: Position | None = None,
        stop_at: Position | None = None,
        partition_entry_count: int | None = None,
    ) -> None:
        self.table = table
        self.order = ScanOrder(table)
        self._next_rid = 0 if start_after is None else start_after[0] + 1
        self.last_position: Position | None = start_after
        self.exhausted = False
        self.stop_at = stop_at
        self.partition_entry_count = partition_entry_count
        self.entries_yielded = 0

    def __iter__(self) -> Iterator[tuple[int, Row]]:
        return self

    def __next__(self) -> tuple[int, Row]:
        faults = self.table.faults
        if faults is not None:
            # Before any cursor state changes: a transient fault here is
            # retryable by simply calling __next__ again.
            faults.fire("cursor-advance")
        if self._next_rid >= len(self.table) or (
            self.stop_at is not None and self._next_rid >= self.stop_at[0]
        ):
            self.exhausted = True
            raise StopIteration
        rid = self._next_rid
        self._next_rid += 1
        row = self.table.fetch(rid)
        self.last_position = (rid,)
        self.entries_yielded += 1
        return rid, row


class IndexScanCursor:
    """Index-range scan in (key, RID) order over one or more key ranges.

    Ranges are walked in sorted order, so ``last_position`` is monotonically
    non-decreasing across the whole scan even for IN-list predicates.
    """

    __slots__ = (
        "index",
        "order",
        "ranges",
        "_start_after",
        "last_position",
        "exhausted",
        "_iterator",
        "_pending",
        "stop_at",
        "partition_entry_count",
        "entries_yielded",
    )

    def __init__(
        self,
        index: SortedIndex,
        ranges: list[KeyRange] | None = None,
        start_after: Position | None = None,
        stop_at: Position | None = None,
        partition_entry_count: int | None = None,
    ) -> None:
        self.index = index
        self.order = ScanOrder(index.table, index)
        self.ranges = normalize_ranges(ranges) if ranges else [KeyRange()]
        self._start_after = start_after
        self.last_position: Position | None = start_after
        self.exhausted = False
        self._iterator = self._entries()
        self._pending: tuple[Any, int] | None = None
        self.stop_at = stop_at
        self.partition_entry_count = partition_entry_count
        self.entries_yielded = 0

    def _entries(self) -> Iterator[tuple[Any, int]]:
        start = self._start_after
        for key_range in self.ranges:
            entry_start = None
            if start is not None:
                # Skip ranges that end at or before the frozen position.
                if key_range.high is not None and (
                    key_range.high < start[0]
                    or (key_range.high == start[0] and not key_range.high_inclusive)
                ):
                    continue
                entry_start = (start[0], start[1])
            yield from self.index.scan_range(
                low=key_range.low,
                high=key_range.high,
                low_inclusive=key_range.low_inclusive,
                high_inclusive=key_range.high_inclusive,
                start_after=entry_start,
            )

    def __iter__(self) -> Iterator[tuple[int, Row]]:
        return self

    def __next__(self) -> tuple[int, Row]:
        faults = self.index.table.faults
        if faults is not None:
            # Fired before self._iterator is touched, so the underlying
            # range generator survives and the advance can be retried.
            faults.fire("cursor-advance")
        if self._pending is not None:
            key, rid = self._pending
            self._pending = None
        else:
            try:
                key, rid = next(self._iterator)
            except StopIteration:
                self.exhausted = True
                raise
        if self.stop_at is not None and (key, rid) >= self.stop_at:
            # First entry of the next partition: this cursor's slice of the
            # (key, RID) order is drained.
            self.exhausted = True
            raise StopIteration
        row = self.index.table.fetch(rid)
        self.last_position = (key, rid)
        self.entries_yielded += 1
        return rid, row

    def scans_multiple_keys(self) -> bool:
        """True unless the scan covers a single key value.

        For a single-value scan (one equality range) the key order is
        degenerate — Sec 4.2: "If there is only one value to scan (e.g.,
        for equality predicates), we can ignore this order" — so waiting
        for a key boundary would mean waiting for the end of the scan.
        """
        if len(self.ranges) != 1:
            return True
        return not self.ranges[0].is_equality()

    def at_key_boundary(self) -> bool:
        """True when the next entry (if any) has a different key.

        Used by the "postpone switch until the current key group drains"
        variant of driving-leg switching (Sec 4.2), which then needs only a
        simple ``key > v`` positional predicate.
        """
        if self.last_position is None:
            return True
        if self._pending is None:
            try:
                self._pending = next(self._iterator)
            except StopIteration:
                self.exhausted = True
                return True
        return self._pending[0] != self.last_position[0]
