"""Quickstart: build a database, run SQL, compare static vs adaptive.

Run with::

    python examples/quickstart.py
"""

import random

from repro import AdaptiveConfig, Database, ReorderMode


def main() -> None:
    rng = random.Random(0)
    db = Database()

    # -- schema ---------------------------------------------------------
    db.create_table(
        "Owner", [("id", "int"), ("name", "string"), ("country", "string")]
    )
    db.create_table(
        "Car", [("id", "int"), ("ownerid", "int"), ("make", "string")]
    )
    db.create_table("Demographics", [("ownerid", "int"), ("salary", "int")])

    # -- data: skewed on purpose -----------------------------------------
    # 'DE' covers 60% of owners; make 'Rare' covers 0.2% of cars. A static
    # optimizer assuming uniform distributions misjudges both.
    n = 5000
    db.insert(
        "Owner",
        [
            (i, f"owner{i}", "DE" if rng.random() < 0.6 else rng.choice(["US", "FR", "IT"]))
            for i in range(n)
        ],
    )
    db.insert(
        "Car",
        [
            (i, i, "Rare" if rng.random() < 0.002 else rng.choice(["A", "B", "C"]))
            for i in range(n)
        ],
    )
    db.insert("Demographics", [(i, 20_000 + i % 100_000) for i in range(n)])

    for table, column in [
        ("Owner", "id"),
        ("Owner", "country"),
        ("Car", "ownerid"),
        ("Car", "make"),
        ("Demographics", "ownerid"),
        ("Demographics", "salary"),
    ]:
        db.create_index(table, column)
    db.analyze()

    sql = """
        SELECT o.name
        FROM Owner o, Car c, Demographics d
        WHERE c.ownerid = o.id AND o.id = d.ownerid
          AND c.make = 'Rare' AND o.country = 'DE' AND d.salary < 70000
    """

    print("The optimizer's plan (uniformity + independence assumptions):\n")
    print(db.explain(sql))

    static = db.execute(sql, AdaptiveConfig(mode=ReorderMode.NONE))
    adaptive = db.execute(sql, AdaptiveConfig(mode=ReorderMode.BOTH))

    assert sorted(static.rows) == sorted(adaptive.rows)
    print(f"\nresult rows: {len(static.rows)} (identical under both modes)")
    print(f"static execution:   {static.stats.total_work:12,.0f} work units")
    print(f"adaptive execution: {adaptive.stats.total_work:12,.0f} work units")
    print(f"speedup:            {static.stats.total_work / adaptive.stats.total_work:12.1f}x")
    print(f"driving switches:   {adaptive.stats.driving_switches}")
    print(f"order history:      {' -> '.join(str(o) for o in adaptive.stats.order_history)}")


if __name__ == "__main__":
    main()
