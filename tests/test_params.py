"""Unit tests for the shared cost-model parameter provider."""

import pytest

from repro.optimizer.params import ModelProvider, TableModel
from repro.optimizer.plans import DrivingKind
from repro.query.joingraph import JoinGraph, JoinPredicate


def make_model(alias, **overrides):
    defaults = dict(
        alias=alias,
        base_cardinality=1000,
        sel_local_index=0.1,
        sel_local_residual=0.5,
        local_predicate_count=2,
        indexed_columns=frozenset({"k"}),
        driving_kind=DrivingKind.INDEX_SCAN,
        driving_range_count=1,
    )
    defaults.update(overrides)
    return TableModel(**defaults)


def two_table_setup(**a_overrides):
    graph = JoinGraph(
        ["a", "b"], [JoinPredicate("a", "k", "b", "k")]
    )
    class_id = graph.class_id("a", "k")
    models = {
        "a": make_model("a", **a_overrides),
        "b": make_model("b"),
    }
    return ModelProvider(models, {class_id: 0.01}, graph), graph


class TestTableModel:
    def test_leg_cardinality_eq9(self):
        model = make_model("a")
        assert model.leg_cardinality == pytest.approx(1000 * 0.1 * 0.5)

    def test_with_remaining_fraction_clamps(self):
        model = make_model("a").with_remaining_fraction(2.0)
        assert model.remaining_fraction == 1.0
        model = make_model("a").with_remaining_fraction(-1.0)
        assert model.remaining_fraction == 0.0


class TestDrivingParams:
    def test_index_scan_cost_scales_with_remaining(self):
        provider_full, _ = two_table_setup()
        provider_half, _ = two_table_setup(remaining_fraction=0.5)
        cleg_full, pc_full = provider_full.driving_params("a")
        cleg_half, pc_half = provider_half.driving_params("a")
        assert cleg_half == pytest.approx(cleg_full / 2)
        assert pc_half < pc_full

    def test_table_scan_cost(self):
        provider, _ = two_table_setup(driving_kind=DrivingKind.TABLE_SCAN)
        _, pc = provider.driving_params("a")
        # A table scan touches every row regardless of selectivity.
        provider_ix, _ = two_table_setup()
        _, pc_ix = provider_ix.driving_params("a")
        assert pc > pc_ix


class TestInnerParams:
    def test_jc_multiplies_class_selectivity(self):
        provider, _ = two_table_setup()
        jc, _ = provider.inner_params("a", frozenset({"b"}))
        # leg_cardinality (50) * class sel (0.01)
        assert jc == pytest.approx(50 * 0.01)

    def test_jc_correction_applied(self):
        provider, graph = two_table_setup(jc_correction=3.0)
        jc, _ = provider.inner_params("a", frozenset({"b"}))
        assert jc == pytest.approx(50 * 0.01 * 3.0)

    def test_pc_correction_applied(self):
        plain, _ = two_table_setup()
        corrected, _ = two_table_setup(pc_correction=2.0)
        _, pc_plain = plain.inner_params("a", frozenset({"b"}))
        _, pc_corrected = corrected.inner_params("a", frozenset({"b"}))
        assert pc_corrected == pytest.approx(2.0 * pc_plain)

    def test_probe_ignores_remaining_fraction_for_pc(self):
        # A frozen position reduces JC (rows surviving) but not probe work.
        full, _ = two_table_setup()
        half, _ = two_table_setup(remaining_fraction=0.5)
        jc_full, pc_full = full.inner_params("a", frozenset({"b"}))
        jc_half, pc_half = half.inner_params("a", frozenset({"b"}))
        assert jc_half == pytest.approx(jc_full / 2)
        assert pc_half == pytest.approx(pc_full)

    def test_scan_probe_without_index(self):
        provider_ix, _ = two_table_setup()
        provider_scan, _ = two_table_setup(indexed_columns=frozenset())
        _, pc_ix = provider_ix.inner_params("a", frozenset({"b"}))
        _, pc_scan = provider_scan.inner_params("a", frozenset({"b"}))
        assert pc_scan > 10 * pc_ix

    def test_redundant_class_predicates_filter_once(self):
        # Three tables joined on one equivalence class: with two bound
        # legs, the third leg's JC applies the class selectivity once.
        graph = JoinGraph(
            ["a", "b", "c"],
            [
                JoinPredicate("a", "k", "b", "k"),
                JoinPredicate("b", "k", "c", "k"),
            ],
        )
        class_id = graph.class_id("a", "k")
        models = {alias: make_model(alias) for alias in "abc"}
        provider = ModelProvider(models, {class_id: 0.01}, graph)
        jc_one_bound, _ = provider.inner_params("c", frozenset({"a"}))
        jc_two_bound, _ = provider.inner_params("c", frozenset({"a", "b"}))
        assert jc_one_bound == pytest.approx(jc_two_bound)
