"""Correctness tests for the pipelined executor (static mode).

Every result is checked against the brute-force reference evaluator from
conftest — the executor must produce exactly the same multiset of rows.
"""

import pytest

from repro import AdaptiveConfig, Database, ReorderMode
from repro.errors import ExecutionError
from repro.executor.pipeline import PipelineExecutor

from tests.conftest import build_three_table_db, reference_join

STATIC = AdaptiveConfig(mode=ReorderMode.NONE)


def run_and_check(db, sql):
    from repro.query.query import QuerySpec

    result = db.execute(sql, STATIC)
    plan = db.plan(sql)
    # reference_join needs the (possibly star-expanded) projection.
    expanded = QuerySpec(
        tables=plan.query.tables,
        local_predicates=plan.query.local_predicates,
        join_predicates=plan.query.join_predicates,
        projection=plan.projection,
    )
    expected = reference_join(db, expanded)
    assert sorted(result.rows) == sorted(expected), sql
    return result


class TestTwoTableJoins:
    def test_basic_equijoin(self, three_table_db):
        run_and_check(
            three_table_db,
            "SELECT o.name, c.make FROM Owner o, Car c WHERE c.ownerid = o.id",
        )

    def test_join_with_locals(self, three_table_db):
        run_and_check(
            three_table_db,
            "SELECT o.name FROM Owner o, Car c "
            "WHERE c.ownerid = o.id AND c.make = 'A' AND o.country = 'DE'",
        )

    def test_empty_result(self, three_table_db):
        result = run_and_check(
            three_table_db,
            "SELECT o.name FROM Owner o, Car c "
            "WHERE c.ownerid = o.id AND c.make = 'NoSuchMake'",
        )
        assert result.rows == []

    def test_duplicate_join_values_multiply(self, three_table_db):
        # Owners with two cars must appear once per car.
        run_and_check(
            three_table_db,
            "SELECT o.id, c.id FROM Owner o, Car c WHERE c.ownerid = o.id",
        )


class TestThreeTableJoins:
    def test_chain_join(self, three_table_db):
        run_and_check(
            three_table_db,
            "SELECT o.name, d.salary FROM Owner o, Car c, Demo d "
            "WHERE c.ownerid = o.id AND o.id = d.ownerid",
        )

    def test_chain_join_with_all_locals(self, three_table_db):
        run_and_check(
            three_table_db,
            "SELECT o.name FROM Owner o, Car c, Demo d "
            "WHERE c.ownerid = o.id AND o.id = d.ownerid "
            "AND c.make = 'Rare' AND o.country = 'DE' AND d.salary < 60000",
        )

    def test_or_group(self, three_table_db):
        run_and_check(
            three_table_db,
            "SELECT o.name FROM Owner o, Car c, Demo d "
            "WHERE c.ownerid = o.id AND o.id = d.ownerid "
            "AND (c.make = 'A' OR c.make = 'Rare')",
        )

    def test_between_and_in(self, three_table_db):
        run_and_check(
            three_table_db,
            "SELECT o.name FROM Owner o, Car c, Demo d "
            "WHERE c.ownerid = o.id AND o.id = d.ownerid "
            "AND d.salary BETWEEN 30000 AND 70000 "
            "AND o.country IN ('DE', 'US')",
        )


class TestSingleTable:
    def test_scan(self, three_table_db):
        run_and_check(three_table_db, "SELECT o.name FROM Owner o")

    def test_filtered(self, three_table_db):
        run_and_check(
            three_table_db,
            "SELECT o.name FROM Owner o WHERE o.country = 'US'",
        )

    def test_select_star(self, three_table_db):
        result = three_table_db.execute("SELECT * FROM Owner o", STATIC)
        assert len(result.rows[0]) == 3


class TestForcedOrders:
    """Every connected order of the same plan returns the same rows."""

    def test_all_orders_agree(self, three_table_db):
        sql = (
            "SELECT o.name, c.make FROM Owner o, Car c, Demo d "
            "WHERE c.ownerid = o.id AND o.id = d.ownerid AND d.salary < 50000"
        )
        plan = three_table_db.plan(sql)
        expected = None
        for order in plan.query.join_graph().connected_orders():
            result = three_table_db.execute(plan.with_order(order), STATIC)
            rows = sorted(result.rows)
            if expected is None:
                expected = rows
            assert rows == expected, order


class TestExecutorLifecycle:
    def test_runs_only_once(self, three_table_db):
        plan = three_table_db.plan("SELECT o.name FROM Owner o")
        executor = PipelineExecutor(plan, three_table_db.catalog)
        list(executor.rows())
        with pytest.raises(ExecutionError, match="runs only once"):
            list(executor.rows())

    def test_wall_time_recorded(self, three_table_db):
        result = three_table_db.execute("SELECT o.name FROM Owner o", STATIC)
        assert result.stats.wall_seconds > 0

    def test_rows_emitted_counted(self, three_table_db):
        result = three_table_db.execute("SELECT o.name FROM Owner o", STATIC)
        assert result.stats.work.rows_emitted == len(result.rows)

    def test_streaming_is_lazy(self, three_table_db):
        """The pipeline yields rows without materializing everything."""
        plan = three_table_db.plan("SELECT o.name FROM Owner o")
        executor = PipelineExecutor(plan, three_table_db.catalog)
        iterator = executor.rows()
        first = next(iterator)
        assert first is not None
        fetched_so_far = three_table_db.catalog.meter.row_fetches
        assert fetched_so_far < len(three_table_db.catalog.table("Owner"))


class TestApplyOrderValidation:
    def make_executor(self, db):
        plan = db.plan(
            "SELECT o.name FROM Owner o, Car c, Demo d "
            "WHERE c.ownerid = o.id AND o.id = d.ownerid"
        )
        return PipelineExecutor(plan, db.catalog)

    def test_inner_order_must_be_permutation(self, three_table_db):
        executor = self.make_executor(three_table_db)
        with pytest.raises(ExecutionError, match="permutation"):
            executor.apply_inner_order(1, ["o", "o"])

    def test_inner_order_cannot_touch_driving(self, three_table_db):
        executor = self.make_executor(three_table_db)
        with pytest.raises(ExecutionError, match="driving"):
            executor.apply_inner_order(0, list(executor.order))

    def test_driving_switch_requires_change(self, three_table_db):
        executor = self.make_executor(three_table_db)
        with pytest.raises(ExecutionError):
            executor.apply_driving_switch(list(executor.order))
