"""Ablation — inner reordering policy: greedy ascending rank vs exhaustive.

DESIGN.md Sec 6. The paper orders inner legs by rank (Eq 4), which the ASI
property makes optimal for position-independent parameters; in cyclic
graphs, predicate availability makes parameters position-dependent and
greedy rank ordering is only a heuristic (footnote 2). The exhaustive
variant searches every connected suffix under Eq (1).

Shape: the two policies land within a few percent of each other on this
workload (the join graph is a tree, where rank ordering is optimal), so the
cheap greedy policy is the right default.
"""

from conftest import emit_report

from repro.bench import ablation_experiment
from repro.core.config import AdaptiveConfig, InnerReorderPolicy, ReorderMode


def test_policy_ablation(benchmark, dmv_db, workload_small):
    variants = {
        "static": AdaptiveConfig(mode=ReorderMode.NONE),
        "rank-greedy": AdaptiveConfig(
            mode=ReorderMode.BOTH,
            inner_policy=InnerReorderPolicy.RANK_GREEDY,
            switch_benefit_threshold=0.2,
        ),
        "exhaustive": AdaptiveConfig(
            mode=ReorderMode.BOTH,
            inner_policy=InnerReorderPolicy.EXHAUSTIVE,
            switch_benefit_threshold=0.2,
        ),
    }
    result = benchmark.pedantic(
        lambda: ablation_experiment(dmv_db, workload_small, variants, "static"),
        rounds=1,
        iterations=1,
    )
    emit_report(
        "ablation_policy",
        result.report("Ablation — inner reorder policy (total work)"),
    )
    static_work = result.series["static"][0]
    greedy_work = result.series["rank-greedy"][0]
    exhaustive_work = result.series["exhaustive"][0]
    assert greedy_work < static_work
    assert exhaustive_work < static_work
    # Tree-shaped join graph: greedy rank ordering is near-optimal.
    assert abs(greedy_work - exhaustive_work) / static_work < 0.10
