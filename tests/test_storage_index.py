"""Unit tests for repro.storage.index."""

import pytest

from repro.errors import StorageError
from repro.storage.index import SortedIndex, _RID_HIGH
from repro.storage.schema import Column, TableSchema
from repro.storage.table import HeapTable
from repro.storage.types import ColumnType


def make_indexed_table(values):
    schema = TableSchema(
        "t", [Column("k", ColumnType.INT), Column("v", ColumnType.STRING)]
    )
    table = HeapTable(schema)
    table.insert_many([(value, f"v{i}") for i, value in enumerate(values)])
    return table, SortedIndex("ix", table, "k")


class TestBuild:
    def test_entries_sorted_by_key_then_rid(self):
        _, index = make_indexed_table([3, 1, 3, 2])
        entries = list(index.scan_range())
        assert entries == [(1, 1), (2, 3), (3, 0), (3, 2)]

    def test_none_keys_not_indexed(self):
        _, index = make_indexed_table([1, None, 2])
        assert len(index) == 2

    def test_refresh_after_insert(self):
        table, index = make_indexed_table([1, 2])
        table.insert([0, "new"])
        index.refresh()
        assert [rid for _, rid in index.scan_range()] == [2, 0, 1]

    def test_stale_index_raises(self):
        table, index = make_indexed_table([1])
        table.insert([2, "x"])
        with pytest.raises(StorageError, match="stale"):
            index.lookup_rids(1)

    def test_refresh_noop_when_fresh(self):
        _, index = make_indexed_table([1])
        index.refresh()  # must not raise
        assert len(index) == 1


class TestLookup:
    def test_lookup_hits(self):
        _, index = make_indexed_table([5, 7, 5])
        assert index.lookup_rids(5) == [0, 2]

    def test_lookup_miss(self):
        _, index = make_indexed_table([5])
        assert index.lookup_rids(9) == []

    def test_lookup_none_is_empty(self):
        _, index = make_indexed_table([5, None])
        assert index.lookup_rids(None) == []

    def test_lookup_charges_descend_and_entries(self):
        table, index = make_indexed_table([5, 5, 5])
        before = table.meter.snapshot()
        index.lookup_rids(5)
        delta = table.meter - before
        assert delta.index_descends == 1
        assert delta.index_entries == 3


class TestScanRange:
    def test_inclusive_bounds(self):
        _, index = make_indexed_table([1, 2, 3, 4])
        keys = [k for k, _ in index.scan_range(low=2, high=3)]
        assert keys == [2, 3]

    def test_exclusive_bounds(self):
        _, index = make_indexed_table([1, 2, 3, 4])
        keys = [
            k
            for k, _ in index.scan_range(
                low=1, high=4, low_inclusive=False, high_inclusive=False
            )
        ]
        assert keys == [2, 3]

    def test_unbounded(self):
        _, index = make_indexed_table([2, 1])
        assert [k for k, _ in index.scan_range()] == [1, 2]

    def test_start_after_skips(self):
        _, index = make_indexed_table([1, 2, 2, 3])
        entries = list(index.scan_range(start_after=(2, 1)))
        assert entries == [(2, 2), (3, 3)]

    def test_start_after_before_everything(self):
        _, index = make_indexed_table([1, 2])
        entries = list(index.scan_range(start_after=(0, 10**9)))
        assert [k for k, _ in entries] == [1, 2]

    def test_scan_charges_per_entry(self):
        table, index = make_indexed_table([1, 2, 3])
        before = table.meter.snapshot()
        list(index.scan_range(low=1, high=2))
        delta = table.meter - before
        assert delta.index_entries == 2


class TestCounts:
    def test_count_range(self):
        _, index = make_indexed_table([1, 2, 2, 3])
        assert index.count_range(2, 2) == 2
        assert index.count_range(low=2) == 3
        assert index.count_range() == 4

    def test_count_range_after(self):
        _, index = make_indexed_table([1, 2, 2, 3])
        assert index.count_range_after((2, 1)) == 2
        assert index.count_range_after(None) == 4
        assert index.count_range_after((3, 3)) == 0

    def test_count_range_after_respects_bounds(self):
        _, index = make_indexed_table([1, 2, 2, 3])
        assert index.count_range_after((1, 0), low=2, high=2) == 2
        assert index.count_range_after((2, 1), low=2, high=2) == 1

    def test_counts_do_not_charge(self):
        table, index = make_indexed_table([1, 2])
        before = table.meter.snapshot()
        index.count_range(1, 2)
        index.count_range_after((1, 0))
        assert (table.meter - before).index_entries == 0

    def test_distinct_key_count(self):
        _, index = make_indexed_table([1, 2, 2, 3, 3, 3])
        assert index.distinct_key_count() == 3


class TestStringKeys:
    def test_string_ordering(self):
        schema = TableSchema(
            "s", [Column("k", ColumnType.STRING), Column("v", ColumnType.INT)]
        )
        table = HeapTable(schema)
        table.insert_many([("Mercedes", 1), ("Chevrolet", 2), ("Ford", 3)])
        index = SortedIndex("ix", table, "k")
        keys = [k for k, _ in index.scan_range()]
        assert keys == ["Chevrolet", "Ford", "Mercedes"]


def make_string_indexed_table(values):
    schema = TableSchema(
        "s", [Column("k", ColumnType.STRING), Column("v", ColumnType.INT)]
    )
    table = HeapTable(schema)
    table.insert_many([(value, i) for i, value in enumerate(values)])
    return table, SortedIndex("ix", table, "k")


class TestAfterAnySentinel:
    """The upper RID bound must order after *any* RID type.

    A ``float("inf")`` sentinel only orders against numbers: with equal
    keys, ``(key, inf) > (key, rid)`` raises ``TypeError`` deep inside
    ``bisect`` the moment RIDs are not numeric. The dedicated sentinel
    compares greater than everything except itself.
    """

    def test_orders_after_every_type(self):
        for rid in (0, 10**9, -3, 1.5, "rid-7", ("page", 3), None):
            assert _RID_HIGH > rid
            assert _RID_HIGH >= rid
            assert not _RID_HIGH < rid
            assert not _RID_HIGH <= rid
            assert rid < _RID_HIGH  # reflected comparison, as bisect uses it
            assert _RID_HIGH != rid

    def test_identity_semantics(self):
        assert _RID_HIGH == _RID_HIGH
        assert _RID_HIGH <= _RID_HIGH
        assert _RID_HIGH >= _RID_HIGH
        assert not _RID_HIGH > _RID_HIGH
        assert hash(_RID_HIGH) == hash(_RID_HIGH)

    def test_bisect_with_adversarial_rid_types(self):
        """Regression: bound tuples must stay totally ordered for any RID."""
        _, index = make_indexed_table([1, 1, 2])
        # Simulate an index whose RIDs are strings and tuples (composite
        # positions) — the shapes the float sentinel chokes on.
        index._entries = [
            (1, ("page", 0)),
            (1, ("page", 4)),
            (2, "row-a"),
            (2, "row-b"),
        ]
        assert index._range_bounds(1, 1, True, True) == (0, 2)
        assert index._range_bounds(2, 2, True, True) == (2, 4)
        assert index._range_bounds(1, 2, False, True) == (2, 4)

    def test_duplicate_string_keys_boundary_lookup(self):
        _, index = make_string_indexed_table(["b", "a", "b", "c", "b"])
        assert index.lookup_rids("b") == [0, 2, 4]
        assert index.lookup_rids("a") == [1]
        assert index.lookup_rids("zz") == []


class TestQuietLookups:
    def test_lookup_rids_quiet_matches_charged_twin(self):
        table, index = make_indexed_table([5, 7, 5, 9])
        for key in (5, 7, 9, 42, None):
            assert index.lookup_rids_quiet(key) == index.lookup_rids(key)

    def test_lookup_rids_quiet_charges_nothing(self):
        table, index = make_indexed_table([5, 7, 5])
        before = table.meter.snapshot()
        index.lookup_rids_quiet(5)
        delta = table.meter - before
        assert delta.index_descends == 0
        assert delta.index_entries == 0

    def test_lookup_rows_quiet_returns_heap_rows(self):
        table, index = make_indexed_table([5, 7, 5])
        raw = table.raw_rows()
        assert index.lookup_rows_quiet(5) == [raw[0], raw[2]]
        assert index.lookup_rows_quiet(None) == []

    def test_lookup_rids_batch_matches_pointwise(self):
        table, index = make_indexed_table([5, 7, 5, 9, 7])
        keys = [7, 5, 5, 42, 9]  # unsorted, with duplicates and a miss
        batch = index.lookup_rids_batch(keys)
        for key in set(keys):
            assert batch[key] == index.lookup_rids(key)

    def test_lookup_rows_batch_matches_pointwise(self):
        table, index = make_indexed_table([5, 7, 5, 9])
        raw = table.raw_rows()
        batch = index.lookup_rows_batch([9, 5])
        assert batch == {5: [raw[0], raw[2]], 9: [raw[3]]}

    def test_batch_lookups_charge_nothing(self):
        table, index = make_indexed_table([5, 7, 5])
        before = table.meter.snapshot()
        index.lookup_rids_batch([5, 7])
        index.lookup_rows_batch([5, 7])
        delta = table.meter - before
        assert delta.index_descends == 0
        assert delta.index_entries == 0
        assert delta.row_fetches == 0


class TestFilteredGroups:
    def test_groups_filter_and_count_evals(self):
        table, index = make_indexed_table([5, 5, 7])
        # Rows: (5,"v0") rid0, (5,"v1") rid1, (7,"v2") rid2.
        tests = [lambda row: row[1] != "v0"]
        groups = index.filtered_groups(tests)
        raw = table.raw_rows()
        assert groups[5] == ([raw[1]], 2, 2)  # one eval per candidate row
        assert groups[7] == ([raw[2]], 1, 1)

    def test_short_circuit_eval_counts(self):
        table, index = make_indexed_table([5, 5])
        fails_first = [lambda row: False, lambda row: True]
        groups = index.filtered_groups(fails_first)
        # Each row charges only the first (failing) test: 1 eval per row.
        assert groups[5] == ([], 2, 2)

    def test_empty_tests_pass_everything(self):
        table, index = make_indexed_table([5, 7])
        raw = table.raw_rows()
        groups = index.filtered_groups([])
        assert groups[5] == ([raw[0]], 0, 1)
        assert groups[7] == ([raw[1]], 0, 1)
