"""Speedup of the fast adaptive modes on the six-table DMV workload.

Measures three executor variants of the same workload per reorder mode:

* ``scalar``  — the row-at-a-time pipeline (the paper's executor),
* ``batched`` — driving-leg batches + merged-descent ``probe_batch``;
  monitored modes run it with ``monitor_granularity="chunk"`` (the fast
  adaptive mode: O(1)-per-chunk window updates, checks at chunk
  boundaries),
* ``cached``  — batched plus the per-leg LRU probe cache.

Variant reps are interleaved (scalar, batched, cached, scalar, ...) and the
minimum per variant is reported, so machine-load drift hits every variant
alike instead of biasing whichever ran last. Every variant's result rows are
checked against scalar's per query — a speedup that changes answers must
fail loudly, not report numbers.

Each variant records the executor configuration it ran under (``config``),
and the probe-cache counters appear only for variants that actually arm a
cache — an uncached variant *has* no cache, so it reports nothing rather
than a misleading ``probe_cache_hits: 0``.

The ``backends`` section re-runs the same variants — plus an
``adaptive_vector`` variant pinning the vectorized cascade's qualifying
configuration (batched, chunk granularity, no probe cache) — against the
**columnar** storage backend (same data, same RIDs) and reports each
variant's speedup over the *row scalar* baseline of the same mode — the
headline numbers of the columnar backend. Columnar result rows are
verified against the row backend's per query, so the cross-backend
speedups are for bit-identical answers. Every variant records which
execution engine(s) actually ran (``engines``); under ``--check`` the
``adaptive_vector`` variant must have run a vectorized-cascade engine,
and full-scale runs additionally hold the chunked adaptive engine's
mode-BOTH >=10x floor over the row scalar.

A second section sweeps ``workers`` in {1, 2, 4} over a *scan-heavy*
workload (driving legs with thousands of entries — the six-table templates
drive from the 200-row Location table, where single hot entries bound any
partitioned speedup). Parallel speedup is reported on the deterministic
work-unit critical path (``ExecutionStats.critical_path_work``), the
machine-independent analogue of parallel elapsed time — this container may
not have enough cores for wall-clock parallelism.

A ``parallel_vector`` section measures the partitioned vectorized
cascades in *wall clock*: per mode it times the row scalar pipeline and
the serial columnar cascade (static for mode NONE, chunked adaptive for
monitored modes), then each worker count with one unmeasured warm-up
pass (pool fork + COW-shared kernel plan happen off the clock), and
records the engines every partition ran. Under ``--check`` the engines
must be the mode's vectorized cascades (vacuity gate, numpy only);
full-scale runs on machines with >= PARALLEL_VECTOR_MIN_CPUS cores
additionally hold absolute speedup floors at 4 workers.

A third section measures the always-on flight recorder: the adaptive
six-table workload runs disarmed and with a recorder-armed (cold) bundle,
interleaved min-of-reps, and reports the armed wall overhead. The recorder
contract is ≤5% — under ``--check`` a larger overhead fails the run.

Results go to ``BENCH_speedup.json`` at the repo root (atomic write), so the
perf trajectory of future PRs is recorded. Any mode whose speedup regresses
vs the stored baseline is reported loudly on stderr; under ``--check`` the
process also exits non-zero if the batched path is slower than scalar by
more than 10%, or the armed recorder costs more than 5% wall.

Usage::

    PYTHONPATH=src python benchmarks/bench_speedup.py --adaptive  # full run
    PYTHONPATH=src python benchmarks/bench_speedup.py --quick --check  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

from repro.bench.runner import write_json_atomic
from repro.core.config import AdaptiveConfig, ReorderMode
from repro.dmv import load_dmv, six_table_workload

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: --check fails when batched exceeds scalar time by more than this factor.
CHECK_TOLERANCE = 1.10

#: --check (full scale) fails when the mode-BOTH columnar adaptive_vector
#: variant speeds up less than this over the row scalar baseline — the
#: chunked vectorized adaptive engine's headline contract.
MODE_BOTH_COLUMNAR_FLOOR = 10.0

#: A stored-baseline speedup may drift down by this factor before the
#: regression report fires (wall-clock noise allowance).
REGRESSION_TOLERANCE = 0.90

#: --check fails when an armed flight recorder costs more than this much
#: wall time over the disarmed adaptive run (the recorder's ≤5% budget).
OBSERVABILITY_GATE_PCT = 5.0

#: Absolute wall-clock floors for the ``parallel_vector`` section at 4
#: workers, applied under ``--check`` on full-scale runs with at least
#: PARALLEL_VECTOR_MIN_CPUS cores (a 1-core container cannot express
#: wall-clock parallelism; the engine vacuity gates still apply there).
PARALLEL_VECTOR_NONE_FLOOR = 2.0    # mode NONE vs the serial static cascade
PARALLEL_VECTOR_ROW_FLOOR = 60.0    # mode NONE vs the row scalar pipeline
PARALLEL_VECTOR_BOTH_FLOOR = 1.7    # mode BOTH vs the serial adaptive cascade
PARALLEL_VECTOR_MIN_CPUS = 4

#: Scan-heavy queries for the workers sweep: driving scans with thousands
#: of entries partition well; the six-table templates (driving from the
#: 200-row Location table) are skew-bound and stay in the wall-clock
#: section above.
PARALLEL_WORKLOAD = [
    (
        "own-car",
        "SELECT o.name, c.make FROM Car c, Owner o "
        "WHERE c.ownerid = o.id AND c.year >= 2005",
    ),
    (
        "own-car-dem",
        "SELECT o.name, c.make FROM Demographics d, Owner o, Car c "
        "WHERE d.ownerid = o.id AND c.ownerid = o.id AND d.salary > 50000",
    ),
    (
        "acc-car-own",
        "SELECT o.name, x.damage FROM Accidents x, Car c, Owner o "
        "WHERE x.carid = c.id AND c.ownerid = o.id AND x.year >= 2000",
    ),
]


def build_variants(
    mode: ReorderMode, batch_size: int, cache_size: int
) -> dict[str, AdaptiveConfig]:
    # Monitored modes get the amortized chunk-granularity windows — the
    # fast adaptive mode this benchmark exists to measure. Mode NONE has
    # no monitors, so granularity is irrelevant there.
    granularity = "chunk" if mode.monitors else "exact"
    return {
        "scalar": AdaptiveConfig(mode=mode),
        "batched": AdaptiveConfig(
            mode=mode,
            batched=True,
            batch_size=batch_size,
            monitor_granularity=granularity,
        ),
        "cached": AdaptiveConfig(
            mode=mode,
            batched=True,
            batch_size=batch_size,
            probe_cache_size=cache_size,
            monitor_granularity=granularity,
        ),
    }


def build_backend_variants(
    mode: ReorderMode, batch_size: int, cache_size: int
) -> dict[str, AdaptiveConfig]:
    """The backends-section variants: the row trio plus ``adaptive_vector``.

    ``adaptive_vector`` pins the vectorized engine's qualifying
    configuration — batched, chunk-granularity monitoring, no probe cache
    (a cache disqualifies the cascade) — so the recorded ``engines`` list
    proves the chunked adaptive cascade (monitored modes) or the static
    cascade (mode NONE) actually ran, and the mode-``both`` perf gate has
    a named variant to hold.
    """
    variants = build_variants(mode, batch_size, cache_size)
    variants["adaptive_vector"] = AdaptiveConfig(
        mode=mode,
        batched=True,
        batch_size=batch_size,
        monitor_granularity="chunk" if mode.monitors else "exact",
    )
    return variants


def variant_config_summary(config: AdaptiveConfig) -> dict:
    """The executor knobs a variant ran under, for the JSON record."""
    return {
        "batched": config.batched,
        "batch_size": config.batch_size if config.batched else None,
        "probe_cache_size": config.probe_cache_size,
        "monitor_granularity": (
            config.monitor_granularity if config.batched else None
        ),
    }


def measure_mode(
    db, queries, variants, reps: int, reference: dict[str, list] | None = None
) -> dict[str, dict]:
    """Min-of-reps wall seconds per variant, with result verification.

    *reference* maps qid -> sorted rows; pass a populated dict to verify
    against another measurement's answers (the cross-backend check), or
    leave None to verify variants against each other only.

    Probe-cache counters are recorded only for variants whose config arms
    a cache (``probe_cache_size > 0``); other variants have no cache, so
    the keys are absent rather than zero.
    """
    best = {name: float("inf") for name in variants}
    meters: dict[str, dict] = {name: {} for name in variants}
    engines: dict[str, set] = {name: set() for name in variants}
    if reference is None:
        reference = {}
    for rep in range(reps):
        for name, config in variants.items():
            arms_cache = config.probe_cache_size > 0
            total = 0.0
            hits = misses = 0
            for query in queries:
                outcome = db.execute(query.sql, config)
                total += outcome.stats.wall_seconds
                if arms_cache:
                    hits += outcome.stats.work.probe_cache_hits
                    misses += outcome.stats.work.probe_cache_misses
                if rep == 0:
                    engines[name].add(outcome.stats.engine)
                    rows = sorted(outcome.rows)
                    expected = reference.setdefault(query.qid, rows)
                    if rows != expected:
                        raise AssertionError(
                            f"{query.qid}: variant {name!r} changed the result set"
                        )
            if total < best[name]:
                best[name] = total
                meters[name] = {
                    "wall_seconds": total,
                    "config": variant_config_summary(config),
                }
                if arms_cache:
                    meters[name]["probe_cache_hits"] = hits
                    meters[name]["probe_cache_misses"] = misses
    for name in meters:
        # Which execution engine(s) ran the variant's queries (engine
        # choice is deterministic, so rep 0 covers it).
        meters[name]["engines"] = sorted(engines[name])
    return meters


def measure_parallel(
    db, workload, workers_sweep: tuple[int, ...], modes
) -> dict[str, dict]:
    """Critical-path work-unit speedups for the workers sweep.

    Speedup of ``workers=N`` is (workers=1 total work) / (workers=N
    critical-path work) summed over the workload — deterministic, so no
    reps are needed. Result rows are verified against the serial run.
    """
    section: dict[str, dict] = {}
    for mode in modes:
        base_work = 0.0
        reference: dict[str, list] = {}
        for qid, sql in workload:
            outcome = db.execute(sql, AdaptiveConfig(mode=mode))
            base_work += outcome.stats.work.total_units
            reference[qid] = sorted(outcome.rows)
        entry: dict = {"workers_1_work_units": base_work, "sweep": {}}
        for workers in workers_sweep:
            if workers < 2:
                continue
            critical = 0.0
            partitioned = 0
            for qid, sql in workload:
                outcome = db.execute(
                    sql, AdaptiveConfig(mode=mode, workers=workers)
                )
                if sorted(outcome.rows) != reference[qid]:
                    raise AssertionError(
                        f"{qid}: workers={workers} changed the result set"
                    )
                if outcome.stats.critical_path_work is not None:
                    critical += outcome.stats.critical_path_work
                    partitioned += 1
                else:
                    # Fallback to serial: charge full work to the path.
                    critical += outcome.stats.work.total_units
            entry["sweep"][str(workers)] = {
                "critical_path_work_units": critical,
                "queries_partitioned": partitioned,
                "speedup_vs_workers_1": base_work / critical,
            }
        section[mode.name.lower()] = entry
    return section


def measure_parallel_vector(
    row_db, columnar_db, workload, workers_sweep: tuple[int, ...],
    modes, reps: int,
) -> dict[str, dict]:
    """Wall-clock speedups of the partitioned vectorized cascades.

    Per mode, two scale-matched serial baselines run first (min of
    *reps*): the row scalar pipeline and the serial vectorized cascade on
    the columnar backend (mode NONE: the static cascade; monitored modes:
    the chunked adaptive cascade). Each worker count then runs the same
    columnar configuration partitioned — one unmeasured warm-up pass
    builds the fork pool and the COW-shared kernel plan, then min-of-reps
    wall — and reports its speedup over both baselines plus the engines
    every partition actually ran (``ExecutionStats.worker_engines``).
    Result rows are verified against the row backend per query.
    """
    section: dict[str, dict] = {}
    for mode in modes:
        granularity = "chunk" if mode.monitors else "exact"
        row_config = AdaptiveConfig(mode=mode)
        serial_config = AdaptiveConfig(
            mode=mode, batched=True, monitor_granularity=granularity
        )
        reference: dict[str, list] = {}
        row_wall = serial_wall = float("inf")
        serial_engines: set[str] = set()
        for rep in range(reps):
            total = 0.0
            for qid, sql in workload:
                outcome = row_db.execute(sql, row_config)
                total += outcome.stats.wall_seconds
                if rep == 0:
                    reference[qid] = sorted(outcome.rows)
            row_wall = min(row_wall, total)
            total = 0.0
            for qid, sql in workload:
                outcome = columnar_db.execute(sql, serial_config)
                total += outcome.stats.wall_seconds
                if rep == 0:
                    serial_engines.add(outcome.stats.engine)
                    if sorted(outcome.rows) != reference[qid]:
                        raise AssertionError(
                            f"{qid}: serial columnar changed the result set"
                        )
            serial_wall = min(serial_wall, total)
        entry: dict = {
            "row_scalar_wall_seconds": row_wall,
            "serial_vector_wall_seconds": serial_wall,
            "serial_engines": sorted(serial_engines),
            "sweep": {},
        }
        for workers in workers_sweep:
            if workers < 2:
                continue
            config = AdaptiveConfig(
                mode=mode,
                batched=True,
                monitor_granularity=granularity,
                workers=workers,
            )
            for _, sql in workload:  # warm-up: fork pool + kernel plan
                columnar_db.execute(sql, config)
            best = float("inf")
            engines: set[str] = set()
            gate = None
            for rep in range(reps):
                total = 0.0
                for qid, sql in workload:
                    outcome = columnar_db.execute(sql, config)
                    total += outcome.stats.wall_seconds
                    if rep == 0:
                        stats = outcome.stats
                        engines.update(
                            stats.worker_engines or (stats.engine,)
                        )
                        if gate is None and stats.vector_gate:
                            gate = stats.vector_gate
                        if sorted(outcome.rows) != reference[qid]:
                            raise AssertionError(
                                f"{qid}: workers={workers} changed the "
                                f"result set"
                            )
                best = min(best, total)
            entry["sweep"][str(workers)] = {
                "wall_seconds": best,
                "worker_engines": sorted(engines),
                "vector_gate": gate,
                "speedup_vs_serial_vector": serial_wall / best,
                "speedup_vs_row_scalar": row_wall / best,
            }
        section[mode.name.lower()] = entry
    return section


def measure_observability(db, queries, reps: int) -> dict:
    """Armed-recorder vs disarmed wall time on the adaptive workload.

    The recorder bundle is cold (no per-row hooks), so its only
    admissible cost is audit capture at the controller's check points —
    wall-clock only, never work units. The differential work-unit check
    is structural: any meter delta is a bug, not an overhead.

    Timing methodology: the true overhead (a tuple append per kept
    check) is small enough that scheduler noise swamps a naive A/B
    measurement. Both variants are warmed once, then each rep runs the
    two variants back-to-back *per query* — alternating which goes first
    — and the reported figure compares sums of per-query minima, the
    most noise-robust point statistic for a deterministic workload.
    """
    from repro.obs.recorder import FlightRecorder

    config = AdaptiveConfig(mode=ReorderMode.BOTH)
    recorder = FlightRecorder(capacity=max(len(queries) * 2, 8))
    work = {"disarmed": 0.0, "armed": 0.0}

    def run(query, name: str):
        if name == "armed":
            bundle = recorder.arm(config)
            outcome = db.execute(query.sql, config, obs=bundle)
            recorder.finish_query(
                bundle, outcome, sql=query.sql, config=config
            )
        else:
            outcome = db.execute(query.sql, config)
        return outcome

    for name in ("disarmed", "armed"):  # warm caches off the clock
        units = 0.0
        for query in queries:
            units += run(query, name).stats.total_work
        work[name] = units
    if work["armed"] != work["disarmed"]:
        raise AssertionError(
            "armed recorder changed deterministic work units "
            f"({work['armed']} != {work['disarmed']})"
        )

    best = {
        "disarmed": [float("inf")] * len(queries),
        "armed": [float("inf")] * len(queries),
    }
    for rep in range(reps):
        order = ("disarmed", "armed") if rep % 2 == 0 else ("armed", "disarmed")
        for index, query in enumerate(queries):
            for name in order:
                wall = run(query, name).stats.wall_seconds
                if wall < best[name][index]:
                    best[name][index] = wall
    disarmed = sum(best["disarmed"])
    armed = sum(best["armed"])
    overhead_pct = (armed / disarmed - 1.0) * 100.0
    return {
        "disarmed_wall_seconds": disarmed,
        "armed_wall_seconds": armed,
        "overhead_pct": overhead_pct,
        "work_units": work["disarmed"],
        "records": recorder.recorded_total,
    }


def report_regressions(output_path: str, payload: dict) -> list[str]:
    """Compare against the stored baseline; return loud human lines."""
    path = pathlib.Path(output_path)
    if not path.exists():
        return []
    try:
        baseline = json.loads(path.read_text())
    except (OSError, ValueError):
        return []
    lines: list[str] = []
    if baseline.get("scale") != payload.get("scale") or baseline.get(
        "query_count"
    ) != payload.get("query_count"):
        # A quick/CI run against a full-scale stored baseline (or vice
        # versa) would compare apples to oranges — speedups shrink with
        # scale as fixed per-query overheads dominate.
        return []
    for mode, meters in payload.get("modes", {}).items():
        old_meters = baseline.get("modes", {}).get(mode, {})
        for variant, data in meters.items():
            new = data.get("speedup_vs_scalar")
            old = old_meters.get(variant, {}).get("speedup_vs_scalar")
            if new is None or old is None:
                continue
            if new < old * REGRESSION_TOLERANCE:
                lines.append(
                    f"REGRESSION: mode {mode} variant {variant} speedup "
                    f"{new:.2f}x < stored baseline {old:.2f}x"
                )
    for backend, backend_entry in payload.get("backends", {}).items():
        old_backend = baseline.get("backends", {}).get(backend, {})
        for mode, meters in backend_entry.get("modes", {}).items():
            old_meters = old_backend.get("modes", {}).get(mode, {})
            for variant, data in meters.items():
                new = data.get("speedup_vs_row_scalar")
                old = old_meters.get(variant, {}).get("speedup_vs_row_scalar")
                if new is None or old is None:
                    continue
                if new < old * REGRESSION_TOLERANCE:
                    lines.append(
                        f"REGRESSION: backend {backend} mode {mode} variant "
                        f"{variant} speedup {new:.2f}x < stored baseline "
                        f"{old:.2f}x"
                    )
    for mode, entry in payload.get("parallel", {}).items():
        old_entry = baseline.get("parallel", {}).get(mode, {})
        for workers, data in entry.get("sweep", {}).items():
            new = data.get("speedup_vs_workers_1")
            old = (
                old_entry.get("sweep", {})
                .get(workers, {})
                .get("speedup_vs_workers_1")
            )
            if new is None or old is None:
                continue
            if new < old * REGRESSION_TOLERANCE:
                lines.append(
                    f"REGRESSION: parallel mode {mode} workers={workers} "
                    f"speedup {new:.2f}x < stored baseline {old:.2f}x"
                )
    for mode, entry in payload.get("parallel_vector", {}).items():
        old_entry = baseline.get("parallel_vector", {}).get(mode, {})
        for workers, data in entry.get("sweep", {}).items():
            new = data.get("speedup_vs_serial_vector")
            old = (
                old_entry.get("sweep", {})
                .get(workers, {})
                .get("speedup_vs_serial_vector")
            )
            if new is None or old is None:
                continue
            if new < old * REGRESSION_TOLERANCE:
                lines.append(
                    f"REGRESSION: parallel_vector mode {mode} "
                    f"workers={workers} speedup {new:.2f}x < stored "
                    f"baseline {old:.2f}x"
                )
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.1, help="DMV scale factor")
    parser.add_argument("--count", type=int, default=6, help="six-table query count")
    parser.add_argument("--reps", type=int, default=7, help="interleaved repetitions")
    parser.add_argument("--batch-size", type=int, default=256)
    parser.add_argument(
        "--cache-size",
        type=int,
        default=4096,
        help="probe-cache capacity for the cached variant",
    )
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="also measure mode BOTH (adaptive reordering) variants",
    )
    parser.add_argument(
        "--workers-sweep",
        default="1,2,4",
        help="comma-separated worker counts for the parallel section",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small scale/count, static mode only (CI smoke)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit 1 if batched > {CHECK_TOLERANCE:.2f}x scalar wall time",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_speedup.json"),
        help="where to write the JSON payload",
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.scale = min(args.scale, 0.05)
        args.count = min(args.count, 3)
        args.reps = min(args.reps, 3)
        # Quick runs still measure mode BOTH so the CI smoke exercises
        # the adaptive-vector variant and its engine (vacuity) gate; the
        # absolute mode-both floor stays full-scale only.
        args.adaptive = True
    workers_sweep = tuple(
        int(part) for part in args.workers_sweep.split(",") if part.strip()
    )

    db, summary = load_dmv(scale=args.scale, extended=True)
    columnar_db, _ = load_dmv(
        scale=args.scale, extended=True, backend="columnar"
    )
    queries = six_table_workload(count=args.count)

    modes = [ReorderMode.NONE]
    if args.adaptive:
        modes.append(ReorderMode.BOTH)

    payload: dict = {
        "benchmark": "six_table_speedup",
        "unix_time": time.time(),
        "scale": args.scale,
        "query_count": len(queries),
        "reps": args.reps,
        "batch_size": args.batch_size,
        "cache_size": args.cache_size,
        "modes": {},
        "backends": {"columnar": {"modes": {}}},
    }
    check_failed = False
    engine_gate_failed = False
    for mode in modes:
        variants = build_variants(mode, args.batch_size, args.cache_size)
        reference: dict[str, list] = {}
        meters = measure_mode(db, queries, variants, args.reps, reference)
        scalar = meters["scalar"]["wall_seconds"]
        batched = meters["batched"]["wall_seconds"]
        cached = meters["cached"]["wall_seconds"]
        for name in meters:
            meters[name]["speedup_vs_scalar"] = scalar / meters[name]["wall_seconds"]
        payload["modes"][mode.name.lower()] = meters
        print(
            f"{mode.name.lower():8s} scalar={scalar:.3f}s "
            f"batched={batched:.3f}s ({scalar / batched:.2f}x) "
            f"cached={cached:.3f}s ({scalar / cached:.2f}x)"
        )
        if mode is ReorderMode.NONE and batched > scalar * CHECK_TOLERANCE:
            check_failed = True

        # Columnar backend: same variants plus ``adaptive_vector``, same
        # queries, answers verified against the row backend's (the shared
        # *reference*); speedups are vs the row scalar baseline above.
        col_variants = build_backend_variants(
            mode, args.batch_size, args.cache_size
        )
        col_meters = measure_mode(
            columnar_db, queries, col_variants, args.reps, reference
        )
        for name in col_meters:
            col_meters[name]["speedup_vs_row_scalar"] = (
                scalar / col_meters[name]["wall_seconds"]
            )
        payload["backends"]["columnar"]["modes"][mode.name.lower()] = col_meters
        col_batched = col_meters["batched"]["wall_seconds"]
        col_vector = col_meters["adaptive_vector"]["wall_seconds"]
        print(
            f"{mode.name.lower():8s} columnar "
            f"scalar={col_meters['scalar']['wall_seconds']:.3f}s "
            f"({scalar / col_meters['scalar']['wall_seconds']:.2f}x) "
            f"batched={col_batched:.3f}s ({scalar / col_batched:.2f}x) "
            f"adaptive_vector={col_vector:.3f}s "
            f"({scalar / col_vector:.2f}x, engines "
            f"{','.join(col_meters['adaptive_vector']['engines'])})"
        )
        # Vacuity guard: the adaptive_vector variant must actually run a
        # vectorized-cascade engine on every query (mode NONE: the static
        # cascade; monitored modes: the chunked adaptive engine, allowing
        # mid-query handoff after a driving switch).
        expected_engines = (
            {"vector"}
            if not mode.monitors
            else {"vector-adaptive", "vector-adaptive+fast"}
        )
        stray = set(col_meters["adaptive_vector"]["engines"]) - expected_engines
        if stray:
            print(
                f"CHECK FAILED: adaptive_vector variant (mode "
                f"{mode.name.lower()}) ran non-vector engine(s): "
                f"{sorted(stray)}",
                file=sys.stderr,
            )
            engine_gate_failed = True
        # The chunked adaptive engine's perf contract: mode BOTH columnar
        # at full scale must hold a >=10x speedup over the row scalar
        # (quick/CI scales are dominated by fixed per-query overheads, so
        # the absolute floor applies to full runs only).
        if (
            mode is ReorderMode.BOTH
            and not args.quick
            and scalar / col_vector < MODE_BOTH_COLUMNAR_FLOOR
        ):
            print(
                f"CHECK FAILED: columnar mode-both adaptive_vector speedup "
                f"{scalar / col_vector:.2f}x below the "
                f"{MODE_BOTH_COLUMNAR_FLOOR:.0f}x floor",
                file=sys.stderr,
            )
            engine_gate_failed = True

    # The recorder's true overhead (a tuple append per kept check) sits
    # well under the scheduler-noise floor of a single pass, so the
    # differential needs more reps than the speedup table to converge.
    observability = measure_observability(db, queries, max(args.reps * 3, 9))
    payload["observability"] = observability
    print(
        f"recorder disarmed={observability['disarmed_wall_seconds']:.3f}s "
        f"armed={observability['armed_wall_seconds']:.3f}s "
        f"overhead={observability['overhead_pct']:+.1f}% "
        f"({observability['records']} records)"
    )
    observability_failed = (
        observability["overhead_pct"] > OBSERVABILITY_GATE_PCT
    )

    parallel_workload = (
        PARALLEL_WORKLOAD[:1] if args.quick else PARALLEL_WORKLOAD
    )
    parallel_sweep = (
        tuple(w for w in workers_sweep if w <= 2)
        if args.quick
        else workers_sweep
    )
    payload["parallel"] = measure_parallel(
        db, parallel_workload, parallel_sweep, modes
    )
    for mode_name, entry in payload["parallel"].items():
        line = f"parallel {mode_name:8s} w1={entry['workers_1_work_units']:,.0f} units"
        for workers, data in entry["sweep"].items():
            line += (
                f" w{workers}={data['speedup_vs_workers_1']:.2f}x"
            )
        print(line)

    # Partitioned vectorized cascades: wall-clock speedups of the
    # parallel columnar engine over its two serial baselines, per mode.
    from repro.storage.columnar import _np as _have_numpy

    payload["parallel_vector"] = measure_parallel_vector(
        db, columnar_db, parallel_workload, parallel_sweep, modes, args.reps
    )
    for mode_name, entry in payload["parallel_vector"].items():
        line = (
            f"parallel_vector {mode_name:8s} "
            f"row={entry['row_scalar_wall_seconds']:.3f}s "
            f"serial={entry['serial_vector_wall_seconds']:.3f}s"
        )
        for workers, data in entry["sweep"].items():
            line += (
                f" w{workers}={data['wall_seconds']:.3f}s "
                f"({data['speedup_vs_serial_vector']:.2f}x serial, "
                f"{data['speedup_vs_row_scalar']:.2f}x row)"
            )
        print(line)
        # Vacuity guard: every partition (and continuation) of every
        # sweep point must have run the mode's vectorized cascade.
        expected_engines = (
            {"vector"}
            if mode_name == "none"
            else {"vector-adaptive", "vector-adaptive+fast"}
        )
        if _have_numpy is not None:
            for workers, data in entry["sweep"].items():
                stray = set(data["worker_engines"]) - expected_engines
                if stray:
                    print(
                        f"CHECK FAILED: parallel_vector mode {mode_name} "
                        f"workers={workers} ran non-vector engine(s): "
                        f"{sorted(stray)} "
                        f"(gate: {data['vector_gate']!r})",
                        file=sys.stderr,
                    )
                    engine_gate_failed = True
        # Absolute wall-clock floors need real cores and full scale; a
        # quick run or a starved container still enforces the vacuity
        # gate above but records the honest wall numbers without gating.
        cpus = os.cpu_count() or 1
        if (
            _have_numpy is not None
            and not args.quick
            and cpus >= PARALLEL_VECTOR_MIN_CPUS
            and "4" in entry["sweep"]
        ):
            at4 = entry["sweep"]["4"]
            floors = (
                [
                    ("vs serial static cascade",
                     at4["speedup_vs_serial_vector"],
                     PARALLEL_VECTOR_NONE_FLOOR),
                    ("vs row scalar",
                     at4["speedup_vs_row_scalar"],
                     PARALLEL_VECTOR_ROW_FLOOR),
                ]
                if mode_name == "none"
                else [
                    ("vs serial adaptive cascade",
                     at4["speedup_vs_serial_vector"],
                     PARALLEL_VECTOR_BOTH_FLOOR),
                ]
            )
            for label, actual, floor in floors:
                if actual < floor:
                    print(
                        f"CHECK FAILED: parallel_vector mode {mode_name} "
                        f"workers=4 speedup {label} {actual:.2f}x below "
                        f"the {floor:.1f}x floor",
                        file=sys.stderr,
                    )
                    engine_gate_failed = True

    regressions = report_regressions(args.output, payload)
    for line in regressions:
        print(line, file=sys.stderr)
    # The columnar backend's static speedup is a hard perf contract: under
    # --check, falling below the stored baseline fails the run (other
    # regressions stay report-only — wall-clock noise on shared runners).
    columnar_regressed = any(
        line.startswith("REGRESSION: backend columnar mode none")
        or line.startswith("REGRESSION: backend columnar mode both")
        for line in regressions
    )

    write_json_atomic(args.output, payload)
    print(f"wrote {args.output}")
    db.close()
    columnar_db.close()
    if args.check and check_failed:
        print(
            f"CHECK FAILED: batched path slower than scalar by more than "
            f"{(CHECK_TOLERANCE - 1) * 100:.0f}%",
            file=sys.stderr,
        )
        return 1
    if args.check and observability_failed:
        print(
            f"CHECK FAILED: armed flight recorder costs "
            f"{observability['overhead_pct']:.1f}% wall "
            f"(> {OBSERVABILITY_GATE_PCT:.0f}% budget)",
            file=sys.stderr,
        )
        return 1
    if args.check and engine_gate_failed:
        # The specific CHECK FAILED line was already printed inline.
        return 1
    if args.check and columnar_regressed:
        print(
            "CHECK FAILED: columnar cascade speedup regressed below the "
            "stored baseline",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
