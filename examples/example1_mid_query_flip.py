"""The paper's Example 1: the optimal join order changes *mid-query*.

A scan over ``make IN ('Chevrolet', 'Mercedes')`` processes Chevrolets
first (index key order). Chevrolet owners are rarely German but usually
earn under 50k; Mercedes owners are often German but rarely earn under
50k. So during the Chevrolet phase the Owner leg filters best, and during
the Mercedes phase the Demographics leg does — "any fixed order of the
Demographics and Owner tables would be suboptimal for the entire data set."

This script builds exactly that data, pins the driving leg to Car, and
shows the inner legs being reordered in the middle of the scan.

Run with::

    python examples/example1_mid_query_flip.py
"""

import random

from repro import AdaptiveConfig, Database, ReorderMode
from repro.core.controller import AdaptationController
from repro.executor.pipeline import PipelineExecutor


def build_database(owners: int = 6000, seed: int = 5) -> Database:
    rng = random.Random(seed)
    db = Database()
    db.create_table("Owner", [("id", "int"), ("name", "string"), ("country1", "string")])
    db.create_table("Car", [("id", "int"), ("ownerid", "int"), ("make", "string")])
    db.create_table("Demographics", [("ownerid", "int"), ("salary", "int")])
    owner_rows, cars, demo = [], [], []
    for i in range(owners):
        if i % 2 == 0:  # Chevrolet world: US, modest income
            make = "Chevrolet"
            country = "Germany" if rng.random() < 0.05 else "United States"
            salary = 20_000 + rng.randrange(25_000)
        else:  # Mercedes world: often German, high income
            make = "Mercedes"
            country = "Germany" if rng.random() < 0.75 else "United States"
            salary = 60_000 + rng.randrange(60_000)
        owner_rows.append((i, f"owner{i}", country))
        cars.append((i, i, make))
        demo.append((i, salary))
    db.insert("Owner", owner_rows)
    db.insert("Car", cars)
    db.insert("Demographics", demo)
    for table, column in [
        ("Owner", "id"), ("Car", "ownerid"), ("Car", "make"),
        ("Demographics", "ownerid"), ("Demographics", "salary"),
    ]:
        db.create_index(table, column)
    db.analyze()
    return db


SQL = """
    SELECT o.name FROM Owner o, Car c, Demographics d
    WHERE c.ownerid = o.id AND o.id = d.ownerid
      AND (c.make = 'Chevrolet' OR c.make = 'Mercedes')
      AND o.country1 = 'Germany' AND d.salary < 50000
"""


def run_with_order(db, plan, order, config):
    controller = (
        AdaptationController(config) if config.mode.monitors else None
    )
    executor = PipelineExecutor(plan.with_order(order), db.catalog, config, controller)
    if controller is not None:
        controller.attach(executor)
    rows = executor.run_to_completion()
    return rows, executor


def main() -> None:
    db = build_database()
    plan = db.plan(SQL)
    # Pin Car as the driving leg (the paper's "likely plan").
    driving_first = ("c",) + tuple(a for a in plan.order if a != "c")

    static = AdaptiveConfig(mode=ReorderMode.NONE)
    adaptive = AdaptiveConfig(
        mode=ReorderMode.INNER_ONLY, history_window=200, warmup_rows=5
    )

    rows_a, exec_a = run_with_order(db, plan, ("c", "o", "d"), static)
    rows_b, exec_b = run_with_order(db, plan, ("c", "d", "o"), static)
    rows_ad, exec_ad = run_with_order(db, plan, driving_first, adaptive)
    assert sorted(rows_a) == sorted(rows_b) == sorted(rows_ad)

    print(f"fixed order Car,Owner,Demographics : {exec_a.work_units:12,.0f} work units")
    print(f"fixed order Car,Demographics,Owner : {exec_b.work_units:12,.0f} work units")
    print(f"adaptive inner reordering          : {exec_ad.work_units:12,.0f} work units")
    print(f"\ninner reorders during the scan: {exec_ad.inner_reorders}")
    print("order history:")
    for order in exec_ad.order_history:
        print(f"  {order}")
    print(
        "\nThe pipeline starts in one order, and flips Owner/Demographics "
        "when the scan moves from Chevrolets to Mercedes."
    )



if __name__ == "__main__":
    main()
