"""The columnar storage backend: typed columns + vectorized index kernels.

:class:`ColumnarTable` stores each column in a typed ``array.array``
(``q`` for INT, ``d`` for FLOAT) with a one-byte-per-row null mask, and
dictionary-encodes STRING columns (``array('i')`` codes + an
insertion-ordered decode list). Rows are **views**: the table lazily
materializes the familiar row-tuple list on first row-wise access and
shares that one list everywhere (``raw_rows``, ``fetch``, ``peek``,
``scan``), so row object *identity* — which the batched executor's
driving-leg shadow asserts — is preserved exactly as in the row backend.
The fully vectorized execution paths never materialize rows at all.

:class:`ColumnarIndex` keeps the parent's sorted ``(key, rid)`` entry list
(cursors, range scans, and positional-order semantics inherit unchanged)
and adds a flat sidecar per generation: the distinct keys, CSR segment
starts, and an ``int64`` RID array. Equality probes become O(1) dict-rank
lookups instead of ``bisect`` pairs, and the local-predicate group
builders (`filtered_groups`, the fast path's per-key records, the turbo
cascade's arrays) evaluate each leg's predicates **once per column** with
numpy masks — reproducing the scalar short-circuit eval counts exactly via
alive-mask accounting (``evals_i = rows still alive before test i``).

numpy is an optional fast path: without it (or for unsupported predicate
shapes / overflow-promoted columns) every entry point falls back to the
inherited row-at-a-time implementation, so results and work accounting
never depend on numpy's presence — only speed does.
"""

from __future__ import annotations

import sys
from array import array
from typing import Any, Iterable, Iterator, Sequence

from repro.storage.compiled import vector_spec
from repro.storage.counters import WorkMeter
from repro.storage.index import SortedIndex
from repro.storage.schema import TableSchema
from repro.storage.table import HeapTable, Row
from repro.storage.types import ColumnType

try:  # optional fast path; every caller guards on None
    import numpy as _np
except Exception:  # pragma: no cover - numpy is present in CI
    _np = None


# ----------------------------------------------------------------------
# Typed column stores
# ----------------------------------------------------------------------
class _NumericColumn:
    """INT/FLOAT column: typed array + null byte-mask (+ boxed fallback).

    INT values that overflow a signed 64-bit slot promote the whole column
    to a plain Python list (``boxed``); correctness never depends on the
    typed layout, only the vectorized kernels do (they refuse boxed
    columns).
    """

    __slots__ = ("kind", "typecode", "data", "nulls", "boxed", "_np_cache")

    def __init__(self, kind: str, typecode: str) -> None:
        self.kind = kind  # "int" | "float"
        self.typecode = typecode
        self.data: array | None = array(typecode)
        self.nulls: bytearray | None = bytearray()
        self.boxed: list | None = None
        self._np_cache: tuple | None = None

    def __len__(self) -> int:
        if self.boxed is not None:
            return len(self.boxed)
        return len(self.data)

    def _promote(self) -> None:
        values = self.data.tolist()
        nulls = self.nulls
        self.boxed = [
            None if nulls[i] else values[i] for i in range(len(values))
        ]
        self.data = None
        self.nulls = None
        self._np_cache = None

    def append(self, value: Any) -> None:
        if self.boxed is not None:
            self.boxed.append(value)
            return
        if value is None:
            self.data.append(0)
            self.nulls.append(1)
            return
        try:
            self.data.append(value)
        except OverflowError:
            self._promote()
            self.boxed.append(value)
            return
        self.nulls.append(0)

    def get(self, rid: int) -> Any:
        if self.boxed is not None:
            return self.boxed[rid]
        if self.nulls[rid]:
            return None
        return self.data[rid]

    def values_list(self) -> list:
        if self.boxed is not None:
            return list(self.boxed)
        values = self.data.tolist()
        nulls = self.nulls
        if any(nulls):
            return [
                None if nulls[i] else values[i] for i in range(len(values))
            ]
        return values

    def np_values(self):
        """``(values, notnull)`` numpy copies, or None (boxed / no numpy)."""
        if _np is None or self.boxed is not None:
            return None
        count = len(self.data)
        cache = self._np_cache
        if cache is not None and cache[0] == count:
            return cache[1], cache[2]
        # Copies, not views: a live buffer export would make the arrays
        # refuse append() (BufferError) on later inserts.
        dtype = _np.int64 if self.typecode == "q" else _np.float64
        values = _np.frombuffer(self.data, dtype=dtype).copy()
        notnull = _np.frombuffer(self.nulls, dtype=_np.uint8) == 0
        self._np_cache = (count, values, notnull)
        return values, notnull

    def nbytes(self) -> int:
        if self.boxed is not None:
            return sys.getsizeof(self.boxed) + sum(
                sys.getsizeof(v) for v in self.boxed
            )
        return self.data.itemsize * len(self.data) + len(self.nulls)


class _StringColumn:
    """Dictionary-encoded string column: int32 codes, -1 encodes NULL."""

    __slots__ = ("kind", "codes", "decode", "encode", "_np_cache")

    def __init__(self) -> None:
        self.kind = "str"
        self.codes = array("i")
        self.decode: list[str] = []
        self.encode: dict[str, int] = {}
        self._np_cache: tuple | None = None

    def __len__(self) -> int:
        return len(self.codes)

    def append(self, value: Any) -> None:
        if value is None:
            self.codes.append(-1)
            return
        code = self.encode.get(value)
        if code is None:
            code = len(self.decode)
            self.encode[value] = code
            self.decode.append(value)
        self.codes.append(code)

    def get(self, rid: int) -> Any:
        code = self.codes[rid]
        return self.decode[code] if code >= 0 else None

    def values_list(self) -> list:
        decode = self.decode
        return [decode[c] if c >= 0 else None for c in self.codes]

    def np_codes(self):
        if _np is None:
            return None
        count = len(self.codes)
        cache = self._np_cache
        if cache is not None and cache[0] == count:
            return cache[1]
        codes = _np.frombuffer(self.codes, dtype=_np.int32).copy()
        self._np_cache = (count, codes)
        return codes

    def nbytes(self) -> int:
        return (
            self.codes.itemsize * len(self.codes)
            + sum(sys.getsizeof(s) for s in self.decode)
            + sys.getsizeof(self.encode)
        )


def _make_column(column_type: ColumnType):
    if column_type is ColumnType.INT:
        return _NumericColumn("int", "q")
    if column_type is ColumnType.FLOAT:
        return _NumericColumn("float", "d")
    return _StringColumn()


# ----------------------------------------------------------------------
# Table
# ----------------------------------------------------------------------
class ColumnarTable(HeapTable):
    """Drop-in :class:`HeapTable` whose source of truth is typed columns."""

    __slots__ = ("_cols", "_nrows")

    backend_name = "columnar"

    def __init__(self, schema: TableSchema, meter: WorkMeter | None = None) -> None:
        super().__init__(schema, meter)
        self._cols = [_make_column(column.type) for column in schema.columns]
        self._nrows = 0

    def __len__(self) -> int:
        return self._nrows

    @property
    def cardinality(self) -> int:
        return self._nrows

    def insert(self, values: Sequence[Any]) -> int:
        row = self.schema.validate_row(values)
        for column, cell in zip(self._cols, row):
            column.append(cell)
        self._nrows += 1
        self.version += 1
        return self._nrows - 1

    # -- row views ------------------------------------------------------
    def _materialized(self) -> list[Row]:
        """The shared row-tuple list, (re)built lazily from the columns.

        One list per table: every row-wise accessor returns objects from
        it, so identity-based assertions (the driving shadow's
        ``predicted is row``) hold exactly as in the row backend.
        """
        rows = self._rows
        if len(rows) == self._nrows:
            return rows
        if not rows:
            rows[:] = zip(*(column.values_list() for column in self._cols))
        else:  # incremental append after a partial build
            cols = self._cols
            for rid in range(len(rows), self._nrows):
                rows.append(tuple(column.get(rid) for column in cols))
        return rows

    def raw_rows(self) -> Sequence[Row]:
        return self._materialized()

    def fetch(self, rid: int) -> Row:
        if rid < 0 or rid >= self._nrows:
            from repro.errors import StorageError

            raise StorageError(
                f"table {self.name!r}: RID {rid} out of range [0, {self._nrows})"
            )
        self.meter.charge_row_fetch()
        return self._materialized()[rid]

    def peek(self, rid: int) -> Row:
        if rid < 0 or rid >= self._nrows:
            from repro.errors import StorageError

            raise StorageError(
                f"table {self.name!r}: RID {rid} out of range [0, {self._nrows})"
            )
        return self._materialized()[rid]

    def scan(self) -> Iterator[tuple[int, Row]]:
        for rid, row in enumerate(self._materialized()):
            self.meter.charge_row_fetch()
            yield rid, row

    def column_values(self, column: str) -> list[Any]:
        return self._cols[self.schema.position_of(column)].values_list()

    # -- columnar access ------------------------------------------------
    def column_store(self, slot: int):
        return self._cols[slot]

    def column_kind(self, slot: int) -> str:
        return self._cols[slot].kind

    def cell(self, rid: int, slot: int) -> Any:
        """One cell without materializing the row view (projection path)."""
        return self._cols[slot].get(rid)

    def mask_for_spec(self, spec: tuple):
        """Whole-column boolean mask for a :func:`vector_spec` tree.

        Returns a bool ndarray of length ``len(self)`` whose slot *i* is
        exactly ``bound_test(row_i)``, or ``None`` when the spec cannot be
        evaluated vectorized (no numpy, boxed column, or constant types
        whose comparison the interpreter path would resolve dynamically).
        """
        if _np is None:
            return None
        op = spec[0]
        if op == "or":
            mask = None
            for child in spec[1]:
                child_mask = self.mask_for_spec(child)
                if child_mask is None:
                    return None
                mask = child_mask if mask is None else (mask | child_mask)
            return mask
        column = self._cols[spec[1]]
        if column.kind == "str":
            return self._string_mask(column, spec)
        return self._numeric_mask(column, spec)

    @staticmethod
    def _plain_number(value: Any) -> bool:
        # bool included deliberately: numpy compares True as 1, exactly
        # like the row interpreter's ``cell == True``.
        return isinstance(value, (int, float))

    def _numeric_mask(self, column: _NumericColumn, spec: tuple):
        arrays = column.np_values()
        if arrays is None:
            return None
        values, notnull = arrays
        op = spec[0]
        if op == "isnull":
            return notnull.copy() if spec[2] else ~notnull
        if op == "cmp":
            op_name, constant = spec[2], spec[3]
            if not self._plain_number(constant):
                # Mixed-type ordering raises in the interpreter; equality
                # is always-False, inequality matches every non-NULL cell.
                if op_name == "EQ":
                    return _np.zeros(len(values), dtype=bool)
                if op_name == "NE":
                    return notnull.copy()
                return None
            if op_name == "EQ":
                return (values == constant) & notnull
            if op_name == "NE":
                return (values != constant) & notnull
            if op_name == "LT":
                return (values < constant) & notnull
            if op_name == "LE":
                return (values <= constant) & notnull
            if op_name == "GT":
                return (values > constant) & notnull
            return (values >= constant) & notnull
        if op == "between":
            low, high = spec[2], spec[3]
            if not (self._plain_number(low) and self._plain_number(high)):
                return None
            return (values >= low) & (values <= high) & notnull
        if op == "in":
            members = spec[2]
            numeric = [v for v in members if self._plain_number(v)]
            mask = (
                _np.isin(values, numeric) & notnull
                if numeric
                else _np.zeros(len(values), dtype=bool)
            )
            if any(v is None for v in members):
                mask = mask | ~notnull
            return mask
        return None

    def _string_mask(self, column: _StringColumn, spec: tuple):
        codes = column.np_codes()
        if codes is None:
            return None
        op = spec[0]
        if op == "isnull":
            return codes >= 0 if spec[2] else codes == -1
        if op == "cmp":
            op_name, constant = spec[2], spec[3]
            if not isinstance(constant, str):
                if op_name == "EQ":
                    return _np.zeros(len(codes), dtype=bool)
                if op_name == "NE":
                    return codes >= 0
                return None  # ordering vs non-str raises row-wise
            if op_name == "EQ":
                return codes == column.encode.get(constant, -2)
            if op_name == "NE":
                return (codes >= 0) & (
                    codes != column.encode.get(constant, -2)
                )
            # Ordering: evaluate once per distinct value, gather via LUT.
            # lut[-1] (the NULL code's negative-index target) stays False.
            fn = {
                "LT": str.__lt__,
                "LE": str.__le__,
                "GT": str.__gt__,
                "GE": str.__ge__,
            }[op_name]
            lut = _np.zeros(len(column.decode) + 1, dtype=bool)
            for code, text in enumerate(column.decode):
                lut[code] = fn(text, constant)
            return lut[codes]
        if op == "between":
            low, high = spec[2], spec[3]
            if not (isinstance(low, str) and isinstance(high, str)):
                return None
            lut = _np.zeros(len(column.decode) + 1, dtype=bool)
            for code, text in enumerate(column.decode):
                lut[code] = low <= text <= high
            return lut[codes]
        if op == "in":
            members = spec[2]
            wanted = [
                column.encode[v]
                for v in members
                if isinstance(v, str) and v in column.encode
            ]
            mask = (
                _np.isin(codes, wanted)
                if wanted
                else _np.zeros(len(codes), dtype=bool)
            )
            if any(v is None for v in members):
                mask = mask | (codes == -1)
            return mask
        return None

    def memory_footprint(self) -> dict[str, int]:
        columns_bytes = sum(column.nbytes() for column in self._cols)
        row_cache = self._rows
        row_cache_bytes = 0
        if row_cache:
            row_cache_bytes = sys.getsizeof(row_cache) + sum(
                sys.getsizeof(row) for row in row_cache
            )
        return {
            "rows": self._nrows,
            "bytes": columns_bytes,
            "row_cache_bytes": row_cache_bytes,
        }


def heap_memory_footprint(table: HeapTable) -> dict[str, int]:
    """Approximate resident bytes of a row-backend table.

    Counts the row list, the row tuples, and each cell object; shared
    (interned) cell objects are counted at every reference, so this is an
    upper-bound estimate — consistent across tables, which is what the
    per-backend comparison needs.
    """
    rows = table.raw_rows()
    total = sys.getsizeof(rows)
    for row in rows:
        total += sys.getsizeof(row)
        for cell in row:
            if cell is not None:
                total += sys.getsizeof(cell)
    return {"rows": len(rows), "bytes": total, "row_cache_bytes": 0}


def table_memory_footprint(table: HeapTable) -> dict[str, int]:
    if isinstance(table, ColumnarTable):
        return table.memory_footprint()
    return heap_memory_footprint(table)


# ----------------------------------------------------------------------
# Index
# ----------------------------------------------------------------------
class _Kernel:
    """Per-(generation, local tests) vectorized group arrays of one index.

    All arrays are keyed by the sidecar's distinct-key rank ``j``:

    * ``totals[j]`` — entry count of key *j* (what a probe charges as
      INDEX_ENTRY / ROW_FETCH),
    * ``evals[j]`` — scalar-exact short-circuit local-predicate evals,
    * ``pass_offsets[j] : pass_offsets[j+1]`` — slice of ``pass_rids``
      holding the RIDs (in entry order) that pass every local test,
    * ``ev``/``pa`` — per-test (evaluated, passed) arrays for the
      monitored path's local-predicate counters.
    """

    __slots__ = (
        "totals",
        "evals",
        "pass_offsets",
        "pass_rids",
        "ev",
        "pa",
        "_lists",
    )

    def __init__(self, totals, evals, pass_offsets, pass_rids, ev, pa):
        self.totals = totals
        self.evals = evals
        self.pass_offsets = pass_offsets
        self.pass_rids = pass_rids
        self.ev = ev
        self.pa = pa
        self._lists = None

    def lists(self) -> tuple:
        """Plain-list views of every array (built once, then cached).

        Per-key record assembly slices these instead of the ndarrays: a
        Python list slice of ints is far cheaper than an ndarray slice +
        ``tolist()`` for the tiny groups equality probes see, and the
        elements are already plain ``int`` (no ``np.int64`` can leak into
        the WorkMeter).
        """
        lists = self._lists
        if lists is None:
            lists = self._lists = (
                self.pass_offsets.tolist(),
                self.pass_rids.tolist(),
                self.evals.tolist(),
                self.totals.tolist(),
                [column.tolist() for column in self.ev],
                [column.tolist() for column in self.pa],
            )
        return lists


class ColumnarIndex(SortedIndex):
    """A :class:`SortedIndex` with flat-array probing and group kernels."""

    __slots__ = (
        "_gen",
        "_rank",
        "_keys",
        "_starts",
        "_ent_rids",
        "_keys_np",
        "_rows_by_key",
        "_rows_by_key_gen",
        "_kernels",
        "_group_dicts",
        "_record_caches",
        "_fast_ctx",
    )

    #: The turbo path may build filtered groups immediately (no break-even
    #: gate): the kernel build is one vectorized pass, cached per
    #: generation + predicate set, so it cannot lose.
    prebuild_groups = True

    def __init__(self, name: str, table: HeapTable, column: str) -> None:
        self._gen = None
        self._rows_by_key = None
        self._rows_by_key_gen = None
        self._kernels = {}
        self._group_dicts = {}
        self._record_caches = {}
        self._fast_ctx = None
        super().__init__(name, table, column)

    def rebuild(self) -> None:
        # Build entries straight from the column store when available —
        # the load path then never materializes the row view.
        table = self.table
        if isinstance(table, ColumnarTable):
            values = table.column_store(self._column_pos).values_list()
            entries = [
                (key, rid) for rid, key in enumerate(values) if key is not None
            ]
            entries.sort()
            self._entries = entries
            self._built_upto = len(table)
        else:
            super().rebuild()
        self._gen = None

    def _generation(self) -> tuple:
        return (self._built_upto, self.table.version, len(self._entries))

    def _sidecar(self) -> tuple:
        """(rank, keys, starts) for the current generation (lazy)."""
        gen = self._generation()
        if self._gen != gen:
            entries = self._entries
            keys: list = []
            starts: list[int] = []
            rank: dict = {}
            previous = _SENTINEL
            for position, (key, _) in enumerate(entries):
                if key != previous:
                    rank[key] = len(keys)
                    keys.append(key)
                    starts.append(position)
                    previous = key
            starts.append(len(entries))
            self._rank = rank
            self._keys = keys
            self._starts = starts
            if _np is not None:
                self._ent_rids = _np.fromiter(
                    (rid for _, rid in entries), dtype=_np.int64, count=len(entries)
                )
                kind = (
                    self.table.column_kind(self._column_pos)
                    if isinstance(self.table, ColumnarTable)
                    else None
                )
                if keys and kind in ("int", "float"):
                    dtype = _np.int64 if kind == "int" else _np.float64
                    try:
                        self._keys_np = _np.array(keys, dtype=dtype)
                    except (OverflowError, TypeError, ValueError):
                        self._keys_np = None
                else:
                    self._keys_np = None
            else:
                self._ent_rids = None
                self._keys_np = None
            self._rows_by_key = None
            self._rows_by_key_gen = None
            self._kernels = {}
            self._group_dicts = {}
            self._record_caches = {}
            self._gen = gen
        return self._rank, self._keys, self._starts

    # -- O(1) probing ---------------------------------------------------
    def lookup_rids(self, key: Any) -> list[int]:
        faults = self.table.faults
        if faults is not None:
            faults.fire("index-lookup")
        self._check_fresh()
        self.meter.charge_index_descend()
        if key is None:
            return []
        rank, _, starts = self._sidecar()
        j = rank.get(key)
        if j is None:
            self.meter.charge_index_entries(1)
            return []
        lo, hi = starts[j], starts[j + 1]
        self.meter.charge_index_entries(hi - lo)
        return [rid for _, rid in self._entries[lo:hi]]

    def lookup_rids_quiet(self, key: Any) -> list[int]:
        self._check_fresh()
        if key is None:
            return []
        rank, _, starts = self._sidecar()
        j = rank.get(key)
        if j is None:
            return []
        lo, hi = starts[j], starts[j + 1]
        return [rid for _, rid in self._entries[lo:hi]]

    def lookup_rids_batch(self, keys: Iterable[Any]) -> dict[Any, list[int]]:
        self._check_fresh()
        rank, _, starts = self._sidecar()
        entries = self._entries
        out: dict[Any, list[int]] = {}
        for key in sorted(set(keys)):
            j = rank.get(key)
            if j is None:
                out[key] = []
            else:
                lo, hi = starts[j], starts[j + 1]
                out[key] = [rid for _, rid in entries[lo:hi]]
        return out

    def _rows_map(self) -> dict:
        """Per-key row lists (shared, read-only), one build per generation."""
        rank, keys, starts = self._sidecar()
        gen = self._gen
        if self._rows_by_key_gen != gen:
            raw = self.table.raw_rows()
            entries = self._entries
            rows_by_key = {}
            for j, key in enumerate(keys):
                rows_by_key[key] = [
                    raw[rid] for _, rid in entries[starts[j] : starts[j + 1]]
                ]
            self._rows_by_key = rows_by_key
            self._rows_by_key_gen = gen
        return self._rows_by_key

    def lookup_rows_quiet(self, key: Any) -> list:
        self._check_fresh()
        if key is None:
            return []
        rows = self._rows_map().get(key)
        return rows if rows is not None else []

    def lookup_rows_batch(self, keys: Iterable[Any]) -> dict[Any, list]:
        self._check_fresh()
        rows_map = self._rows_map()
        out: dict[Any, list] = {}
        for key in sorted(set(keys)):
            rows = rows_map.get(key)
            out[key] = rows if rows is not None else []
        return out

    # -- vectorized group kernels ---------------------------------------
    def _specs_for(self, tests: Sequence) -> list | None:
        """Vector specs for bound test closures, or None if any is opaque.

        The executor tags every bound local test with its source predicate
        (``test.predicate``); untagged tests (or shapes ``vector_spec``
        rejects, or columns the table cannot mask) disable vectorization.
        """
        if _np is None or not isinstance(self.table, ColumnarTable):
            return None
        schema = self.table.schema
        specs = []
        for test in tests:
            predicate = getattr(test, "predicate", None)
            if predicate is None:
                return None
            spec = vector_spec(predicate, schema)
            if spec is None:
                return None
            specs.append(spec)
        return specs

    def _kernel_for(self, tests: Sequence, predicates_key: tuple):
        """Build (or fetch) the group kernel for this generation + tests."""
        self._sidecar()
        cached = self._kernels.get(predicates_key)
        if cached is not None:
            return cached
        specs = self._specs_for(tests)
        if specs is None:
            return None
        masks = []
        for spec in specs:
            mask = self.table.mask_for_spec(spec)
            if mask is None:
                return None
            masks.append(mask)
        ent_rids = self._ent_rids
        count = len(ent_rids)
        starts_np = _np.asarray(self._starts[:-1], dtype=_np.int64)
        nkeys = len(self._keys)
        alive = _np.ones(count, dtype=bool)
        evals = _np.zeros(count, dtype=_np.int64)
        ev: list = []
        pa: list = []
        for mask in masks:
            evals += alive
            if nkeys:
                ev.append(_np.add.reduceat(alive.astype(_np.int64), starts_np))
            else:
                ev.append(_np.zeros(0, dtype=_np.int64))
            alive &= mask[ent_rids]
            if nkeys:
                pa.append(_np.add.reduceat(alive.astype(_np.int64), starts_np))
            else:
                pa.append(_np.zeros(0, dtype=_np.int64))
        if nkeys:
            bounds = _np.asarray(self._starts, dtype=_np.int64)
            totals = _np.diff(bounds)
            evals_k = (
                _np.add.reduceat(evals, starts_np)
                if masks
                else _np.zeros(nkeys, dtype=_np.int64)
            )
            pass_counts = _np.add.reduceat(alive.astype(_np.int64), starts_np)
        else:
            totals = _np.zeros(0, dtype=_np.int64)
            evals_k = _np.zeros(0, dtype=_np.int64)
            pass_counts = _np.zeros(0, dtype=_np.int64)
        pass_offsets = _np.zeros(nkeys + 1, dtype=_np.int64)
        _np.cumsum(pass_counts, out=pass_offsets[1:])
        pass_rids = ent_rids[alive]
        kernel = _Kernel(totals, evals_k, pass_offsets, pass_rids, ev, pa)
        if len(self._kernels) >= 16:  # bound the per-generation memo
            self._kernels.pop(next(iter(self._kernels)))
        self._kernels[predicates_key] = kernel
        return kernel

    @staticmethod
    def _predicates_key(tests: Sequence) -> tuple | None:
        out = []
        for test in tests:
            predicate = getattr(test, "predicate", None)
            if predicate is None:
                return None
            out.append(predicate)
        try:
            hash(key := tuple(out))
        except TypeError:
            return None
        return key

    def filtered_groups(self, tests: list) -> dict[Any, tuple[list, int, int]]:
        self._check_fresh()
        predicates_key = self._predicates_key(tests)
        kernel = (
            self._kernel_for(tests, predicates_key)
            if predicates_key is not None
            else None
        )
        if kernel is None:
            return super().filtered_groups(tests)
        cached = self._group_dicts.get(predicates_key)
        if cached is not None:
            return cached
        raw = self.table.raw_rows()
        keys = self._keys
        offsets = kernel.pass_offsets.tolist()
        pass_rids = kernel.pass_rids.tolist()
        evals = kernel.evals.tolist()
        totals = kernel.totals.tolist()
        out = {}
        for j, key in enumerate(keys):
            out[key] = (
                [raw[rid] for rid in pass_rids[offsets[j] : offsets[j + 1]]],
                evals[j],
                totals[j],
            )
        if len(self._group_dicts) >= 8:
            self._group_dicts.pop(next(iter(self._group_dicts)))
        self._group_dicts[predicates_key] = out
        return out

    def fast_group_records(
        self, keys: Iterable[Any], local_tests: Sequence, positional
    ) -> dict | None:
        """Per-key fast-path records for *keys*, or None (caller falls back).

        Each record is ``(rows, evals, count, deltas)`` with semantics
        identical to ``RuntimeLeg._fast_group_rows`` over the key's full
        candidate list: short-circuited local evals (plus one positional
        eval per locally-passing row), per-test (evaluated, passed)
        deltas, rows in entry order.
        """
        self._check_fresh()
        # One-slot context memo keyed by the *identity* of the caller's
        # local_tests list (built once per RuntimeLeg, never mutated; the
        # strong reference held here keeps the id from being recycled).
        # Skips predicate-tuple hashing and kernel lookup on every probe
        # chunk after the first.
        ctx = self._fast_ctx
        if (
            ctx is not None
            and ctx[0] is local_tests
            and ctx[1] == self._generation()
            and positional is None
        ):
            _, _, kernel, memo, rank, lists, ntests = ctx
        else:
            tests = [test for _, test in local_tests]
            predicates_key = self._predicates_key(tests)
            if predicates_key is None:
                return None
            kernel = self._kernel_for(tests, predicates_key)
            if kernel is None:
                return None
            rank, _, _ = self._sidecar()
            ntests = len(tests)
            # Records depend only on (generation, local tests) —
            # positional predicates are driving-leg-only — so assembled
            # records persist across probe epochs: reorders flush the
            # access layer's memo, but re-requested keys here are dict
            # hits, not re-assemblies.
            memo = None
            if positional is None:
                memo = self._record_caches.get(predicates_key)
                if memo is None:
                    memo = self._record_caches[predicates_key] = {}
            lists = kernel.lists()
            if positional is None:
                self._fast_ctx = (
                    local_tests,
                    self._gen,
                    kernel,
                    memo,
                    rank,
                    lists,
                    ntests,
                )
        raw = self.table.raw_rows()
        offsets, pass_rids, evals_l, totals_l, ev_l, pa_l = lists
        empty = (
            [],
            0,
            0,
            tuple((0, 0) for _ in range(ntests)) if ntests else None,
        )
        out = {}
        for key in set(keys):
            if memo is not None:
                record = memo.get(key)
                if record is not None:
                    out[key] = record
                    continue
            j = rank.get(key)
            if j is None:
                record = empty
            else:
                rids = pass_rids[offsets[j] : offsets[j + 1]]
                evals = evals_l[j]
                deltas = (
                    tuple((ev_l[i][j], pa_l[i][j]) for i in range(ntests))
                    if ntests
                    else None
                )
                if positional is not None:
                    rows = []
                    test = positional.test
                    for rid in rids:
                        row = raw[rid]
                        evals += 1
                        if test(rid, row):
                            rows.append(row)
                else:
                    rows = [raw[rid] for rid in rids]
                record = (rows, evals, totals_l[j], deltas)
            if memo is not None:
                memo[key] = record
            out[key] = record
        return out

    def cascade_groups(self, local_tests: Sequence):
        """(kernel, keys_np, rank) for the vectorized join cascade, or None."""
        self._check_fresh()
        tests = [test for _, test in local_tests]
        predicates_key = self._predicates_key(tests)
        if predicates_key is None:
            return None
        kernel = self._kernel_for(tests, predicates_key)
        if kernel is None:
            return None
        rank, _, _ = self._sidecar()
        return kernel, self._keys_np, rank

    def kernel_footprint(self) -> int:
        """Approximate resident bytes of the cascade sidecar + kernel plan.

        This is the copy-on-write state parallel workers inherit at fork
        (after the pre-fork warm-up): the numpy entry-RID / distinct-key
        sidecars plus every memoized group kernel of the current
        generation. Reports 0 while the sidecar is unbuilt or stale —
        a stats read must never force a lazy build.
        """
        if self._gen is None or self._gen != self._generation():
            return 0
        total = 0
        for array in (self._ent_rids, self._keys_np):
            nbytes = getattr(array, "nbytes", None)
            if nbytes is not None:
                total += int(nbytes)
        for kernel in self._kernels.values():
            for name in ("totals", "evals", "pass_offsets", "pass_rids"):
                nbytes = getattr(getattr(kernel, name), "nbytes", None)
                if nbytes is not None:
                    total += int(nbytes)
            for group in (kernel.ev, kernel.pa):
                for array in group:
                    nbytes = getattr(array, "nbytes", None)
                    if nbytes is not None:
                        total += int(nbytes)
        return total


class _SentinelType:
    __slots__ = ()

    def __eq__(self, other):  # pragma: no cover - trivial
        return other is self

    def __ne__(self, other):
        return other is not self

    def __hash__(self):  # pragma: no cover - trivial
        return object.__hash__(self)


_SENTINEL = _SentinelType()
