"""Tests for the observability subsystem (tracer, metrics, sampler, report)."""

import json

import pytest

from repro import AdaptiveConfig, QueryObservability, ReorderMode
from repro.core.events import EventKind
from repro.obs.metrics import (
    MATCH_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
    merge_counter,
)
from repro.obs.trace import JSONL_KEYS, SPAN_KINDS, Tracer

from tests.conftest import build_three_table_db

SKEW_SQL = (
    "SELECT o.name FROM Owner o, Car c, Demo d "
    "WHERE c.ownerid = o.id AND o.id = d.ownerid "
    "AND c.make = 'Rare' AND o.country = 'DE' AND d.salary < 70000"
)


class TestTracer:
    def test_parent_child_nesting(self):
        tracer = Tracer()
        with tracer.span("query") as root:
            with tracer.span("execute") as inner:
                tracer.event("leg-open", kind="leg", leg="o")
        assert root.parent_id is None
        assert inner.parent_id == root.span_id
        leg_open = tracer.spans[2]
        assert leg_open.parent_id == inner.span_id
        assert leg_open.end_ms == leg_open.start_ms  # instant event

    def test_jsonl_schema(self):
        tracer = Tracer()
        with tracer.span("query", sql="SELECT 1"):
            tracer.event("reorder-check", kind="check", applied=False)
        for line in tracer.to_jsonl().splitlines():
            span = json.loads(line)
            assert tuple(span) == JSONL_KEYS
            assert span["kind"] in SPAN_KINDS
            assert span["end_ms"] >= span["start_ms"]

    def test_attrs_coerced_to_json_safe(self):
        tracer = Tracer()
        span = tracer.begin("query", order=("a", "b"), mode=ReorderMode.BOTH)
        tracer.end(span)
        payload = json.loads(tracer.to_jsonl())
        assert payload["attrs"]["order"] == ["a", "b"]
        assert isinstance(payload["attrs"]["mode"], str)

    def test_close_all_closes_dangling_spans(self):
        tracer = Tracer()
        tracer.begin("query")
        tracer.begin("execute")
        tracer.close_all()
        assert all(span.end_ms is not None for span in tracer.spans)

    def test_write_jsonl_atomic(self, tmp_path):
        tracer = Tracer()
        with tracer.span("query"):
            pass
        target = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(target))
        assert len(target.read_text().splitlines()) == 1
        assert not list(tmp_path.glob("*.tmp.*"))

    def test_render_tree_indents_children(self):
        tracer = Tracer()
        with tracer.span("query"):
            with tracer.span("execute"):
                pass
        tree = tracer.render_tree()
        lines = tree.splitlines()
        assert lines[0].startswith("query")
        assert lines[1].startswith("  execute")


class TestMetrics:
    def test_counter_labels_and_total(self):
        registry = MetricsRegistry()
        counter = registry.counter("leg_rows_in_total", "probes")
        counter.inc("o")
        counter.inc("o", 2)
        counter.inc("c")
        assert counter.value("o") == 3
        assert counter.total == 4
        assert registry.counter("leg_rows_in_total") is counter

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        histo = registry.histogram("probe_index_matches", MATCH_BUCKETS)
        histo.observe(0)
        histo.observe(1)
        histo.observe(3)
        histo.observe(10_000)
        buckets = histo.buckets()
        assert buckets["0"] == 1
        assert buckets["1"] == 1
        assert buckets["5"] == 1
        assert buckets["+Inf"] == 1
        assert histo.count() == 4
        assert histo.mean() == pytest.approx(10_004 / 4)

    def test_type_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("leg_position")
        with pytest.raises(TypeError):
            registry.gauge("leg_position")

    def test_render_and_as_dict(self):
        registry = MetricsRegistry()
        registry.counter("query_rows_emitted_total", "rows").inc(amount=7)
        registry.gauge("leg_position").set(2, "o")
        text = registry.render()
        assert "query_rows_emitted_total 7" in text
        assert "leg_position{o} 2" in text
        snapshot = registry.as_dict()
        assert snapshot["query_rows_emitted_total"][""] == 7

    def test_merge_counter(self):
        counter = Counter("x")
        counter.inc("a", 2)
        merged = merge_counter({"a": 1.0, "b": 5.0}, counter)
        assert merged == {"a": 3.0, "b": 5.0}


class TestObservabilityBundle:
    def test_disarmed_hooks_are_noops(self):
        obs = QueryObservability()
        obs.on_probe("o", 3, 1)
        obs.on_scan_row("o", True)
        obs.on_rows_emitted()
        obs.on_suffix_depleted(1)
        obs.on_fault_retry("index-lookup")
        obs.finish()

    def test_probe_batching_flushes(self):
        obs = QueryObservability(tracer=Tracer(), probe_batch=2)
        obs.on_probe("o", 1, 1)
        assert not obs.tracer.spans
        obs.on_probe("o", 2, 0)
        (span,) = obs.tracer.spans
        assert span.name == "probe-batch"
        assert span.attrs == {
            "leg": "o", "probes": 2, "index_matches": 3, "rows_out": 1,
        }
        obs.on_probe("o", 1, 1)
        obs.finish()  # flushes the partial batch
        assert obs.tracer.spans[-1].attrs["probes"] == 1

    def test_rejects_bad_probe_batch(self):
        with pytest.raises(ValueError):
            QueryObservability(probe_batch=0)


class TestExecutionWithObservability:
    def test_execute_populates_artifacts(self):
        db = build_three_table_db()
        result = db.execute(
            SKEW_SQL, AdaptiveConfig(mode=ReorderMode.BOTH), obs=True
        )
        assert result.trace is not None
        names = {span.name for span in result.trace.spans}
        assert {"query", "parse", "optimize", "execute"} <= names
        assert all(span.end_ms is not None for span in result.trace.spans)
        assert result.metrics is not None
        emitted = result.metrics.counter("query_rows_emitted_total")
        assert emitted.total == len(result.rows)
        assert result.samples  # final sample always recorded

    def test_metrics_row_flow_is_consistent(self):
        db = build_three_table_db()
        result = db.execute(
            SKEW_SQL, AdaptiveConfig(mode=ReorderMode.NONE), obs=True
        )
        metrics = result.metrics
        order = result.final_order
        # The last leg's surviving rows are exactly the emitted rows.
        last = order[-1]
        assert metrics.counter("leg_rows_out_total").value(last) == len(
            result.rows
        )
        # Candidates at each inner leg are at least the surviving rows.
        for alias in order[1:]:
            assert metrics.counter("leg_index_matches_total").value(
                alias
            ) >= metrics.counter("leg_rows_out_total").value(alias)

    def test_switching_query_records_checks_and_events(self):
        db = build_three_table_db(owners=2000, seed=42)
        result = db.execute(
            SKEW_SQL, AdaptiveConfig(mode=ReorderMode.BOTH), obs=True
        )
        assert result.stats.total_switches >= 1
        metrics = result.metrics
        events = metrics.counter("adaptation_events_total")
        assert events.total == len(result.stats.events)
        checks = metrics.counter("reorder_checks_total")
        applied = checks.value("inner-reorder") + checks.value("driving-switch")
        assert applied == result.stats.total_switches
        # Every applied event shows up as an "adapt" span too.
        adapt_spans = [
            s for s in result.trace.spans if s.kind == "adapt"
        ]
        assert len(adapt_spans) == len(result.stats.events)
        # Final leg positions reflect the final order.
        positions = metrics.gauge("leg_position")
        for position, alias in enumerate(result.final_order):
            assert positions.value(alias) == position

    def test_sampler_cadence_follows_check_frequency(self):
        db = build_three_table_db(owners=400, seed=3)
        config = AdaptiveConfig(mode=ReorderMode.NONE, check_frequency=25)
        result = db.execute(
            "SELECT o.name FROM Owner o, Demo d WHERE o.id = d.ownerid",
            config,
            obs=True,
        )
        assert result.samples
        # All but the final flush-sample land on multiples of 25.
        for sample in result.samples[:-1]:
            assert sample.driving_rows % 25 == 0
        assert result.samples[-1].driving_rows == 400
        # Work attribution is monotone along the series.
        work = [sample.work_units for sample in result.samples]
        assert work == sorted(work)

    def test_sampler_series_tracks_monitor_estimates(self):
        db = build_three_table_db(owners=400, seed=3)
        result = db.execute(
            SKEW_SQL, AdaptiveConfig(mode=ReorderMode.MONITOR_ONLY), obs=True
        )
        sample = result.samples[-1]
        assert sample.order == result.final_order
        inner = sample.legs[result.final_order[1]]
        assert inner["role"] == "inner"
        assert inner["jc"] is None or inner["jc"] >= 0.0

    def test_fault_retries_counted(self):
        from repro.robustness.faults import FaultPlan, FaultSpec

        db = build_three_table_db()
        plan = FaultPlan(
            specs=(
                FaultSpec(site="index-lookup", kind="transient", nth_call=2),
            )
        )
        result = db.execute(
            SKEW_SQL,
            AdaptiveConfig(mode=ReorderMode.BOTH),
            fault_plan=plan,
            obs=True,
        )
        retries = result.metrics.counter("fault_retries_total")
        assert retries.value("index-lookup") >= 1
        assert any(
            span.name == "fault-retry" for span in result.trace.spans
        )

    def test_degraded_event_counted(self):
        from repro.robustness.faults import FaultPlan, FaultSpec

        db = build_three_table_db(owners=2000, seed=42)
        plan = FaultPlan(
            specs=(
                FaultSpec(site="controller", kind="permanent", nth_call=1),
            )
        )
        result = db.execute(
            SKEW_SQL,
            AdaptiveConfig(mode=ReorderMode.BOTH),
            fault_plan=plan,
            obs=True,
        )
        assert result.stats.degraded
        events = result.metrics.counter("adaptation_events_total")
        assert events.value(EventKind.DEGRADED.value) == 1


class TestExplainAnalyze:
    def test_report_sections(self):
        db = build_three_table_db(owners=2000, seed=42)
        report = db.explain_analyze(
            SKEW_SQL, AdaptiveConfig(mode=ReorderMode.BOTH)
        )
        assert "EXPLAIN ANALYZE" in report
        assert "pipeline actuals" in report
        assert "work breakdown:" in report
        assert "adaptation timeline:" in report
        assert "driving-switch" in report
        assert "estimate samples:" in report
        assert "budget: unlimited" in report

    def test_report_with_limits(self):
        from repro.robustness.limits import ExecutionLimits

        db = build_three_table_db()
        config = AdaptiveConfig(mode=ReorderMode.NONE)
        limits = ExecutionLimits(max_rows=10_000, timeout_seconds=30.0)
        report = db.explain_analyze(SKEW_SQL, config, limits=limits)
        assert "budget: max_rows=10,000" not in report  # raw int formatting
        assert "max_rows=10000" in report
        assert "timeout=30000ms" in report
        assert "(not exceeded)" in report


class TestHistogramQuantile:
    def build(self, values=()):
        histogram = Histogram("h", (10.0, 20.0, 50.0))
        for value in values:
            histogram.observe(value)
        return histogram

    def test_empty_returns_none(self):
        assert self.build().quantile(0.5) is None

    def test_rejects_out_of_range_q(self):
        histogram = self.build([5.0])
        with pytest.raises(ValueError):
            histogram.quantile(0.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_interpolates_within_bucket(self):
        # 10 observations, all in (10, 20]: p50 lands mid-bucket.
        histogram = self.build([15.0] * 10)
        assert histogram.quantile(0.5) == pytest.approx(15.0)
        assert histogram.quantile(1.0) == pytest.approx(20.0)

    def test_first_bucket_interpolates_from_zero(self):
        histogram = self.build([5.0] * 4)
        assert histogram.quantile(0.5) == pytest.approx(5.0)

    def test_infinity_bucket_clamps_to_highest_boundary(self):
        histogram = self.build([999.0] * 3)
        assert histogram.quantile(0.99) == pytest.approx(50.0)

    def test_quantiles_are_monotone(self):
        histogram = self.build([5.0, 15.0, 15.0, 30.0, 45.0, 60.0])
        p50 = histogram.quantile(0.50)
        p95 = histogram.quantile(0.95)
        p99 = histogram.quantile(0.99)
        assert p50 <= p95 <= p99
