"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.scale == 0.05
        assert not args.extended

    def test_query_mode_choices(self):
        args = build_parser().parse_args(["query", "SELECT 1", "--mode", "none"])
        assert args.mode == "none"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "SELECT 1", "--mode", "bogus"])

    def test_experiment_names(self):
        for name in ("table1", "fig7", "fig8", "fig9", "fig10", "fig11", "overhead"):
            args = build_parser().parse_args(["experiment", name])
            assert args.name == name


class TestCommands:
    def test_generate(self, capsys):
        assert main(["generate", "--scale", "0.005"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Owner" in out

    def test_query_static_and_adaptive(self, capsys):
        code = main(
            [
                "query",
                "--scale",
                "0.005",
                "SELECT o.name FROM Owner o WHERE o.country3 = 'DE' LIMIT 3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "static:" in out
        assert "adaptive:" in out
        assert "results match" in out

    def test_query_explain(self, capsys):
        main(
            [
                "query",
                "--scale",
                "0.005",
                "--explain",
                "--mode",
                "none",
                "SELECT o.name FROM Owner o WHERE o.country3 = 'DE'",
            ]
        )
        out = capsys.readouterr().out
        assert "PipelinePlan" in out
        assert "adaptive:" not in out

    def test_query_max_rows_budget(self, capsys):
        code = main(
            [
                "query",
                "--scale",
                "0.005",
                "--mode",
                "none",
                "--max-rows",
                "2",
                "SELECT o.name FROM Owner o WHERE o.country3 = 'DE'",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "budget exceeded" in out
        assert "2 row(s)" in out

    def test_query_fault_plan_degrades(self, capsys):
        plan = (
            '{"seed": 7, "faults": [{"site": "controller", '
            '"kind": "permanent", "nth_call": 1}]}'
        )
        code = main(
            [
                "query",
                "--scale",
                "0.005",
                "--fault-plan",
                plan,
                "SELECT o.name, c.make FROM Owner o, Car c "
                "WHERE c.ownerid = o.id AND o.country3 = 'DE'",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "results match" in out
        assert "DEGRADED" in out
        assert "[degraded]" in out

    def test_query_rejects_invalid_limits(self, capsys):
        code = main(
            ["query", "--scale", "0.005", "--max-rows", "0", "SELECT 1"]
        )
        assert code == 2
        assert "invalid limits" in capsys.readouterr().err

    def test_query_fault_plan_rejects_garbage(self, capsys):
        code = main(
            ["query", "--scale", "0.005", "--fault-plan", "{broken", "SELECT 1"]
        )
        assert code == 2
        assert "invalid --fault-plan" in capsys.readouterr().err

    def test_query_fault_plan_from_file(self, tmp_path, capsys):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(
            '{"faults": [{"site": "index-lookup", "kind": "transient", '
            '"nth_call": 2}]}'
        )
        code = main(
            [
                "query",
                "--scale",
                "0.005",
                "--fault-plan",
                str(plan_file),
                "SELECT o.name, c.make FROM Owner o, Car c "
                "WHERE c.ownerid = o.id AND o.country3 = 'DE'",
            ]
        )
        assert code == 0
        assert "results match" in capsys.readouterr().out

    def test_query_explain_analyze(self, capsys):
        code = main(
            [
                "query",
                "--scale",
                "0.005",
                "--explain-analyze",
                "SELECT o.name FROM Owner o, Car c "
                "WHERE c.ownerid = o.id AND o.country3 = 'DE'",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # Golden markers: each section of the report must be present.
        assert "EXPLAIN ANALYZE" in out
        assert "PipelinePlan" in out
        assert "pipeline actuals" in out
        assert "DRIVING" in out and "INNER" in out
        assert "executed:" in out
        assert "work breakdown:" in out
        assert "adaptation timeline" in out
        assert "budget: unlimited" in out
        assert "faults: 0 transient retrie(s), 0 degradation(s)" in out

    def test_query_trace_and_metrics(self, tmp_path, capsys):
        import json

        trace_file = tmp_path / "trace.jsonl"
        code = main(
            [
                "query",
                "--scale",
                "0.005",
                "--trace",
                str(trace_file),
                "--metrics",
                "SELECT o.name FROM Owner o WHERE o.country3 = 'DE' LIMIT 3",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "query_rows_emitted_total" in captured.out
        assert "span(s) written" in captured.err
        lines = trace_file.read_text().splitlines()
        assert lines
        spans = [json.loads(line) for line in lines]
        names = {span["name"] for span in spans}
        assert {"query", "parse", "optimize", "execute"} <= names
        assert main(["experiment", "table1", "--scale", "0.005"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_experiment_fig7_small(self, capsys):
        assert (
            main(["experiment", "fig7", "--scale", "0.01", "--queries", "2"]) == 0
        )
        assert "total improvement" in capsys.readouterr().out
