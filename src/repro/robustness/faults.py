"""Deterministic fault injection and transient-fault retry.

A :class:`FaultPlan` describes *where* and *when* storage or adaptation
operations should fail; compiling it yields a :class:`FaultInjector` whose
``fire(site)`` calls are consulted at fixed trigger points:

========================  ====================================================
site                      consulted by
========================  ====================================================
``index-lookup``          :meth:`repro.storage.index.SortedIndex.lookup_rids`
``cursor-advance``        ``__next__`` of both scan cursor classes
``hash-probe``            :meth:`repro.executor.hashprobe.HashProbeTable.probe`
``controller``            both adaptation checks in ``AdaptationController``
``monitor``               the per-probe monitoring block of ``RuntimeLeg``
========================  ====================================================

Faults are **transient** (:class:`~repro.errors.TransientStorageError` —
the access layer retries them with exponential backoff) or **permanent**
(:class:`~repro.errors.PermanentStorageError` — never retried). Triggers
are either *nth-call* (fire on exactly the nth consultation of that site,
deterministic) or *probability-per-op* (seeded RNG, deterministic for a
given seed). Every fire is counted, so tests can assert a plan actually
did something instead of passing vacuously.

The injector itself is engine-agnostic: trigger points pass plain string
site names, so the storage layer does not import this module's types.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, TypeVar

from repro.errors import (
    PermanentStorageError,
    StorageError,
    TransientStorageError,
)

KNOWN_SITES = (
    "index-lookup",
    "cursor-advance",
    "hash-probe",
    "controller",
    "monitor",
)

TRANSIENT = "transient"
PERMANENT = "permanent"


@dataclass(frozen=True)
class FaultSpec:
    """One fault trigger: a site, a kind, and when it fires.

    Exactly one of *nth_call* (1-based call number at the site) and
    *probability* (per-consultation chance) must be given. *max_fires*
    bounds how often the spec can fire; nth-call specs default to a single
    fire, probabilistic specs to unlimited.
    """

    site: str
    kind: str = TRANSIENT
    nth_call: int | None = None
    probability: float | None = None
    max_fires: int | None = None

    def __post_init__(self) -> None:
        if self.site not in KNOWN_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; expected one of {KNOWN_SITES}"
            )
        if self.kind not in (TRANSIENT, PERMANENT):
            raise ValueError(
                f"fault kind must be {TRANSIENT!r} or {PERMANENT!r}, "
                f"got {self.kind!r}"
            )
        if (self.nth_call is None) == (self.probability is None):
            raise ValueError(
                "exactly one of nth_call and probability must be set"
            )
        if self.nth_call is not None and self.nth_call < 1:
            raise ValueError("nth_call is 1-based and must be >= 1")
        if self.probability is not None and not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        if self.max_fires is not None and self.max_fires < 1:
            raise ValueError("max_fires must be >= 1")

    @property
    def fire_budget(self) -> float:
        if self.max_fires is not None:
            return self.max_fires
        return 1 if self.nth_call is not None else float("inf")


@dataclass(frozen=True)
class FaultPlan:
    """A seedable, JSON-serialisable collection of fault specs.

    Plans are immutable; :meth:`build` compiles a fresh injector (with its
    own call counters and RNG) so one plan can drive many executions with
    identical behaviour.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse ``{"seed": int, "faults": [{site, kind, ...}, ...]}``."""
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(raw, dict):
            raise ValueError("fault plan must be a JSON object")
        unknown = set(raw) - {"seed", "faults"}
        if unknown:
            raise ValueError(f"unknown fault-plan keys: {sorted(unknown)}")
        specs = []
        for entry in raw.get("faults", []):
            if not isinstance(entry, dict):
                raise ValueError("each fault must be a JSON object")
            allowed = {"site", "kind", "nth_call", "probability", "max_fires"}
            bad = set(entry) - allowed
            if bad:
                raise ValueError(f"unknown fault keys: {sorted(bad)}")
            specs.append(FaultSpec(**entry))
        return cls(specs=tuple(specs), seed=int(raw.get("seed", 0)))

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "faults": [
                    {
                        key: value
                        for key, value in (
                            ("site", spec.site),
                            ("kind", spec.kind),
                            ("nth_call", spec.nth_call),
                            ("probability", spec.probability),
                            ("max_fires", spec.max_fires),
                        )
                        if value is not None
                    }
                    for spec in self.specs
                ],
            }
        )

    def build(self) -> "FaultInjector":
        return FaultInjector(self)


class FaultInjector:
    """Run-time state of one plan over one execution: counters + RNG."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._calls: dict[str, int] = {site: 0 for site in KNOWN_SITES}
        self._fires_left: list[float] = [s.fire_budget for s in plan.specs]
        # site -> number of faults raised there (for assertions/reports).
        self.fired: dict[str, int] = {site: 0 for site in KNOWN_SITES}

    @property
    def total_fired(self) -> int:
        return sum(self.fired.values())

    def calls(self, site: str) -> int:
        return self._calls[site]

    def fire(self, site: str) -> None:
        """Consult the plan at *site*; raise if a spec triggers.

        Trigger points must call this *before* mutating any state, so a
        raised transient fault leaves the operation retryable.
        """
        self._calls[site] += 1
        count = self._calls[site]
        for slot, spec in enumerate(self.plan.specs):
            if spec.site != site or self._fires_left[slot] <= 0:
                continue
            if spec.nth_call is not None:
                triggered = count == spec.nth_call
            else:
                triggered = self._rng.random() < (spec.probability or 0.0)
            if not triggered:
                continue
            self._fires_left[slot] -= 1
            self.fired[site] += 1
            message = (
                f"injected {spec.kind} fault at {site!r} (call #{count})"
            )
            if spec.kind == TRANSIENT:
                raise TransientStorageError(message)
            raise PermanentStorageError(message)


T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for transient storage faults.

    *base_delay* seconds doubles per attempt up to *max_delay*; the sleeper
    is injectable so tests run without real waiting. Retries only
    :class:`~repro.errors.TransientStorageError`; permanent faults and
    non-storage exceptions pass straight through.
    """

    max_attempts: int = 4
    base_delay: float = 0.0005
    max_delay: float = 0.05
    sleep: Callable[[float], None] = field(default=time.sleep)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")

    def delay_for(self, attempt: int) -> float:
        """Backoff before retry number *attempt* (1-based)."""
        return min(self.base_delay * (2 ** (attempt - 1)), self.max_delay)


DEFAULT_RETRY_POLICY = RetryPolicy()


def call_with_retry(
    operation: Callable[[], T],
    policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    on_retry: Callable[[], None] | None = None,
) -> T:
    """Run *operation*, retrying transient storage faults with backoff.

    After ``policy.max_attempts`` transient failures the last error is
    re-raised with the attempt count chained in, so callers can tell an
    exhausted retry budget from a first-try permanent failure. *on_retry*
    (when given) is invoked once per retry, before the backoff sleep —
    the observability layer counts retries through it.
    """
    attempt = 0
    while True:
        attempt += 1
        try:
            return operation()
        except TransientStorageError as exc:
            if attempt >= policy.max_attempts:
                raise StorageError(
                    f"transient fault persisted across {attempt} attempts: {exc}"
                ) from exc
            if on_retry is not None:
                on_retry()
            delay = policy.delay_for(attempt)
            if delay > 0:
                policy.sleep(delay)
