"""Aggregates and query-level modifiers (GROUP BY / ORDER BY / LIMIT).

The paper's pipelines are often "a pipelined portion of a bigger and more
complex plan" (Sec 3.1): blocking operators — aggregation, sorting — sit
*above* the adaptive pipeline and are unaffected by reordering, because the
pipeline's output multiset is invariant under it. Footnote 3 makes the one
exception explicit: a driving-leg switch destroys the scan's implicit sort
order, so "if a sort order needs to be maintained, we need to add a sort
operator at the end of this pipeline" — which is exactly what an ``ORDER
BY`` adds here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.query.query import OutputColumn


class AggFunc(enum.Enum):
    COUNT = "COUNT"       # COUNT(col): non-null values
    COUNT_STAR = "COUNT(*)"
    SUM = "SUM"
    AVG = "AVG"
    MIN = "MIN"
    MAX = "MAX"


@dataclass(frozen=True)
class Aggregate:
    """One aggregate call in the select list."""

    func: AggFunc
    column: OutputColumn | None = None  # None only for COUNT(*)

    def __post_init__(self) -> None:
        if self.func is AggFunc.COUNT_STAR and self.column is not None:
            raise ValueError("COUNT(*) takes no column")
        if self.func is not AggFunc.COUNT_STAR and self.column is None:
            raise ValueError(f"{self.func.value} requires a column")

    def __str__(self) -> str:
        if self.func is AggFunc.COUNT_STAR:
            return "COUNT(*)"
        return f"{self.func.value}({self.column})"


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    column: OutputColumn
    descending: bool = False

    def __str__(self) -> str:
        return f"{self.column} {'DESC' if self.descending else 'ASC'}"


SelectItem = OutputColumn | Aggregate
