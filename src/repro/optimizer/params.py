"""A shared, model-driven implementation of :class:`LegParamsProvider`.

Both the static optimizer and the run-time adaptation controller evaluate
candidate orders through the same Eq (1) machinery; the only difference is
where the per-table numbers come from (catalog statistics vs. run-time
monitors). :class:`TableModel` is that common parameter record and
:class:`ModelProvider` turns a set of them into position-dependent (JC, PC)
pairs, handling join-predicate availability per Sec 4.3.4.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.optimizer.cost import (
    driving_scan_cost_index,
    driving_scan_cost_table,
    probe_cost_via_hash,
    probe_cost_via_index,
    probe_cost_via_scan,
)
from repro.optimizer.plans import DrivingKind
from repro.query.joingraph import JoinGraph, JoinPredicate


@dataclass(frozen=True)
class TableModel:
    """Per-table parameters feeding the cost model.

    ``sel_local_index`` / ``sel_local_residual`` are the paper's S_LPI and
    S_LPR (Sec 4.3.1); their product with ``base_cardinality`` is C_LEG
    (Eq 9).
    """

    alias: str
    base_cardinality: float
    sel_local_index: float
    sel_local_residual: float
    local_predicate_count: int
    indexed_columns: frozenset[str]
    driving_kind: DrivingKind
    driving_range_count: int = 1
    # Extra multiplicative factor on the leg's cardinality when driving
    # (used at run time to account for the unscanned remainder of a leg
    # that has already been partially consumed as the driving leg).
    remaining_fraction: float = 1.0
    # Run-time calibration: ratio of the monitored JC/PC to the model's
    # prediction at the leg's *current* position. Carrying the ratio (rather
    # than the raw measurement) lets the Sec 4.3.4 availability adjustment
    # fall out of re-evaluating the model at a candidate position.
    jc_correction: float = 1.0
    pc_correction: float = 1.0
    # Sec 6 extension: probes without a usable index go through an
    # in-memory hash table instead of a full scan.
    hash_probes: bool = False

    @property
    def sel_local(self) -> float:
        return self.sel_local_index * self.sel_local_residual

    @property
    def leg_cardinality(self) -> float:
        return self.base_cardinality * self.sel_local

    def with_remaining_fraction(self, fraction: float) -> "TableModel":
        return replace(self, remaining_fraction=max(min(fraction, 1.0), 0.0))


DEFAULT_CLASS_SELECTIVITY = 0.01


class ModelProvider:
    """Evaluates (JC, PC) for legs from :class:`TableModel` records.

    Join-predicate selectivities are keyed by the join graph's column
    **equivalence class**, so a derived predicate (implied by transitivity)
    shares the selectivity of the class it belongs to.
    """

    def __init__(
        self,
        models: Mapping[str, TableModel],
        class_selectivities: Mapping[int, float],
        graph: JoinGraph,
    ) -> None:
        self.models = models
        self.class_selectivities = class_selectivities
        self.graph = graph

    def _jp_sel(self, predicate: JoinPredicate) -> float:
        class_id = self.graph.class_id(predicate.left, predicate.left_column)
        if class_id is None:
            return DEFAULT_CLASS_SELECTIVITY
        return self.class_selectivities.get(class_id, DEFAULT_CLASS_SELECTIVITY)

    def driving_params(self, alias: str) -> tuple[float, float]:
        model = self.models[alias]
        cleg = model.leg_cardinality * model.remaining_fraction
        if model.driving_kind is DrivingKind.INDEX_SCAN:
            scan_pc = driving_scan_cost_index(
                model.base_cardinality * model.remaining_fraction,
                model.sel_local_index,
                model.driving_range_count,
                # Residual locals are evaluated on every index match.
                max(model.local_predicate_count - 1, 0),
            )
        else:
            scan_pc = driving_scan_cost_table(
                model.base_cardinality * model.remaining_fraction,
                model.local_predicate_count,
            )
        return cleg, scan_pc

    def inner_params(self, alias: str, bound: frozenset[str]) -> tuple[float, float]:
        model = self.models[alias]
        available = self.graph.available_predicates(alias, bound)
        # JC(T): matches per incoming row after locals and all available
        # join predicates (Sec 4.3.4 adjustment falls out of recomputing
        # this per candidate position). Each equivalence class filters
        # once, however many of its predicates are available.
        jc = model.leg_cardinality * model.remaining_fraction
        seen_classes: set[int | None] = set()
        for predicate in available:
            class_id = self.graph.class_id(alias, predicate.column_of(alias))
            if class_id in seen_classes:
                continue
            seen_classes.add(class_id)
            jc *= self._jp_sel(predicate)
        jc *= model.jc_correction
        indexed = [
            predicate
            for predicate in available
            if predicate.column_of(alias) in model.indexed_columns
        ]
        if indexed:
            # Probe through the most selective indexed join predicate; the
            # others become residual checks.
            access = min(indexed, key=self._jp_sel)
            residual_count = (
                len(available) - 1 + model.local_predicate_count
            )
            # Probe work is NOT reduced by a frozen scan position: the index
            # still returns every match and the positional predicate rejects
            # afterwards — only JC shrinks, not PC.
            pc = probe_cost_via_index(
                model.base_cardinality,
                self._jp_sel(access),
                residual_count,
            )
        elif model.hash_probes and available:
            access = min(available, key=self._jp_sel)
            pc = probe_cost_via_hash(
                model.base_cardinality * model.sel_local,
                self._jp_sel(access),
                len(available) - 1,
            )
        else:
            pc = probe_cost_via_scan(
                model.base_cardinality,
                len(available) + model.local_predicate_count,
            )
        return jc, pc * model.pc_correction
