"""Shared fixtures for the benchmark suite.

Scale knobs (environment variables):

* ``REPRO_SCALE``  — DMV scale factor; 1.0 = the paper's 100K owners.
  Default 0.15 keeps the full suite around a few minutes.
* ``REPRO_QPT``    — queries per template for the 4-table workload
  (paper: 60, i.e. ~300 queries). Default 40.
* ``REPRO_SIX``    — query count for the 6-table workload (paper: 100).
  Default 40.

Run at paper scale with::

    REPRO_SCALE=1.0 REPRO_QPT=60 REPRO_SIX=100 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.catalog.statistics import StatisticsLevel
from repro.dmv import four_table_workload, load_dmv, six_table_workload

SCALE = float(os.environ.get("REPRO_SCALE", "0.15"))
QUERIES_PER_TEMPLATE = int(os.environ.get("REPRO_QPT", "40"))
SIX_TABLE_QUERIES = int(os.environ.get("REPRO_SIX", "40"))

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit_report(name: str, text: str) -> None:
    """Print a report and persist it under benchmarks/results/.

    Writes through a temp file + ``os.replace`` so a run killed mid-write
    never leaves a truncated report behind.
    """
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    target = RESULTS_DIR / f"{name}.txt"
    tmp = target.with_name(f"{target.name}.tmp.{os.getpid()}")
    try:
        tmp.write_text(text + "\n")
        os.replace(tmp, target)
    except BaseException:
        if tmp.exists():
            tmp.unlink()
        raise


@pytest.fixture(scope="session")
def dmv():
    """(db, summary) for the base 4-table DMV data set."""
    return load_dmv(scale=SCALE)


@pytest.fixture(scope="session")
def dmv_db(dmv):
    return dmv[0]


@pytest.fixture(scope="session")
def dmv_summary(dmv):
    return dmv[1]


@pytest.fixture(scope="session")
def dmv_detailed():
    """DMV database analyzed with frequent-value statistics (Sec 5.3)."""
    db, _ = load_dmv(scale=SCALE, stats=StatisticsLevel.DETAILED)
    return db


@pytest.fixture(scope="session")
def dmv_extended():
    """(db, summary) for the 6-table extended DMV data set (Sec 5.5)."""
    return load_dmv(scale=SCALE, extended=True)


@pytest.fixture(scope="session")
def workload():
    return four_table_workload(queries_per_template=QUERIES_PER_TEMPLATE)


@pytest.fixture(scope="session")
def workload_small():
    """A reduced workload for parameter sweeps (Fig 10, ablations)."""
    return four_table_workload(
        queries_per_template=max(QUERIES_PER_TEMPLATE // 4, 5)
    )


@pytest.fixture(scope="session")
def six_workload():
    return six_table_workload(count=SIX_TABLE_QUERIES)
