"""Per-client session state: identity, rate limiting, pending work.

A :class:`Session` is one accepted connection. It owns

* a :class:`TokenBucket` enforcing the per-client query rate,
* a FIFO of queries admitted but not yet executing (the fair scheduler
  drains one FIFO per round-robin turn, so no session can starve the
  others by pipelining),
* the set of cancellation tokens for its in-flight queries, so a
  disconnect cancels exactly its own work, and
* plain counters surfaced by the ``stats`` op.

Sessions are event-loop-local objects; nothing here is touched from
executor threads.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.robustness.limits import CancellationToken
    from repro.server.protocol import QueryRequest

_session_ids = itertools.count(1)


class TokenBucket:
    """Classic token-bucket rate limiter (tokens/second, bounded burst).

    ``rate <= 0`` disables limiting (every take succeeds). The clock is
    injectable for deterministic tests.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if burst < 1 and rate > 0:
            raise ValueError("burst must be >= 1 when rate limiting is on")
        self.rate = rate
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._updated) * self.rate
        )
        self._updated = now

    def try_take(self) -> bool:
        """Consume one token; False means the caller is over its rate."""
        if self.rate <= 0:
            return True
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


@dataclass
class PendingQuery:
    """One admitted query waiting for (or holding) a worker slot."""

    request: "QueryRequest"
    session: "Session"
    token: "CancellationToken"
    enqueued_at: float


@dataclass
class Session:
    """State of one connected client."""

    peer: str
    bucket: TokenBucket
    session_id: int = field(default_factory=lambda: next(_session_ids))
    queue: deque = field(default_factory=deque)
    # CancellationTokens of this session's queries currently executing.
    in_flight: set = field(default_factory=set)
    closed: bool = False
    # Counters for the stats op.
    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    # Response writer installed by the server (async callable); None once
    # the transport is gone, at which point responses are dropped.
    send: Callable[[dict], Any] | None = None

    @property
    def name(self) -> str:
        return f"session-{self.session_id}"

    def disconnect(self) -> int:
        """Mark closed, drop queued work, cancel in-flight queries.

        Returns the number of queued (not yet executing) queries dropped.
        Cancellation of executing queries is cooperative: each token is
        observed by its executor at the next safe point / wave barrier.
        """
        self.closed = True
        self.send = None
        dropped = len(self.queue)
        self.queue.clear()
        for token in tuple(self.in_flight):
            token.cancel(f"{self.name} disconnected")
        return dropped
