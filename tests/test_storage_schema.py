"""Unit tests for repro.storage.schema."""

import pytest

from repro.errors import SchemaError, StorageError
from repro.storage.schema import Column, TableSchema
from repro.storage.types import ColumnType


def make_schema() -> TableSchema:
    return TableSchema(
        "t",
        [
            Column("id", ColumnType.INT, nullable=False),
            Column("name", ColumnType.STRING),
            Column("score", ColumnType.FLOAT),
        ],
    )


class TestColumn:
    def test_invalid_name(self):
        with pytest.raises(SchemaError):
            Column("not a name", ColumnType.INT)

    def test_empty_name(self):
        with pytest.raises(SchemaError):
            Column("", ColumnType.INT)


class TestTableSchema:
    def test_column_names(self):
        assert make_schema().column_names() == ("id", "name", "score")

    def test_position_of(self):
        schema = make_schema()
        assert schema.position_of("id") == 0
        assert schema.position_of("score") == 2

    def test_position_of_unknown(self):
        with pytest.raises(SchemaError, match="no column"):
            make_schema().position_of("missing")

    def test_has_column(self):
        schema = make_schema()
        assert schema.has_column("name")
        assert not schema.has_column("missing")

    def test_duplicate_column(self):
        with pytest.raises(SchemaError, match="duplicate"):
            TableSchema("t", [Column("a", ColumnType.INT)] * 2)

    def test_empty_columns(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_invalid_table_name(self):
        with pytest.raises(SchemaError):
            TableSchema("bad name", [Column("a", ColumnType.INT)])

    def test_len(self):
        assert len(make_schema()) == 3

    def test_column_accessor(self):
        assert make_schema().column("name").type is ColumnType.STRING


class TestValidateRow:
    def test_valid_row(self):
        assert make_schema().validate_row([1, "a", 2]) == (1, "a", 2.0)

    def test_wrong_arity(self):
        with pytest.raises(StorageError, match="expected 3 values"):
            make_schema().validate_row([1, "a"])

    def test_not_null_enforced(self):
        with pytest.raises(StorageError, match="NOT NULL"):
            make_schema().validate_row([None, "a", 1.0])

    def test_nullable_allows_none(self):
        assert make_schema().validate_row([1, None, None]) == (1, None, None)

    def test_type_mismatch(self):
        with pytest.raises(StorageError):
            make_schema().validate_row([1, 2, 3.0])
