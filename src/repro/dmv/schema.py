"""DMV data set schema (Sec 5, Table 1).

The paper evaluates on IBM's proprietary DMV data set: Owner, Car,
Demographics, and Accidents tables "with data skews and correlations among
columns", plus Location and Time extension tables for the six-table
experiment (Sec 5.5). This module defines our synthetic equivalent's schema
and the indexes ("we assume that proper indexes are built on join columns",
Sec 3.1 — plus the local-predicate columns the paper's examples scan).

Column names follow the paper's example queries: ``country1`` is the full
country name (Example 1: ``o.country1 = 'Germany'``), ``country3`` the
3-letter code (Example 2: ``o.country3 = 'EG'``).
"""

from __future__ import annotations

from repro.db import Database

# (table, [(column, type), ...])
BASE_TABLES: list[tuple[str, list[tuple[str, str]]]] = [
    (
        "Owner",
        [
            ("id", "int"),
            ("name", "string"),
            ("country1", "string"),  # full country name
            ("country3", "string"),  # 3-letter code, 1:1 with country1
            ("city", "string"),      # correlated with country
        ],
    ),
    (
        "Car",
        [
            ("id", "int"),
            ("ownerid", "int"),
            ("make", "string"),
            ("model", "string"),     # model determines make (Example 2)
            ("year", "int"),
        ],
    ),
    (
        "Demographics",
        [
            ("ownerid", "int"),
            ("salary", "int"),       # correlated with owned car class
            ("age", "int"),
            ("children", "int"),
        ],
    ),
    (
        "Accidents",
        [
            ("id", "int"),
            ("carid", "int"),
            ("driver", "string"),
            ("year", "int"),
            ("damage", "int"),
            ("locationid", "int"),   # used by the 6-table extension
            ("timeid", "int"),       # used by the 6-table extension
        ],
    ),
]

EXTENDED_TABLES: list[tuple[str, list[tuple[str, str]]]] = [
    (
        "Location",
        [
            ("id", "int"),
            ("state", "string"),
            ("city", "string"),
            ("urban", "int"),  # 0/1 flag; accidents skew toward urban
        ],
    ),
    (
        "Time",
        [
            ("id", "int"),
            ("year", "int"),
            ("month", "int"),
            ("day", "int"),
            ("weekday", "int"),
        ],
    ),
]

# Note: Owner.country1 is deliberately NOT indexed. Example 1's narrative
# has the optimizer drive on Car's make index (not Owner), and Sec 5.3's
# Example 3 has it choose the country3 index over the city index; both
# require country1 lookups to go through residual predicates.
BASE_INDEXES: list[tuple[str, str]] = [
    ("Owner", "id"),
    ("Owner", "country3"),
    ("Owner", "city"),
    ("Car", "id"),
    ("Car", "ownerid"),
    ("Car", "make"),
    ("Car", "model"),
    ("Car", "year"),
    ("Demographics", "ownerid"),
    ("Demographics", "salary"),
    ("Demographics", "age"),
    ("Accidents", "id"),
    ("Accidents", "carid"),
    ("Accidents", "year"),
    ("Accidents", "damage"),
]

EXTENDED_INDEXES: list[tuple[str, str]] = [
    ("Accidents", "locationid"),
    ("Accidents", "timeid"),
    ("Location", "id"),
    ("Location", "state"),
    ("Time", "id"),
    ("Time", "year"),
    ("Time", "month"),
]


def create_dmv_schema(db: Database, extended: bool = False) -> None:
    """Create the DMV tables and indexes on *db* (no data)."""
    tables = list(BASE_TABLES) + (list(EXTENDED_TABLES) if extended else [])
    for name, columns in tables:
        db.create_table(name, columns)
    for table, column in BASE_INDEXES:
        db.create_index(table, column)
    if extended:
        for table, column in EXTENDED_INDEXES:
            db.create_index(table, column)
