"""Tests for the per-leg LRU probe cache and its invalidation contract."""

from __future__ import annotations

from repro import AdaptiveConfig, ReorderMode
from repro.core.controller import AdaptationController
from repro.executor.batch import BatchedPipelineExecutor
from repro.executor.probecache import ProbeCache

from tests.conftest import build_three_table_db

SKEW_SQL = (
    "SELECT o.name FROM Owner o, Car c, Demo d "
    "WHERE c.ownerid = o.id AND o.id = d.ownerid "
    "AND c.make = 'Rare' AND o.country = 'DE' AND d.salary < 70000"
)


class TestLRU:
    def test_put_get_roundtrip(self):
        cache = ProbeCache(4)
        cache.ensure(0, 0)
        cache.put(("k", 1), ["row"])
        assert cache.get(("k", 1)) == ["row"]
        assert cache.hits == 1
        assert cache.misses == 0

    def test_miss_counts(self):
        cache = ProbeCache(4)
        cache.ensure(0, 0)
        assert cache.get("absent") is None
        assert cache.misses == 1

    def test_capacity_evicts_least_recently_used(self):
        cache = ProbeCache(2)
        cache.ensure(0, 0)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now LRU
        cache.put("c", 3)
        assert len(cache) == 2
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_epoch_move_flushes(self):
        cache = ProbeCache(4)
        cache.ensure(1, 0)
        cache.put("k", "v")
        cache.ensure(2, 0)  # probe recompiled: a probe means something new
        assert cache.get("k") is None
        assert cache.flushes == 1

    def test_heap_version_move_flushes(self):
        cache = ProbeCache(4)
        cache.ensure(1, 5)
        cache.put("k", "v")
        cache.ensure(1, 6)  # rows appended under the pipeline
        assert cache.get("k") is None
        assert cache.flushes == 1

    def test_ensure_same_generation_keeps_contents(self):
        cache = ProbeCache(4)
        cache.ensure(1, 5)
        cache.put("k", "v")
        cache.ensure(1, 5)
        assert cache.get("k") == "v"
        assert cache.flushes == 0


class TestDrivingSwitchInvalidation:
    """Sec 4.2: a driving switch recompiles probes and installs positional
    predicates; stale cached matches would duplicate or drop rows."""

    def run_batched(self, db, config):
        plan = db.plan(SKEW_SQL)
        controller = (
            AdaptationController(config) if config.mode.monitors else None
        )
        executor = BatchedPipelineExecutor(plan, db.catalog, config, controller)
        if controller is not None:
            controller.attach(executor)
        rows = executor.run_to_completion()
        return executor, rows

    def test_switch_flushes_cache_and_preserves_results(self):
        db = build_three_table_db(owners=2000, seed=42)
        scalar = db.execute(SKEW_SQL, AdaptiveConfig(mode=ReorderMode.NONE))
        config = AdaptiveConfig(
            mode=ReorderMode.BOTH,
            batched=True,
            batch_size=7,
            probe_cache_size=64,
        )
        executor, rows = self.run_batched(db, config)
        # The scenario is only meaningful if a driving switch actually fired
        # and installed a positional predicate on the formerly-driving leg.
        assert executor.driving_switches >= 1
        assert any(
            leg.positional is not None for leg in executor.legs.values()
        )
        # No duplicates, no lost rows: exactly the scalar multiset.
        assert sorted(rows) == sorted(scalar.rows)
        # The recompile moved every leg's probe epoch; caches that held
        # entries across the switch must have flushed.
        assert sum(c.flushes for c in executor.probe_caches.values()) >= 1

    def test_cache_generation_tracks_final_epoch(self):
        db = build_three_table_db(owners=2000, seed=42)
        config = AdaptiveConfig(
            mode=ReorderMode.BOTH,
            batched=True,
            batch_size=7,
            probe_cache_size=64,
        )
        executor, _ = self.run_batched(db, config)
        for alias, cache in executor.probe_caches.items():
            if cache.generation == (None, None):
                continue  # never consulted (e.g. the driving leg)
            leg = executor.legs[alias]
            assert cache.generation == (leg.probe_epoch, leg.table.version)
