"""Exception hierarchy for the repro database engine.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch engine failures without also swallowing programming errors
such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro engine."""


class SchemaError(ReproError):
    """A table or column definition is invalid or inconsistent."""


class CatalogError(ReproError):
    """A referenced table, column, or index does not exist."""


class StorageError(ReproError):
    """Low-level storage failure (bad RID, type mismatch on insert, ...)."""


class TransientStorageError(StorageError):
    """A storage failure that may succeed on retry (injected or real).

    The access layer retries these with exponential backoff; only after the
    retry budget is exhausted do they propagate to the caller.
    """


class PermanentStorageError(StorageError):
    """A storage failure that will not go away; never retried."""


class QueryError(ReproError):
    """A query specification is malformed (unknown alias, bad predicate, ...)."""


class SqlSyntaxError(QueryError):
    """The SQL text could not be parsed.

    Carries the offending position so callers can point at the error.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class PlanError(ReproError):
    """The optimizer could not build a valid pipelined plan for the query."""


class ExecutionError(ReproError):
    """The executor entered an inconsistent state at run time."""


class BudgetExceeded(ExecutionError):
    """A per-query execution limit was hit (rows, work, deadline, cancel).

    Carries the partial-progress statistics at the moment the limit fired so
    callers can report how far the query got.
    """

    def __init__(
        self,
        reason: str,
        *,
        rows_emitted: int = 0,
        work_units: float = 0.0,
        elapsed_seconds: float = 0.0,
        driving_rows: int = 0,
    ) -> None:
        super().__init__(reason)
        self.reason = reason
        self.rows_emitted = rows_emitted
        self.work_units = work_units
        self.elapsed_seconds = elapsed_seconds
        self.driving_rows = driving_rows

    def progress_summary(self) -> str:
        return (
            f"{self.reason} after {self.rows_emitted} row(s), "
            f"{self.work_units:,.0f} work units, "
            f"{self.elapsed_seconds * 1000:.1f} ms, "
            f"{self.driving_rows} driving row(s)"
        )


class OracleViolation(ExecutionError):
    """A debug-mode invariant oracle caught the executor breaking a rule.

    Raised only when an :class:`~repro.robustness.oracle.InvariantOracle` is
    attached: duplicate output rows, or an adaptation fired outside its
    depleted-state precondition.
    """
