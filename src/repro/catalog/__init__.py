"""Catalog: table registry, indexes, and optimizer statistics."""

from repro.catalog.catalog import Catalog
from repro.catalog.statistics import (
    ColumnStats,
    StatisticsLevel,
    TableStats,
    collect_column_stats,
    collect_table_stats,
)

__all__ = [
    "Catalog",
    "ColumnStats",
    "StatisticsLevel",
    "TableStats",
    "collect_column_stats",
    "collect_table_stats",
]
