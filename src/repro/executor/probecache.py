"""Per-leg LRU memoization of join-key probe results.

Skewed join columns make the pipelined NLJN repeat the same inner probe
many times: every outer row carrying a popular key descends the same index
range, fetches the same heap rows, and re-evaluates the same residual
predicates. The probe cache memoizes the *fully filtered* outcome of one
probe — the match rows plus the charge counts the scalar path would have
paid — keyed by everything the outcome depends on:

* the access-predicate key extracted from the outer binding, and
* the outer values of every residual equality join predicate.

The compiled probe configuration (access predicate choice, residual set,
positional predicate) is part of the outcome too, but instead of folding it
into the key, the cache is **generation-checked**: every
``RuntimeLeg.compile_probe`` bumps the leg's ``probe_epoch``, and every
heap insert bumps the table's ``version``. :meth:`ProbeCache.ensure` flushes
the cache whenever either moved — this is what invalidates cached matches
when a driving-leg switch installs a positional predicate on a
formerly-driving leg (Sec 4.2's no-duplicates guarantee) or when rows are
appended under the pipeline.

Work accounting contract: a cache *hit* replays the memoized monitor
observation (so Eq 5–11 estimates and therefore adaptation decisions are
bit-identical to scalar execution) but skips the execution-unit charges the
probe would have repeated. Those skipped charges are the cache's entire
benefit and are auditable through ``WorkMeter.probe_cache_hits``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable

CacheKey = Hashable


class ProbeCache:
    """A bounded LRU of prepared probe results for one leg."""

    __slots__ = ("capacity", "hits", "misses", "flushes", "entries", "_epoch", "_version")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("probe cache capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.flushes = 0
        # Public on purpose: the turbo hot path reads/updates the LRU
        # dict directly to skip a method call per probe.
        self.entries: OrderedDict[CacheKey, Any] = OrderedDict()
        self._epoch: int | None = None
        self._version: int | None = None

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def generation(self) -> tuple[int | None, int | None]:
        """(probe epoch, table version) the current contents are valid for."""
        return (self._epoch, self._version)

    def ensure(self, epoch: int, version: int) -> None:
        """Flush if the leg's probe config or its heap moved on."""
        if epoch != self._epoch or version != self._version:
            if self.entries:
                self.flushes += 1
                self.entries.clear()
            self._epoch = epoch
            self._version = version

    def get(self, key: CacheKey) -> Any | None:
        entry = self.entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: CacheKey, entry: Any) -> None:
        # Only misses are put, and a key misses at most once per generation,
        # so the insert always lands at the recent end — no move needed.
        entries = self.entries
        entries[key] = entry
        if len(entries) > self.capacity:
            entries.popitem(last=False)
