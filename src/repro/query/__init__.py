"""Logical query layer: predicates, join graphs, query specs, SQL parsing."""

from repro.query.joingraph import JoinGraph, JoinPredicate
from repro.query.predicates import (
    Between,
    Comparison,
    Disjunction,
    InList,
    IsNull,
    LocalPredicate,
    Op,
    PositionalPredicate,
)
from repro.query.query import OutputColumn, QuerySpec

__all__ = [
    "Between",
    "Comparison",
    "Disjunction",
    "InList",
    "IsNull",
    "JoinGraph",
    "JoinPredicate",
    "LocalPredicate",
    "Op",
    "OutputColumn",
    "PositionalPredicate",
    "QuerySpec",
]
