"""Frozen scan positions and duplicate prevention (Sec 4.2).

When the driving leg is switched, the outgoing driving table's scan position
is *frozen*. From then on:

* whenever that table serves as an **inner leg**, every candidate row must
  lie strictly *after* the frozen position in the original scan order — the
  paper's added local predicate ``key > v OR (key = v AND rid > r)``
  (index-scan order) or ``rid > r`` (table-scan order);
* whenever it becomes the **driving leg again**, its retained cursor resumes
  from the frozen position instead of restarting.

Correctness invariant (DESIGN.md Sec 4): with ``P(T)`` the frozen position
of every previously-driving table (unbounded for the rest), the un-emitted
result set is always ``⋈ of { rows of T after P(T) }``. Each driving phase
emits one "slab" — the cross product of the driving table's newly scanned
positions with the other tables' after-P(T) remainders — and advances
exactly one ``P(T)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.predicates import PositionalPredicate
from repro.storage.cursor import (
    IndexScanCursor,
    Position,
    ScanOrder,
    TableScanCursor,
)

Cursor = TableScanCursor | IndexScanCursor


@dataclass
class FrozenScan:
    """A previously-driving leg's frozen state."""

    order: ScanOrder
    position: Position
    cursor: Cursor

    def positional_predicate(self) -> PositionalPredicate:
        return PositionalPredicate(order=self.order, after=self.position)


class PositionRegistry:
    """Tracks the frozen scan of every table that has ever driven."""

    def __init__(self) -> None:
        self._frozen: dict[str, FrozenScan] = {}
        self.switch_count = 0

    def freeze(self, alias: str, cursor: Cursor) -> None:
        """Freeze *alias*'s driving scan at the cursor's current position.

        A leg that never produced a row freezes at "before everything",
        which the positional predicate represents as ``None`` (no
        restriction) — handled in :meth:`predicate_for`.
        """
        self._frozen[alias] = FrozenScan(
            order=cursor.order,
            position=cursor.last_position if cursor.last_position is not None else (),
            cursor=cursor,
        )
        self.switch_count += 1

    def predicate_for(self, alias: str) -> PositionalPredicate | None:
        """The duplicate-prevention predicate for *alias* as an inner leg."""
        frozen = self._frozen.get(alias)
        if frozen is None or not frozen.position:
            # Never driving, or froze before its first row: nothing emitted,
            # nothing to exclude.
            return None
        return frozen.positional_predicate()

    def frozen_scan(self, alias: str) -> FrozenScan | None:
        return self._frozen.get(alias)

    def resume_cursor(self, alias: str) -> Cursor | None:
        """The retained cursor for *alias*, if it drove before."""
        frozen = self._frozen.get(alias)
        return frozen.cursor if frozen is not None else None

    def has_driven(self, alias: str) -> bool:
        return alias in self._frozen
