"""Unit tests for the static optimizer."""

import pytest

from repro.catalog.statistics import StatisticsLevel
from repro.errors import CatalogError, PlanError, SchemaError
from repro.optimizer.cost import cost_of_order
from repro.optimizer.optimizer import StaticOptimizer, choose_driving_spec
from repro.optimizer.params import ModelProvider
from repro.optimizer.plans import DrivingKind
from repro.optimizer.selectivity import Estimator
from repro.query.predicates import Comparison, Disjunction, Op
from repro.query.sql.parser import parse_sql

from tests.conftest import build_three_table_db


def optimize(db, sql):
    return StaticOptimizer(db.catalog).optimize(parse_sql(sql))


class TestValidation:
    def test_unknown_table(self, three_table_db):
        with pytest.raises(CatalogError):
            optimize(three_table_db, "SELECT x.a FROM Missing x")

    def test_unknown_column_in_predicate(self, three_table_db):
        with pytest.raises(SchemaError):
            optimize(
                three_table_db, "SELECT o.name FROM Owner o WHERE o.zzz = 1"
            )

    def test_unknown_column_in_projection(self, three_table_db):
        with pytest.raises(SchemaError):
            optimize(three_table_db, "SELECT o.zzz FROM Owner o")

    def test_disconnected_query_rejected(self, three_table_db):
        with pytest.raises(PlanError, match="disconnected"):
            optimize(three_table_db, "SELECT o.name FROM Owner o, Car c")


class TestProjection:
    def test_star_expands_all_columns(self, three_table_db):
        plan = optimize(three_table_db, "SELECT * FROM Owner o")
        assert [str(c) for c in plan.projection] == [
            "o.id",
            "o.name",
            "o.country",
        ]

    def test_explicit_projection_kept(self, three_table_db):
        plan = optimize(three_table_db, "SELECT o.name FROM Owner o")
        assert [str(c) for c in plan.projection] == ["o.name"]


class TestDrivingSpec:
    def test_index_scan_chosen_for_sargable_indexed(self, three_table_db):
        plan = optimize(
            three_table_db,
            "SELECT o.name FROM Owner o WHERE o.country = 'DE'",
        )
        spec = plan.leg("o").driving
        assert spec.kind is DrivingKind.INDEX_SCAN
        assert spec.index_column == "country"

    def test_table_scan_without_usable_index(self, three_table_db):
        plan = optimize(
            three_table_db, "SELECT o.name FROM Owner o WHERE o.name = 'n1'"
        )
        assert plan.leg("o").driving.kind is DrivingKind.TABLE_SCAN

    def test_disjunction_becomes_multi_range(self, three_table_db):
        plan = optimize(
            three_table_db,
            "SELECT c.id FROM Car c WHERE (c.make = 'A' OR c.make = 'B')",
        )
        spec = plan.leg("c").driving
        assert spec.kind is DrivingKind.INDEX_SCAN
        assert len(spec.ranges) == 2

    def test_tie_breaks_to_first_predicate(self):
        """Equal estimated selectivities keep the first predicate.

        This reproduces the Sec 5.3 / Example 3 behaviour: with defaults,
        country3 (written first) wins over city even when city is better.
        """
        predicates = (
            Comparison("country", Op.EQ, "US"),
            Comparison("name", Op.EQ, "n1"),
        )
        spec, sel_ix, _ = choose_driving_spec(
            "o", predicates, frozenset({"country", "name"}), Estimator(None)
        )
        assert spec.index_column == "country"


class TestOrderSearch:
    def test_plan_is_exhaustive_optimum_for_estimates(self, three_table_db):
        plan = optimize(
            three_table_db,
            "SELECT o.name FROM Owner o, Car c, Demo d "
            "WHERE c.ownerid = o.id AND o.id = d.ownerid "
            "AND c.make = 'Rare' AND d.salary < 30000",
        )
        graph = plan.query.join_graph()
        # Rebuild the optimizer's provider and brute-force all orders.
        optimizer = StaticOptimizer(three_table_db.catalog)
        rebuilt = optimizer.optimize(plan.query)
        for order in graph.connected_orders():
            assert rebuilt.estimated_cost <= _order_cost(
                three_table_db, plan.query, order
            ) + 1e-9

    def test_single_table_plan(self, three_table_db):
        plan = optimize(three_table_db, "SELECT o.name FROM Owner o")
        assert plan.order == ("o",)
        assert plan.estimated_cost > 0

    def test_explain_mentions_roles(self, three_table_db):
        plan = optimize(
            three_table_db,
            "SELECT o.name FROM Owner o, Car c WHERE c.ownerid = o.id",
        )
        text = plan.explain()
        assert "[DRIVING]" in text and "[INNER]" in text


def _order_cost(db, query, order):
    optimizer = StaticOptimizer(db.catalog)
    plan = optimizer.optimize(query)
    # Recreate a provider from the plan's own estimates via ModelProvider.
    from repro.optimizer.params import TableModel

    models = {}
    for alias in query.aliases:
        leg = plan.leg(alias)
        models[alias] = TableModel(
            alias=alias,
            base_cardinality=leg.estimates.base_cardinality,
            sel_local_index=leg.estimates.sel_local_index,
            sel_local_residual=leg.estimates.sel_local_residual,
            local_predicate_count=len(leg.local_predicates),
            indexed_columns=frozenset(db.catalog.indexes_of(leg.table_name)),
            driving_kind=leg.driving.kind,
            driving_range_count=max(len(leg.driving.ranges), 1),
        )
    provider = ModelProvider(
        models, plan.class_selectivities, query.join_graph()
    )
    return cost_of_order(order, provider)


class TestStatisticsLevels:
    def test_cardinality_level_uses_defaults(self):
        db = build_three_table_db(analyze=StatisticsLevel.CARDINALITY)
        plan = optimize(
            db, "SELECT o.name FROM Owner o WHERE o.country = 'DE'"
        )
        # Default equality selectivity 0.04 against 40 rows.
        assert plan.leg("o").estimates.leg_cardinality == pytest.approx(
            40 * 0.04
        )

    def test_basic_level_uses_ndv(self):
        db = build_three_table_db(analyze=StatisticsLevel.BASIC)
        plan = optimize(
            db, "SELECT o.name FROM Owner o WHERE o.country = 'DE'"
        )
        # 3 distinct countries -> 1/3.
        assert plan.leg("o").estimates.sel_local == pytest.approx(1 / 3)

    def test_join_class_fallback_is_key_fk(self):
        db = build_three_table_db(analyze=StatisticsLevel.CARDINALITY)
        plan = optimize(
            db,
            "SELECT o.name FROM Owner o, Car c WHERE c.ownerid = o.id",
        )
        (class_sel,) = plan.class_selectivities.values()
        widest = max(
            len(db.catalog.table("Owner")), len(db.catalog.table("Car"))
        )
        assert class_sel == pytest.approx(1 / widest)
