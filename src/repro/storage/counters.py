"""Deterministic work accounting for the storage engine.

The paper measures elapsed seconds on a dedicated machine. A pure-Python
re-implementation cannot reproduce absolute timings, and wall-clock noise
would blur the figure shapes, so the engine charges *work units* for every
physical action it performs:

* ``INDEX_DESCEND`` — locating the start of an index range (one B-tree
  descend in a real system),
* ``INDEX_ENTRY`` — each (key, rid) entry touched while walking a range,
* ``ROW_FETCH`` — fetching a heap row by RID,
* ``PREDICATE_EVAL`` — evaluating one residual predicate on one row.

The totals behave like an idealised I/O+CPU cost: a query that probes fewer
index entries and fetches fewer rows is strictly cheaper. Benchmarks report
work units as the primary metric and wall-clock seconds as a secondary one.

A :class:`WorkMeter` is plumbed through tables, indexes, and cursors; the
executor additionally charges adaptation overhead (monitor updates, reorder
checks) to separate buckets so the Sec 5.4 overhead experiment can isolate
them.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass


# Relative weights of the physical actions, loosely modelling "touching an
# index entry is cheap, fetching a heap row costs a random read". The two
# adaptation weights are calibrated so that monitoring + checking overhead
# on order-stable queries lands near the paper's measured 0.68%/0.67%
# (Sec 5.4) at the default check frequency c=10.
INDEX_DESCEND_COST = 4.0
INDEX_ENTRY_COST = 1.0
ROW_FETCH_COST = 2.0
PREDICATE_EVAL_COST = 0.25
MONITOR_UPDATE_COST = 0.02
REORDER_CHECK_COST = 0.4
# Pipelined hash probes (the Sec 6 hash-join extension): building hashes
# every qualifying row once; probing touches one bucket plus its matches.
HASH_BUILD_ENTRY_COST = 1.0   # charged on top of the row fetch per entry
HASH_PROBE_COST = 1.0
HASH_MATCH_COST = 0.5


@dataclass(slots=True)
class WorkMeter:
    """Accumulates deterministic work-unit charges by category."""

    index_descends: int = 0
    index_entries: int = 0
    row_fetches: int = 0
    predicate_evals: int = 0
    monitor_updates: int = 0
    reorder_checks: int = 0
    rows_emitted: int = 0
    hash_build_entries: int = 0
    hash_probes: int = 0
    hash_matches: int = 0
    # Probe-cache bookkeeping (batched path only). Hits and misses carry no
    # work-unit weight themselves: a miss's work is charged through the
    # physical counters above, a hit's *savings* are exactly the charges it
    # skipped. The counters let benchmarks and tests audit those savings.
    probe_cache_hits: int = 0
    probe_cache_misses: int = 0

    def charge_index_descend(self, count: int = 1) -> None:
        self.index_descends += count

    def charge_index_entries(self, count: int) -> None:
        self.index_entries += count

    def charge_row_fetch(self, count: int = 1) -> None:
        self.row_fetches += count

    def charge_predicate_eval(self, count: int = 1) -> None:
        self.predicate_evals += count

    def charge_monitor_update(self, count: int = 1) -> None:
        self.monitor_updates += count

    def charge_reorder_check(self, count: int = 1) -> None:
        self.reorder_checks += count

    def charge_row_emitted(self, count: int = 1) -> None:
        self.rows_emitted += count

    def charge_hash_build(self, entries: int) -> None:
        self.hash_build_entries += entries

    def charge_hash_probe(self, matches: int) -> None:
        self.hash_probes += 1
        self.hash_matches += matches

    def charge_probe_cache(self, hit: bool) -> None:
        if hit:
            self.probe_cache_hits += 1
        else:
            self.probe_cache_misses += 1

    @property
    def execution_units(self) -> float:
        """Work units spent doing useful query execution."""
        return (
            self.index_descends * INDEX_DESCEND_COST
            + self.index_entries * INDEX_ENTRY_COST
            + self.row_fetches * ROW_FETCH_COST
            + self.predicate_evals * PREDICATE_EVAL_COST
            + self.hash_build_entries * HASH_BUILD_ENTRY_COST
            + self.hash_probes * HASH_PROBE_COST
            + self.hash_matches * HASH_MATCH_COST
        )

    @property
    def adaptation_units(self) -> float:
        """Work units spent on monitoring and reorder checking (overhead)."""
        return (
            self.monitor_updates * MONITOR_UPDATE_COST
            + self.reorder_checks * REORDER_CHECK_COST
        )

    @property
    def total_units(self) -> float:
        return self.execution_units + self.adaptation_units

    def snapshot(self) -> "WorkMeter":
        """Return an independent copy of the current counters."""
        return WorkMeter(
            index_descends=self.index_descends,
            index_entries=self.index_entries,
            row_fetches=self.row_fetches,
            predicate_evals=self.predicate_evals,
            monitor_updates=self.monitor_updates,
            reorder_checks=self.reorder_checks,
            rows_emitted=self.rows_emitted,
            hash_build_entries=self.hash_build_entries,
            hash_probes=self.hash_probes,
            hash_matches=self.hash_matches,
            probe_cache_hits=self.probe_cache_hits,
            probe_cache_misses=self.probe_cache_misses,
        )

    def reset(self) -> None:
        self.index_descends = 0
        self.index_entries = 0
        self.row_fetches = 0
        self.predicate_evals = 0
        self.monitor_updates = 0
        self.reorder_checks = 0
        self.rows_emitted = 0
        self.hash_build_entries = 0
        self.hash_probes = 0
        self.hash_matches = 0
        self.probe_cache_hits = 0
        self.probe_cache_misses = 0

    def merge(self, other: "WorkMeter") -> None:
        """Fold *other*'s charges into this meter in place.

        Used by the parallel coordinator to aggregate per-worker meters:
        work units are additive across partitions, so the merged meter is
        the total physical work of the partitioned run.
        """
        self.index_descends += other.index_descends
        self.index_entries += other.index_entries
        self.row_fetches += other.row_fetches
        self.predicate_evals += other.predicate_evals
        self.monitor_updates += other.monitor_updates
        self.reorder_checks += other.reorder_checks
        self.rows_emitted += other.rows_emitted
        self.hash_build_entries += other.hash_build_entries
        self.hash_probes += other.hash_probes
        self.hash_matches += other.hash_matches
        self.probe_cache_hits += other.probe_cache_hits
        self.probe_cache_misses += other.probe_cache_misses

    def __iadd__(self, other: "WorkMeter") -> "WorkMeter":
        self.merge(other)
        return self

    def __sub__(self, other: "WorkMeter") -> "WorkMeter":
        return WorkMeter(
            index_descends=self.index_descends - other.index_descends,
            index_entries=self.index_entries - other.index_entries,
            row_fetches=self.row_fetches - other.row_fetches,
            predicate_evals=self.predicate_evals - other.predicate_evals,
            monitor_updates=self.monitor_updates - other.monitor_updates,
            reorder_checks=self.reorder_checks - other.reorder_checks,
            rows_emitted=self.rows_emitted - other.rows_emitted,
            hash_build_entries=self.hash_build_entries - other.hash_build_entries,
            hash_probes=self.hash_probes - other.hash_probes,
            hash_matches=self.hash_matches - other.hash_matches,
            probe_cache_hits=self.probe_cache_hits - other.probe_cache_hits,
            probe_cache_misses=self.probe_cache_misses - other.probe_cache_misses,
        )


class ThreadScopedMeter:
    """A :class:`WorkMeter` facade routing charges to a per-thread meter.

    Concurrent query serving runs executions on worker threads against one
    shared catalog, but the catalog — and every table built from it — holds
    a single ``WorkMeter`` reference, so concurrent charges would interleave
    and per-query ``meter - before`` deltas would mix unrelated queries'
    work. This facade keeps the object identity the storage layer captured
    while routing every charge to the meter bound to the *current thread*:

    * a thread inside a :meth:`scoped` block charges its private meter, so
      its query's delta is exact regardless of what other threads do;
    * every other thread — including forked parallel worker processes,
      whose fresh process starts with no binding — falls through to the
      shared base meter, preserving single-threaded behaviour.

    On scope exit the private meter folds into the base under a lock, so
    catalog-lifetime totals remain the sum of all work ever done.

    Both reads (``__getattr__``) and stores (``__setattr__``) of counter
    fields route to the thread's meter, so the batched executor's direct
    ``meter.row_fetches += n`` charge style works identically to the
    ``charge_*`` methods — a plain store can never land on the facade and
    shadow the per-thread meters.
    """

    #: Counter fields whose stores must route to the thread's meter.
    _METER_FIELDS = frozenset(WorkMeter.__dataclass_fields__)

    def __init__(self, base: WorkMeter | None = None) -> None:
        self._base = base if base is not None else WorkMeter()
        self._local = threading.local()
        self._merge_lock = threading.Lock()

    @property
    def base(self) -> WorkMeter:
        """The shared fallback meter (catalog-lifetime totals)."""
        return self._base

    def _current(self) -> WorkMeter:
        meter = getattr(self._local, "meter", None)
        return meter if meter is not None else self._base

    @contextmanager
    def scoped(self):
        """Bind a fresh private meter to the calling thread.

        Yields the private meter; on exit its charges are merged into the
        base. Scopes do not nest — one query per worker thread at a time.
        """
        if getattr(self._local, "meter", None) is not None:
            raise RuntimeError("meter scope already active on this thread")
        meter = WorkMeter()
        self._local.meter = meter
        try:
            yield meter
        finally:
            self._local.meter = None
            with self._merge_lock:
                self._base.merge(meter)

    def __getattr__(self, name: str):
        # Fields and bound methods (charge_*, snapshot, merge, totals) all
        # resolve against the thread's active meter.
        return getattr(self._current(), name)

    def __setattr__(self, name: str, value) -> None:
        # Counter stores (`meter.row_fetches += n`) go to the thread's
        # meter; everything else (facade internals) stays on the facade.
        if name in self._METER_FIELDS:
            setattr(self._current(), name, value)
        else:
            object.__setattr__(self, name, value)

    def __sub__(self, other: WorkMeter) -> WorkMeter:
        return self._current() - other

    def __iadd__(self, other: WorkMeter) -> "ThreadScopedMeter":
        self._current().merge(other)
        return self
