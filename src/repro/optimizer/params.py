"""A shared, model-driven implementation of :class:`LegParamsProvider`.

Both the static optimizer and the run-time adaptation controller evaluate
candidate orders through the same Eq (1) machinery; the only difference is
where the per-table numbers come from (catalog statistics vs. run-time
monitors). :class:`TableModel` is that common parameter record and
:class:`ModelProvider` turns a set of them into position-dependent (JC, PC)
pairs, handling join-predicate availability per Sec 4.3.4.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.optimizer.cost import (
    driving_scan_cost_index,
    driving_scan_cost_table,
    probe_cost_via_hash,
    probe_cost_via_index,
    probe_cost_via_scan,
)
from repro.optimizer.plans import DrivingKind
from repro.query.joingraph import JoinGraph, JoinPredicate
from repro.storage import counters as _counters

# Work-unit weights hoisted to module floats: ``inner_params`` runs inside
# every reorder-check's order search, where repeated module-attribute
# lookups through ``counters`` are measurable. The inlined cost expressions
# below keep the exact arithmetic order of the ``probe_cost_via_*`` helpers
# so evaluated costs are bit-identical.
_INDEX_DESCEND_COST = _counters.INDEX_DESCEND_COST
_INDEX_ENTRY_COST = _counters.INDEX_ENTRY_COST
_ROW_FETCH_COST = _counters.ROW_FETCH_COST
_PREDICATE_EVAL_COST = _counters.PREDICATE_EVAL_COST
_HASH_PROBE_COST = _counters.HASH_PROBE_COST
_HASH_MATCH_COST = _counters.HASH_MATCH_COST


# Not frozen=True: a frozen dataclass routes every field through
# object.__setattr__ at init time, and the adaptation controller builds a
# fresh model per leg per reorder check — construction is hot. Treat
# instances as immutable; derive variants via with_remaining_fraction.
@dataclass(slots=True)
class TableModel:
    """Per-table parameters feeding the cost model.

    ``sel_local_index`` / ``sel_local_residual`` are the paper's S_LPI and
    S_LPR (Sec 4.3.1); their product with ``base_cardinality`` is C_LEG
    (Eq 9).
    """

    alias: str
    base_cardinality: float
    sel_local_index: float
    sel_local_residual: float
    local_predicate_count: int
    indexed_columns: frozenset[str]
    driving_kind: DrivingKind
    driving_range_count: int = 1
    # Extra multiplicative factor on the leg's cardinality when driving
    # (used at run time to account for the unscanned remainder of a leg
    # that has already been partially consumed as the driving leg).
    remaining_fraction: float = 1.0
    # Run-time calibration: ratio of the monitored JC/PC to the model's
    # prediction at the leg's *current* position. Carrying the ratio (rather
    # than the raw measurement) lets the Sec 4.3.4 availability adjustment
    # fall out of re-evaluating the model at a candidate position.
    jc_correction: float = 1.0
    pc_correction: float = 1.0
    # Sec 6 extension: probes without a usable index go through an
    # in-memory hash table instead of a full scan.
    hash_probes: bool = False

    @property
    def sel_local(self) -> float:
        return self.sel_local_index * self.sel_local_residual

    @property
    def leg_cardinality(self) -> float:
        return self.base_cardinality * self.sel_local

    def with_remaining_fraction(self, fraction: float) -> "TableModel":
        return replace(self, remaining_fraction=max(min(fraction, 1.0), 0.0))


DEFAULT_CLASS_SELECTIVITY = 0.01


class ModelProvider:
    """Evaluates (JC, PC) for legs from :class:`TableModel` records.

    Join-predicate selectivities are keyed by the join graph's column
    **equivalence class**, so a derived predicate (implied by transitivity)
    shares the selectivity of the class it belongs to.
    """

    def __init__(
        self,
        models: Mapping[str, TableModel],
        class_selectivities: Mapping[int, float],
        graph: JoinGraph,
    ) -> None:
        self.models = models
        self.class_selectivities = class_selectivities
        self.graph = graph
        # (alias, bound) -> (jc, pc). A provider's models and selectivities
        # are fixed for its lifetime (one instance per reorder check), while
        # order search evaluates the same leg at the same position for many
        # candidate orders — memoizing keeps those evaluations O(1).
        self._inner_cache: dict[tuple[str, frozenset[str]], tuple[float, float]] = {}

    def _jp_sel(self, predicate: JoinPredicate) -> float:
        class_id = self.graph.class_id(predicate.left, predicate.left_column)
        if class_id is None:
            return DEFAULT_CLASS_SELECTIVITY
        return self.class_selectivities.get(class_id, DEFAULT_CLASS_SELECTIVITY)

    def driving_params(self, alias: str) -> tuple[float, float]:
        model = self.models[alias]
        cleg = model.leg_cardinality * model.remaining_fraction
        if model.driving_kind is DrivingKind.INDEX_SCAN:
            scan_pc = driving_scan_cost_index(
                model.base_cardinality * model.remaining_fraction,
                model.sel_local_index,
                model.driving_range_count,
                # Residual locals are evaluated on every index match.
                max(model.local_predicate_count - 1, 0),
            )
        else:
            scan_pc = driving_scan_cost_table(
                model.base_cardinality * model.remaining_fraction,
                model.local_predicate_count,
            )
        return cleg, scan_pc

    def inner_params(self, alias: str, bound: frozenset[str]) -> tuple[float, float]:
        bound = frozenset(bound)
        cached = self._inner_cache.get((alias, bound))
        if cached is not None:
            return cached
        model = self.models[alias]
        # The graph caches the structural skeleton (which equivalence
        # classes are available, which are indexed on this leg); only the
        # per-class selectivity lookups run per provider snapshot.
        distinct_ids, available_count, indexed_ids, all_ids = (
            self.graph.inner_structure(alias, bound, model.indexed_columns)
        )
        selectivities = self.class_selectivities
        # JC(T): matches per incoming row after locals and all available
        # join predicates (Sec 4.3.4 adjustment falls out of recomputing
        # this per candidate position). Each equivalence class filters
        # once, however many of its predicates are available.
        jc = model.leg_cardinality * model.remaining_fraction
        for class_id in distinct_ids:
            jc *= selectivities.get(class_id, DEFAULT_CLASS_SELECTIVITY)
        jc *= model.jc_correction
        if indexed_ids:
            # Probe through the most selective indexed join predicate; the
            # others become residual checks (probe_cost_via_index, inlined).
            access_sel = DEFAULT_CLASS_SELECTIVITY
            first = True
            for class_id in indexed_ids:
                sel = selectivities.get(class_id, DEFAULT_CLASS_SELECTIVITY)
                if first or sel < access_sel:
                    access_sel = sel
                    first = False
            residual_count = (
                available_count - 1 + model.local_predicate_count
            )
            # Probe work is NOT reduced by a frozen scan position: the index
            # still returns every match and the positional predicate rejects
            # afterwards — only JC shrinks, not PC.
            matches = max(model.base_cardinality * access_sel, 0.0)
            pc = _INDEX_DESCEND_COST + matches * (
                _INDEX_ENTRY_COST
                + _ROW_FETCH_COST
                + residual_count * _PREDICATE_EVAL_COST
            )
        elif model.hash_probes and available_count:
            access_sel = DEFAULT_CLASS_SELECTIVITY
            first = True
            for class_id in all_ids:
                sel = selectivities.get(class_id, DEFAULT_CLASS_SELECTIVITY)
                if first or sel < access_sel:
                    access_sel = sel
                    first = False
            matches = max(
                model.base_cardinality * model.sel_local * access_sel, 0.0
            )
            pc = _HASH_PROBE_COST + matches * (
                _HASH_MATCH_COST
                + (available_count - 1) * _PREDICATE_EVAL_COST
            )
        else:
            pc = model.base_cardinality * (
                _ROW_FETCH_COST
                + max(available_count + model.local_predicate_count, 1)
                * _PREDICATE_EVAL_COST
            )
        result = (jc, pc * model.pc_correction)
        self._inner_cache[(alias, bound)] = result
        return result
