"""Unit and integration tests for the concurrent query server.

Unit layers (protocol, token bucket, plan cache, admission, scheduler)
are tested directly; server integration tests run a real asyncio server
over an injectable fake engine whose executions block on an event, so
overload, disconnection-cancellation, draining, and shed levels are all
exercised deterministically — no timing-dependent assertions.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro.core.config import ReorderMode
from repro.errors import BudgetExceeded, QueryError
from repro.server import (
    AdmissionController,
    ErrorCode,
    FairScheduler,
    PlanCache,
    ProtocolError,
    ServerConfig,
    Session,
    TokenBucket,
    decode_request,
    normalize_sql,
    template_signature,
)
from repro.server.admission import SHED_NONE, SHED_SERIAL, SHED_STATIC
from repro.server.plancache import HIT, MISS, WAIT
from repro.server.protocol import (
    encode_response,
    error_response,
    ok_response,
    parse_query_request,
)
from repro.server.server import EngineResult, QueryServer
from repro.server.session import PendingQuery
from repro.robustness.limits import CancellationToken


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_decode_valid_query(self):
        msg = decode_request(b'{"op": "query", "sql": "SELECT 1", "id": 3}')
        assert msg["op"] == "query"
        request = parse_query_request(msg)
        assert request.sql == "SELECT 1"
        assert request.request_id == 3
        assert request.mode is ReorderMode.BOTH

    @pytest.mark.parametrize(
        "line",
        [
            b"not json",
            b"[1, 2]",
            b'"just a string"',
            b'{"sql": "SELECT 1"}',  # missing op
            b'{"op": ""}',
            b"\xff\xfe",  # not UTF-8
        ],
    )
    def test_decode_rejects_malformed(self, line):
        with pytest.raises(ProtocolError):
            decode_request(line)

    @pytest.mark.parametrize(
        "msg",
        [
            {"op": "query"},  # no sql
            {"op": "query", "sql": "  "},
            {"op": "query", "sql": "SELECT 1", "mode": "sideways"},
            {"op": "query", "sql": "SELECT 1", "timeout_ms": -5},
            {"op": "query", "sql": "SELECT 1", "timeout_ms": "soon"},
            {"op": "query", "sql": "SELECT 1", "max_rows": 0},
            {"op": "query", "sql": "SELECT 1", "max_rows": True},
            {"op": "query", "sql": "SELECT 1", "workers": 0},
        ],
    )
    def test_parse_rejects_bad_fields(self, msg):
        with pytest.raises(ProtocolError):
            parse_query_request(msg)

    def test_responses_round_trip_as_json_lines(self):
        ok = ok_response(7, [(1, "a")], {"work_units": 2.0})
        err = error_response(8, ErrorCode.RATE_LIMITED, "slow down")
        for payload in (ok, err):
            line = encode_response(payload)
            assert line.endswith(b"\n")
            assert json.loads(line) == json.loads(json.dumps(payload))
        assert ok["row_count"] == 1 and ok["rows"] == [[1, "a"]]
        assert err["code"] == "RATE_LIMITED"

    def test_normalize_collapses_whitespace_outside_literals(self):
        a = "SELECT *  FROM Car c\n WHERE c.make =  'a  b'"
        b = "SELECT * FROM Car c WHERE c.make = 'a  b'"
        assert normalize_sql(a) == normalize_sql(b)
        # Literals are preserved — different constants, different keys.
        assert normalize_sql("... make = 'Mazda'") != normalize_sql(
            "... make = 'Honda'"
        )

    def test_template_signature_strips_literals_and_numbers(self):
        sig = template_signature(
            "SELECT * FROM Car c WHERE c.make = 'Mazda' AND c.year > 1999"
        )
        assert "'Mazda'" not in sig and "1999" not in sig
        assert sig == template_signature(
            "SELECT *   FROM Car c WHERE c.make = 'Honda' AND c.year > 2004"
        )


# ---------------------------------------------------------------------------
# Token bucket
# ---------------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=lambda: now[0])
        assert [bucket.try_take() for _ in range(4)] == [
            True, True, True, False,
        ]
        now[0] += 0.5  # one token refilled at 2/s
        assert bucket.try_take() is True
        assert bucket.try_take() is False

    def test_refill_caps_at_burst(self):
        now = [0.0]
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=lambda: now[0])
        now[0] += 60.0
        assert [bucket.try_take() for _ in range(3)] == [True, True, False]

    def test_zero_rate_disables(self):
        bucket = TokenBucket(rate=0.0, burst=1.0)
        assert all(bucket.try_take() for _ in range(100))


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------
class TestPlanCache:
    def test_hit_miss_and_generation_invalidation(self):
        cache = PlanCache(capacity=4)
        calls = []

        def planner(sql):
            calls.append(sql)
            return ("plan", sql)

        plan, outcome = cache.get_or_plan("SELECT  1", ("g1",), planner)
        assert outcome == MISS and plan == ("plan", "SELECT  1")
        # Whitespace-normalized key: same statement, different spacing.
        plan2, outcome2 = cache.get_or_plan("SELECT 1", ("g1",), planner)
        assert outcome2 == HIT and plan2 == plan and len(calls) == 1
        # Catalog generation changed: entry invalidated, replanned.
        _, outcome3 = cache.get_or_plan("SELECT 1", ("g2",), planner)
        assert outcome3 == MISS and len(calls) == 2
        assert cache.stats()["invalidations"] == 1

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        planner = lambda sql: sql
        cache.get_or_plan("a", ("g",), planner)
        cache.get_or_plan("b", ("g",), planner)
        cache.get_or_plan("a", ("g",), planner)  # refresh a
        cache.get_or_plan("c", ("g",), planner)  # evicts b
        assert cache.get_or_plan("a", ("g",), planner)[1] == HIT
        assert cache.get_or_plan("b", ("g",), planner)[1] == MISS
        assert cache.stats()["evictions"] >= 1

    def test_zero_capacity_disables(self):
        cache = PlanCache(capacity=0)
        calls = []
        planner = lambda sql: calls.append(sql) or sql
        assert cache.get_or_plan("a", ("g",), planner)[1] == MISS
        assert cache.get_or_plan("a", ("g",), planner)[1] == MISS
        assert len(calls) == 2

    def test_single_flight_one_planner_call_for_concurrent_misses(self):
        cache = PlanCache(capacity=8)
        release = threading.Event()
        calls = []

        def slow_planner(sql):
            calls.append(sql)
            assert release.wait(5.0)
            return ("plan", sql)

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(
                    cache.get_or_plan("q", ("g",), slow_planner)
                )
            )
            for _ in range(5)
        ]
        for t in threads:
            t.start()
        # Give every thread time to reach leader/waiter selection.
        deadline = time.time() + 5.0
        while len(calls) == 0 and time.time() < deadline:
            time.sleep(0.005)
        release.set()
        for t in threads:
            t.join(timeout=5.0)
        assert len(calls) == 1, "planner must run once for the stampede"
        assert len(results) == 5
        assert all(plan == ("plan", "q") for plan, _ in results)
        outcomes = sorted(outcome for _, outcome in results)
        assert outcomes.count(MISS) == 1 and outcomes.count(WAIT) == 4

    def test_failed_leader_promotes_a_waiter(self):
        cache = PlanCache(capacity=8)
        attempts = []
        barrier = threading.Barrier(2, timeout=5.0)

        def flaky_planner(sql):
            attempts.append(sql)
            if len(attempts) == 1:
                barrier.wait()  # ensure the waiter queued behind us
                raise QueryError("transient planner failure")
            return "good plan"

        results, errors = [], []

        def leader():
            try:
                results.append(cache.get_or_plan("q", ("g",), flaky_planner))
            except QueryError as error:
                errors.append(error)

        def waiter():
            barrier.wait()
            results.append(cache.get_or_plan("q", ("g",), flaky_planner))

        threads = [threading.Thread(target=leader), threading.Thread(target=waiter)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5.0)
        assert len(errors) == 1, "the failing leader sees its own error"
        assert results == [("good plan", MISS)], "the waiter retried as leader"

    def test_waiter_replans_when_generation_differs_from_leader(self):
        """A waiter admitted under a newer catalog generation must not
        reuse the in-flight leader's plan — it replans as a new leader."""
        cache = PlanCache(capacity=8)
        release = threading.Event()
        calls = []

        def old_planner(sql):
            calls.append("g1")
            assert release.wait(5.0)
            return "g1 plan"

        def new_planner(sql):
            calls.append("g2")
            return "g2 plan"

        results = {}

        def leader():
            results["leader"] = cache.get_or_plan("q", ("g1",), old_planner)

        def waiter():
            # Queue behind the g1 leader, but under generation g2.
            deadline = time.time() + 5.0
            while not calls and time.time() < deadline:
                time.sleep(0.005)
            results["waiter"] = cache.get_or_plan("q", ("g2",), new_planner)

        threads = [threading.Thread(target=leader), threading.Thread(target=waiter)]
        for t in threads:
            t.start()
        time.sleep(0.05)  # let the waiter block on the leader's flight
        release.set()
        for t in threads:
            t.join(timeout=5.0)
        assert results["leader"] == ("g1 plan", MISS)
        assert results["waiter"] == ("g2 plan", MISS), (
            "waiter must replan under its own generation, not reuse g1"
        )
        # The g2 plan is what survives for the current generation.
        assert cache.get_or_plan("q", ("g2",), new_planner)[1] == HIT


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------
def make_session(**bucket_kwargs) -> Session:
    bucket = TokenBucket(**bucket_kwargs) if bucket_kwargs else TokenBucket(0, 8)
    return Session(peer="test", bucket=bucket)


class TestAdmission:
    def test_admits_until_global_queue_full(self):
        config = ServerConfig(max_queue_depth=2, max_queue_per_session=8)
        admission = AdmissionController(config)
        session = make_session()
        assert admission.submit(session).admitted
        assert admission.submit(session).admitted
        decision = admission.submit(session)
        assert not decision.admitted
        assert decision.reject_code == ErrorCode.REJECTED_OVERLOAD
        admission.on_dequeued()
        assert admission.submit(session).admitted

    def test_per_session_cap(self):
        config = ServerConfig(max_queue_depth=32, max_queue_per_session=1)
        admission = AdmissionController(config)
        session = make_session()
        assert admission.submit(session).admitted
        session.queue.append(object())  # scheduler would do this
        decision = admission.submit(session)
        assert not decision.admitted
        assert decision.reject_code == ErrorCode.REJECTED_OVERLOAD
        # Another session is unaffected.
        assert admission.submit(make_session()).admitted

    def test_rate_limit_rejection(self):
        now = [0.0]
        config = ServerConfig(rate_limit_qps=1.0, rate_limit_burst=1.0)
        admission = AdmissionController(config)
        session = Session(
            peer="t", bucket=TokenBucket(1.0, 1.0, clock=lambda: now[0])
        )
        assert admission.submit(session).admitted
        decision = admission.submit(session)
        assert decision.reject_code == ErrorCode.RATE_LIMITED
        now[0] += 1.0
        assert admission.submit(session).admitted

    def test_overload_rejection_does_not_consume_rate_token(self):
        """Queue-full rejections must not also burn a rate-limit token,
        or retrying clients get double-penalized during overload."""
        now = [0.0]
        config = ServerConfig(
            max_queue_depth=1, rate_limit_qps=1.0, rate_limit_burst=1.0
        )
        admission = AdmissionController(config)
        session = Session(
            peer="t", bucket=TokenBucket(1.0, 1.0, clock=lambda: now[0])
        )
        assert admission.submit(session).admitted  # queue full, token spent
        now[0] += 1.0  # the single token refills
        decision = admission.submit(session)
        assert decision.reject_code == ErrorCode.REJECTED_OVERLOAD
        admission.on_dequeued()
        assert admission.submit(session).admitted, (
            "the overload rejection must have left the token untouched"
        )

    def test_draining_rejects_everything(self):
        admission = AdmissionController(ServerConfig())
        admission.draining = True
        decision = admission.submit(make_session())
        assert decision.reject_code == ErrorCode.SHUTTING_DOWN

    def test_shed_ladder_from_queue_pressure(self):
        config = ServerConfig(
            max_queue_depth=10, shed_serial_at=0.3, shed_static_at=0.6
        )
        admission = AdmissionController(config)
        assert admission.shed_level() == SHED_NONE
        admission.queued = 3
        assert admission.shed_level() == SHED_SERIAL
        admission.queued = 6
        assert admission.shed_level() == SHED_STATIC

    def test_apply_shed_strips_parallelism_then_adaptivity(self):
        config = ServerConfig(engine_workers=4, engine_batch_size=128)
        admission = AdmissionController(config)
        request = parse_query_request(
            {"op": "query", "sql": "SELECT 1", "mode": "both", "workers": 4}
        )
        full = admission.apply_shed(request, SHED_NONE)
        assert full.mode is ReorderMode.BOTH and full.workers == 4
        assert full.batched and full.batch_size == 128
        assert full.monitor_granularity == "chunk"
        serial = admission.apply_shed(request, SHED_SERIAL)
        assert serial.mode is ReorderMode.BOTH and serial.workers == 1
        static = admission.apply_shed(request, SHED_STATIC)
        assert static.mode is ReorderMode.NONE and static.workers == 1
        assert static.monitor_granularity == "exact"
        assert admission.shed_totals == {SHED_SERIAL: 1, SHED_STATIC: 1}

    def test_workers_clamped_to_server_grant(self):
        admission = AdmissionController(ServerConfig(engine_workers=2))
        request = parse_query_request(
            {"op": "query", "sql": "SELECT 1", "workers": 8}
        )
        assert admission.apply_shed(request, SHED_NONE).workers == 2

    def test_build_limits_clamps_to_server_maxima(self):
        config = ServerConfig(
            default_timeout_ms=1000.0,
            max_timeout_ms=2000.0,
            default_max_rows=10,
            max_max_rows=20,
        )
        admission = AdmissionController(config)
        request = parse_query_request(
            {
                "op": "query",
                "sql": "SELECT 1",
                "timeout_ms": 99_999,
                "max_rows": 999,
            }
        )
        applied = admission.apply_shed(request, SHED_NONE)
        limits, token = admission.build_limits(request, applied)
        assert limits.timeout_seconds == pytest.approx(2.0)
        assert limits.max_rows == 20
        assert limits.cancellation is token and not token.cancelled
        # Defaults apply when the client asks for nothing.
        bare = parse_query_request({"op": "query", "sql": "SELECT 1"})
        limits, _ = admission.build_limits(
            bare, admission.apply_shed(bare, SHED_NONE)
        )
        assert limits.timeout_seconds == pytest.approx(1.0)
        assert limits.max_rows == 10

    def test_build_limits_reuses_admission_token(self):
        admission = AdmissionController(ServerConfig())
        request = parse_query_request({"op": "query", "sql": "SELECT 1"})
        token = CancellationToken()
        limits, returned = admission.build_limits(
            request, admission.apply_shed(request, SHED_NONE), token=token
        )
        assert returned is token and limits.cancellation is token

    def test_parallel_grant_drops_row_budget_keeps_deadline(self):
        admission = AdmissionController(ServerConfig(engine_workers=4))
        request = parse_query_request(
            {"op": "query", "sql": "SELECT 1", "workers": 4, "max_rows": 5}
        )
        applied = admission.apply_shed(request, SHED_NONE)
        assert applied.workers == 4
        limits, _ = admission.build_limits(request, applied)
        assert limits.max_rows is None and limits.max_work_units is None
        assert limits.timeout_seconds is not None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServerConfig(max_concurrency=0)
        with pytest.raises(ValueError):
            ServerConfig(shed_serial_at=0.8, shed_static_at=0.2)
        with pytest.raises(ValueError):
            ServerConfig(default_timeout_ms=90_000.0, max_timeout_ms=60_000.0)


# ---------------------------------------------------------------------------
# Fair scheduler
# ---------------------------------------------------------------------------
def pending_for(session: Session, tag: str) -> PendingQuery:
    request = parse_query_request({"op": "query", "sql": f"SELECT '{tag}'"})
    return PendingQuery(
        request=request,
        session=session,
        token=CancellationToken(),
        enqueued_at=0.0,
    )


class TestFairScheduler:
    def test_round_robin_across_sessions(self):
        async def scenario():
            scheduler = FairScheduler()
            chatty, quiet = make_session(), make_session()
            for i in range(3):
                await scheduler.enqueue(pending_for(chatty, f"c{i}"))
            await scheduler.enqueue(pending_for(quiet, "q0"))
            order = [(await scheduler.next()).request.sql for _ in range(4)]
            return order

        order = asyncio.run(scenario())
        # The quiet session's single query is served second, not fourth.
        assert order == [
            "SELECT 'c0'", "SELECT 'q0'", "SELECT 'c1'", "SELECT 'c2'",
        ]

    def test_skips_disconnected_sessions(self):
        async def scenario():
            scheduler = FairScheduler()
            gone, alive = make_session(), make_session()
            await scheduler.enqueue(pending_for(gone, "dead"))
            await scheduler.enqueue(pending_for(alive, "live"))
            gone.disconnect()
            first = await scheduler.next()
            await scheduler.stop()
            rest = await scheduler.next()
            return first, rest

        first, rest = asyncio.run(scenario())
        assert first.request.sql == "SELECT 'live'"
        assert rest is None

    def test_next_blocks_until_work_arrives(self):
        async def scenario():
            scheduler = FairScheduler()
            session = make_session()

            async def feeder():
                await asyncio.sleep(0.01)
                await scheduler.enqueue(pending_for(session, "late"))

            feed = asyncio.create_task(feeder())
            pending = await asyncio.wait_for(scheduler.next(), timeout=2.0)
            await feed
            return pending.request.sql

        assert asyncio.run(scenario()) == "SELECT 'late'"

    def test_remove_session_drops_queued_work(self):
        async def scenario():
            scheduler = FairScheduler()
            session = make_session()
            await scheduler.enqueue(pending_for(session, "a"))
            await scheduler.enqueue(pending_for(session, "b"))
            dropped = await scheduler.remove_session(session)
            await scheduler.stop()
            return dropped, await scheduler.next()

        dropped, leftover = asyncio.run(scenario())
        assert dropped == 2 and leftover is None


# ---------------------------------------------------------------------------
# Server integration over a controllable fake engine
# ---------------------------------------------------------------------------
class BlockingEngine:
    """Engine double: every execution blocks until released.

    ``execute`` polls its release event so a cancelled token aborts the
    "query" just like the real executor's safe-point checks do.
    """

    def __init__(self) -> None:
        self.release = threading.Event()
        self.started = threading.Semaphore(0)
        self.calls: list = []

    def execute(self, sql, config, limits):
        self.calls.append((sql, config, limits))
        self.started.release()
        token = limits.cancellation
        while not self.release.wait(timeout=0.005):
            if token is not None and token.cancelled:
                raise BudgetExceeded(
                    f"query cancelled: {token.reason}",
                    rows_emitted=1,
                    work_units=2.0,
                    elapsed_seconds=0.01,
                    driving_rows=3,
                )
        if sql == "SELECT 'boom'":
            raise QueryError("synthetic failure")
        return EngineResult(
            rows=[(sql,)],
            work_units=1.0,
            wall_ms=0.5,
            switches=0,
            degraded=False,
            workers=config.workers,
            plan_cache="off",
        )


class ServerClient:
    """Minimal NDJSON test client."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, port: int) -> "ServerClient":
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        return cls(reader, writer)

    async def send(self, **payload) -> None:
        self.writer.write((json.dumps(payload) + "\n").encode())
        await self.writer.drain()

    async def recv(self) -> dict:
        line = await asyncio.wait_for(self.reader.readline(), timeout=10.0)
        assert line, "server closed the connection unexpectedly"
        return json.loads(line)

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def run_server_scenario(config: ServerConfig, scenario):
    """Start a QueryServer over a BlockingEngine and run *scenario*."""
    engine = BlockingEngine()

    async def main():
        server = QueryServer(None, config, engine=engine)
        await server.start()
        try:
            return await asyncio.wait_for(
                scenario(server, engine), timeout=30.0
            )
        finally:
            engine.release.set()
            await server.shutdown(grace=0.2)

    return asyncio.run(main())


def tiny_config(**overrides) -> ServerConfig:
    defaults = dict(port=0, max_concurrency=1, max_queue_depth=2)
    defaults.update(overrides)
    return ServerConfig(**defaults)


class TestServerIntegration:
    def test_ping_stats_and_unknown_op(self):
        async def scenario(server, engine):
            client = await ServerClient.connect(server.port)
            await client.send(op="ping", id=1)
            pong = await client.recv()
            await client.send(op="stats", id=2)
            stats = await client.recv()
            await client.send(op="mystery", id=3)
            unknown = await client.recv()
            await client.close()
            return pong, stats, unknown

        pong, stats, unknown = run_server_scenario(tiny_config(), scenario)
        assert pong == {"id": 1, "status": "ok", "pong": True}
        assert stats["status"] == "ok"
        assert stats["stats"]["admission"]["max_concurrency"] == 1
        assert unknown["code"] == ErrorCode.BAD_REQUEST

    def test_overload_rejected_explicitly_and_promptly(self):
        """Queue full → REJECTED_OVERLOAD arrives while a query still runs."""

        async def scenario(server, engine):
            client = await ServerClient.connect(server.port)
            # One executing + two queued fills the server entirely. Wait
            # for execution to start before filling the queue, so the
            # queue slots are definitely free for ids 1 and 2.
            await client.send(op="query", id=0, sql="SELECT 0")
            assert await asyncio.to_thread(engine.started.acquire, timeout=5.0)
            for i in (1, 2):
                await client.send(op="query", id=i, sql=f"SELECT {i}")
            await client.send(op="query", id=99, sql="SELECT 99")
            rejection = await client.recv()  # answered while id 0 blocks
            engine.release.set()
            answered = sorted([(await client.recv())["id"] for _ in range(3)])
            await client.close()
            return rejection, answered

        rejection, answered = run_server_scenario(tiny_config(), scenario)
        assert rejection["id"] == 99
        assert rejection["status"] == "error"
        assert rejection["code"] == ErrorCode.REJECTED_OVERLOAD
        assert answered == [0, 1, 2]

    def test_disconnect_cancels_in_flight_and_drops_queued(self):
        async def scenario(server, engine):
            victim = await ServerClient.connect(server.port)
            await victim.send(op="query", id=1, sql="SELECT 'blocked'")
            await victim.send(op="query", id=2, sql="SELECT 'queued'")
            assert await asyncio.to_thread(engine.started.acquire, timeout=5.0)
            session = next(iter(server.sessions.values()))
            tokens = list(session.in_flight)
            await victim.close()  # disconnect while id=1 executes
            # The in-flight token must latch without the engine finishing.
            deadline = asyncio.get_running_loop().time() + 5.0
            while not tokens[0].cancelled:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.005)
            # The worker slot must come back for other clients.
            other = await ServerClient.connect(server.port)
            await other.send(op="query", id=3, sql="SELECT 'after'")
            engine.release.set()
            response = await other.recv()
            await other.send(op="stats", id=4)
            stats = (await other.recv())["stats"]
            await other.close()
            return tokens[0], response, stats

        token, response, stats = run_server_scenario(tiny_config(), scenario)
        assert token.cancelled and "disconnected" in token.reason
        assert response == {
            "id": 3, "status": "ok", "rows": [["SELECT 'after'"]],
            "row_count": 1, "stats": response["stats"],
        }
        assert stats["queries"]["cancelled_total"] == 1
        assert stats["queries"]["dropped_on_disconnect_total"] == 1

    def test_rate_limited_session_gets_typed_rejection(self):
        config = tiny_config(rate_limit_qps=0.001, rate_limit_burst=1.0)

        async def scenario(server, engine):
            engine.release.set()
            client = await ServerClient.connect(server.port)
            await client.send(op="query", id=1, sql="SELECT 'a'")
            first = await client.recv()
            await client.send(op="query", id=2, sql="SELECT 'b'")
            second = await client.recv()
            await client.close()
            return first, second

        first, second = run_server_scenario(config, scenario)
        assert first["status"] == "ok"
        assert second["status"] == "error"
        assert second["code"] == ErrorCode.RATE_LIMITED

    def test_worker_slot_survives_fault_outside_run_one_guard(self):
        """A fault before _run_one's own try block (here: apply_shed) must
        answer INTERNAL and keep the slot serving, not kill it silently."""

        async def scenario(server, engine):
            engine.release.set()
            original = server.admission.apply_shed
            exploded = []

            def exploding_apply_shed(request, shed):
                if not exploded:
                    exploded.append(True)
                    raise RuntimeError("synthetic shed fault")
                return original(request, shed)

            server.admission.apply_shed = exploding_apply_shed
            client = await ServerClient.connect(server.port)
            await client.send(op="query", id=1, sql="SELECT 'a'")
            first = await client.recv()
            # max_concurrency=1: only a surviving slot can answer this.
            await client.send(op="query", id=2, sql="SELECT 'b'")
            second = await client.recv()
            await client.close()
            return first, second

        first, second = run_server_scenario(tiny_config(), scenario)
        assert first["status"] == "error"
        assert first["code"] == ErrorCode.INTERNAL
        assert "synthetic shed fault" in first["error"]
        assert second["status"] == "ok" and second["id"] == 2

    def test_shutdown_bounded_even_with_uncancellable_query(self):
        """Drain must be bounded by the grace window even when an engine
        thread ignores cancellation between cooperative safe points."""

        class StuckEngine:
            def __init__(self):
                self.release = threading.Event()
                self.started = threading.Semaphore(0)

            def execute(self, sql, config, limits):
                self.started.release()
                assert self.release.wait(30.0)  # never checks the token
                return EngineResult(
                    rows=[], work_units=0.0, wall_ms=0.0, switches=0,
                    degraded=False, workers=1, plan_cache="off",
                )

        engine = StuckEngine()

        async def main():
            server = QueryServer(None, tiny_config(), engine=engine)
            await server.start()
            client = await ServerClient.connect(server.port)
            await client.send(op="query", id=1, sql="SELECT 'stuck'")
            assert await asyncio.to_thread(engine.started.acquire, timeout=5.0)
            start = time.perf_counter()
            await asyncio.wait_for(server.shutdown(grace=0.2), timeout=15.0)
            elapsed = time.perf_counter() - start
            engine.release.set()  # let the executor thread finish
            await client.close()
            return elapsed

        elapsed = asyncio.run(main())
        assert elapsed < 10.0, "shutdown must not wait out the stuck query"

    def test_shed_levels_applied_from_queue_pressure(self):
        config = tiny_config(
            max_queue_depth=4,
            max_queue_per_session=4,
            shed_serial_at=0.25,
            shed_static_at=0.5,
            engine_workers=2,
        )

        async def scenario(server, engine):
            client = await ServerClient.connect(server.port)
            for i in range(4):
                await client.send(
                    op="query", id=i, sql=f"SELECT {i}", workers=2
                )
            assert await asyncio.to_thread(engine.started.acquire, timeout=5.0)
            engine.release.set()
            responses = {}
            for _ in range(4):
                response = await client.recv()
                responses[response["id"]] = response
            await client.close()
            return responses

        responses = run_server_scenario(config, scenario)
        sheds = [responses[i]["stats"]["shed"] for i in range(4)]
        modes = [responses[i]["stats"]["mode"] for i in range(4)]
        # Later dequeues saw higher pressure: the ladder must have engaged
        # at least once, and static shed forces the static plan.
        assert SHED_STATIC in sheds
        for shed, mode in zip(sheds, modes):
            if shed == SHED_STATIC:
                assert mode == "none"

    def test_engine_errors_map_to_typed_responses(self):
        async def scenario(server, engine):
            engine.release.set()
            client = await ServerClient.connect(server.port)
            await client.send(op="query", id=1, sql="SELECT 'boom'")
            sql_error = await client.recv()
            await client.send(op="query", id=2, sql="SELECT 'fine'")
            fine = await client.recv()
            await client.close()
            return sql_error, fine

        sql_error, fine = run_server_scenario(tiny_config(), scenario)
        assert sql_error["code"] == ErrorCode.SQL_ERROR
        assert "synthetic failure" in sql_error["error"]
        assert fine["status"] == "ok", "the slot survives an engine error"

    def test_budget_exceeded_carries_partial_progress(self):
        config = tiny_config(default_timeout_ms=50.0)

        async def scenario(server, engine):
            client = await ServerClient.connect(server.port)
            await client.send(op="query", id=1, sql="SELECT 'slow'")
            assert await asyncio.to_thread(engine.started.acquire, timeout=5.0)
            # Cancel via the session token — same path a deadline takes.
            session = next(iter(server.sessions.values()))
            for token in session.in_flight:
                token.cancel("test deadline")
            response = await client.recv()
            await client.close()
            return response

        response = run_server_scenario(config, scenario)
        assert response["status"] == "error"
        assert response["code"] == ErrorCode.CANCELLED
        assert response["progress"]["rows_emitted"] == 1
        assert response["progress"]["driving_rows"] == 3

    def test_drain_rejects_new_work_and_exits_cleanly(self):
        async def scenario(server, engine):
            client = await ServerClient.connect(server.port)
            await client.send(op="query", id=1, sql="SELECT 'running'")
            assert await asyncio.to_thread(engine.started.acquire, timeout=5.0)
            drain = asyncio.create_task(server.shutdown(grace=5.0))
            # Draining state is set synchronously at shutdown start.
            await asyncio.sleep(0.05)
            await client.send(op="query", id=2, sql="SELECT 'late'")
            rejected = await client.recv()
            engine.release.set()
            finished = await client.recv()
            await drain
            await client.close()
            return rejected, finished, server.exit_code

        rejected, finished, exit_code = run_server_scenario(
            tiny_config(), scenario
        )
        assert rejected["code"] == ErrorCode.SHUTTING_DOWN
        assert finished == {
            "id": 1, "status": "ok", "rows": [["SELECT 'running'"]],
            "row_count": 1, "stats": finished["stats"],
        }
        assert exit_code == 0

    def test_drain_cancels_stragglers_after_grace(self):
        async def scenario(server, engine):
            client = await ServerClient.connect(server.port)
            await client.send(op="query", id=1, sql="SELECT 'stuck'")
            assert await asyncio.to_thread(engine.started.acquire, timeout=5.0)
            await server.shutdown(grace=0.05)  # never released: must cancel
            response = await client.recv()
            await client.close()
            return response

        response = run_server_scenario(tiny_config(), scenario)
        assert response["status"] == "error"
        assert response["code"] == ErrorCode.CANCELLED

    def test_stats_document_validates(self):
        """The live stats document passes the CI validator's schema."""
        import importlib.util
        import pathlib

        spec = importlib.util.spec_from_file_location(
            "validate_stats",
            pathlib.Path(__file__).resolve().parent.parent
            / "scripts" / "validate_stats.py",
        )
        validator = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(validator)

        async def scenario(server, engine):
            engine.release.set()
            client = await ServerClient.connect(server.port)
            for i in range(5):
                await client.send(op="query", id=i, sql=f"SELECT {i}")
            for _ in range(5):
                await client.recv()
            await client.send(op="stats", id=99)
            stats = (await client.recv())["stats"]
            await client.close()
            return stats

        stats = run_server_scenario(
            tiny_config(max_queue_depth=8, max_queue_per_session=8), scenario
        )
        notes = validator.validate(stats)  # raises on violation
        assert any("5 queries" in note for note in notes)
