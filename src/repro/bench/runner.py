"""Workload runner: execute queries under several reorder modes and measure.

The primary metric is deterministic **work units** (see
:mod:`repro.storage.counters`); wall-clock seconds are recorded as a
secondary metric. One :class:`QueryMeasurement` per (query, mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.config import AdaptiveConfig, ReorderMode
from repro.db import Database
from repro.dmv.templates import WorkloadQuery


@dataclass(frozen=True)
class QueryMeasurement:
    """Measurements of one query under one mode."""

    qid: str
    template: int
    mode: str
    work: float
    execution_work: float
    adaptation_work: float
    wall_seconds: float
    rows: int
    inner_reorders: int
    driving_switches: int
    order_changed: bool

    @property
    def total_switches(self) -> int:
        return self.inner_reorders + self.driving_switches


@dataclass
class WorkloadResult:
    """All measurements for one workload run, indexed by (qid, mode)."""

    measurements: list[QueryMeasurement] = field(default_factory=list)

    def add(self, measurement: QueryMeasurement) -> None:
        self.measurements.append(measurement)

    def by_mode(self, mode: str) -> dict[str, QueryMeasurement]:
        return {m.qid: m for m in self.measurements if m.mode == mode}

    def modes(self) -> list[str]:
        seen: list[str] = []
        for measurement in self.measurements:
            if measurement.mode not in seen:
                seen.append(measurement.mode)
        return seen

    def templates(self) -> list[int]:
        return sorted({m.template for m in self.measurements})


def standard_configs(
    history_window: int = 1000, check_frequency: int = 10
) -> dict[str, AdaptiveConfig]:
    """The four Sec 5 measurement modes."""
    return {
        "static": AdaptiveConfig(mode=ReorderMode.NONE),
        "inner-only": AdaptiveConfig(
            mode=ReorderMode.INNER_ONLY,
            history_window=history_window,
            check_frequency=check_frequency,
        ),
        "driving-only": AdaptiveConfig(
            mode=ReorderMode.DRIVING_ONLY,
            history_window=history_window,
            check_frequency=check_frequency,
        ),
        "both": AdaptiveConfig(
            mode=ReorderMode.BOTH,
            history_window=history_window,
            check_frequency=check_frequency,
        ),
    }


def run_workload(
    db: Database,
    workload: Iterable[WorkloadQuery],
    configs: Mapping[str, AdaptiveConfig],
    verify_against: str | None = "static",
) -> WorkloadResult:
    """Run every query under every mode.

    When *verify_against* names one of the modes, every other mode's result
    rows are checked against it (adaptation must never change the answer);
    a mismatch raises ``AssertionError`` — a benchmark that produces wrong
    answers must fail loudly, not report numbers.
    """
    result = WorkloadResult()
    ordered_configs = dict(configs)
    if verify_against is not None and verify_against in ordered_configs:
        # The reference mode must run first so every other mode is checked.
        reference_config = ordered_configs.pop(verify_against)
        ordered_configs = {verify_against: reference_config, **ordered_configs}
    for query in workload:
        reference: list | None = None
        for mode, config in ordered_configs.items():
            outcome = db.execute(query.sql, config)
            if verify_against is not None:
                if mode == verify_against:
                    reference = sorted(outcome.rows)
                elif reference is not None:
                    assert sorted(outcome.rows) == reference, (
                        f"{query.qid}: mode {mode!r} changed the result set"
                    )
            result.add(
                QueryMeasurement(
                    qid=query.qid,
                    template=query.template,
                    mode=mode,
                    work=outcome.stats.total_work,
                    execution_work=outcome.stats.execution_work,
                    adaptation_work=outcome.stats.adaptation_work,
                    wall_seconds=outcome.stats.wall_seconds,
                    rows=len(outcome.rows),
                    inner_reorders=outcome.stats.inner_reorders,
                    driving_switches=outcome.stats.driving_switches,
                    order_changed=outcome.stats.order_changed,
                )
            )
    return result
