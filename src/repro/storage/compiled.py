"""An expression→closure mini-compiler for local predicate trees.

``LocalPredicate.bind`` already produces per-predicate closures, but each
one pays a Python frame per predicate *node*: a disjunction of three
comparisons costs four calls per row. This module compiles a whole
predicate tree into **one** specialized closure by generating source text
for the exact test expression and ``eval``-ing it once per plan — the
classic expression-compilation technique, scoped to the handful of shapes
``repro.query.predicates`` can produce.

Two compilation targets share the same tree walk:

* :func:`compile_row_test` — a ``row -> bool`` closure semantically
  identical to ``predicate.bind(schema)`` (same NULL handling, same
  short-circuit order, same ``TypeError`` on incomparable constants).
  Returns ``None`` for unsupported shapes; callers fall back to the
  interpreter (``bind``), so an unknown predicate subclass is never
  mis-compiled.
* :func:`vector_spec` — a normalized, backend-agnostic description of the
  tree (``("cmp", slot, op, value)`` etc.) that the columnar backend turns
  into whole-column boolean masks. Again ``None`` means "not vectorizable,
  use the row interpreter".

Only *exact* predicate classes are compiled (``type(p) is Comparison``,
not ``isinstance``): a subclass may override ``bind`` with different
semantics, and the compiler must never win an argument with it.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.query.predicates import (
    Between,
    Comparison,
    Disjunction,
    InList,
    IsNull,
    LocalPredicate,
)
from repro.storage.schema import TableSchema
from repro.storage.table import Row

RowTest = Callable[[Row], bool]

#: Op.name -> Python comparison operator source text.
_OP_SYMBOLS = {
    "EQ": "==",
    "NE": "!=",
    "LT": "<",
    "LE": "<=",
    "GT": ">",
    "GE": ">=",
}


class _Unsupported(Exception):
    """Internal: the tree contains a shape the compiler does not handle."""


def _emit(predicate: LocalPredicate, schema: TableSchema, consts: list) -> str:
    """Return a Python boolean expression over ``row`` for *predicate*.

    Constants are appended to *consts* and referenced as ``_k<i>`` so the
    generated source never needs ``repr`` round-trips (values keep object
    identity — important for float bit-exactness and large ints).
    """
    kind = type(predicate)
    if kind is Comparison:
        symbol = _OP_SYMBOLS.get(predicate.op.name)
        if symbol is None:
            raise _Unsupported(predicate.op)
        pos = schema.position_of(predicate.column)
        name = f"_k{len(consts)}"
        consts.append(predicate.value)
        cell = f"_c{len(consts)}"
        return (
            f"(({cell} := row[{pos}]) is not None and {cell} {symbol} {name})"
        )
    if kind is Between:
        pos = schema.position_of(predicate.column)
        low = f"_k{len(consts)}"
        consts.append(predicate.low)
        high = f"_k{len(consts)}"
        consts.append(predicate.high)
        cell = f"_c{len(consts)}"
        return (
            f"(({cell} := row[{pos}]) is not None"
            f" and {low} <= {cell} <= {high})"
        )
    if kind is InList:
        pos = schema.position_of(predicate.column)
        name = f"_k{len(consts)}"
        # bind() membership-tests against a set; keep the identical
        # container semantics (NULL cells are *not* guarded — None can be
        # a member).
        consts.append(set(predicate.values))
        return f"(row[{pos}] in {name})"
    if kind is IsNull:
        pos = schema.position_of(predicate.column)
        if predicate.negated:
            return f"(row[{pos}] is not None)"
        return f"(row[{pos}] is None)"
    if kind is Disjunction:
        terms = [_emit(term, schema, consts) for term in predicate.terms]
        return "(" + " or ".join(terms) + ")"
    raise _Unsupported(type(predicate).__name__)


def compile_row_test(
    predicate: LocalPredicate, schema: TableSchema
) -> RowTest | None:
    """Compile *predicate* into one specialized ``row -> bool`` closure.

    Returns ``None`` when the tree contains an unsupported shape; the
    caller must then fall back to ``predicate.bind(schema)``. The compiled
    closure is observably identical to the interpreter: NULL never
    satisfies a comparison or BETWEEN, IN-lists test raw set membership,
    disjunctions short-circuit left to right, and incomparable constant
    types raise the same ``TypeError`` at the same evaluation point.
    """
    consts: list = []
    try:
        expression = _emit(predicate, schema, consts)
    except _Unsupported:
        return None
    namespace: dict[str, Any] = {
        f"_k{i}": value for i, value in enumerate(consts)
    }
    namespace["__builtins__"] = {}
    source = f"lambda row: {expression}"
    test = eval(compile(source, "<compiled-predicate>", "eval"), namespace)
    test.source = source  # debugging / property-test introspection
    return test


def vector_spec(
    predicate: LocalPredicate, schema: TableSchema
) -> tuple | None:
    """Normalize *predicate* for columnar (whole-column) evaluation.

    Returns one of::

        ("cmp", slot, op_name, value)
        ("between", slot, low, high)
        ("in", slot, values_tuple)
        ("isnull", slot, negated)
        ("or", (child_spec, ...))

    or ``None`` when any node is an unsupported shape. The spec carries
    tuple-slot positions (not column names) so the columnar backend can
    evaluate it without re-consulting the schema.
    """
    kind = type(predicate)
    try:
        if kind is Comparison:
            if predicate.op.name not in _OP_SYMBOLS:
                return None
            return (
                "cmp",
                schema.position_of(predicate.column),
                predicate.op.name,
                predicate.value,
            )
        if kind is Between:
            return (
                "between",
                schema.position_of(predicate.column),
                predicate.low,
                predicate.high,
            )
        if kind is InList:
            return (
                "in",
                schema.position_of(predicate.column),
                tuple(predicate.values),
            )
        if kind is IsNull:
            return (
                "isnull",
                schema.position_of(predicate.column),
                predicate.negated,
            )
        if kind is Disjunction:
            children = []
            for term in predicate.terms:
                child = vector_spec(term, schema)
                if child is None:
                    return None
                children.append(child)
            return ("or", tuple(children))
    except AttributeError:
        return None
    return None
