"""Server throughput/latency benchmark: concurrent clients, real engine.

Starts an in-process :class:`~repro.server.QueryServer` over a DMV
database and drives it with N asyncio clients firing the four-table
workload, then reports

* throughput (queries/second) and end-to-end latency percentiles
  (p50/p95/p99, measured per request at the client),
* the server-path overhead versus executing the same statements serially
  through :meth:`Database.execute` (protocol + scheduling + threading
  cost; the engine itself is GIL-bound, so this factor should sit near
  1.0, not near 1/concurrency),
* the shared plan-cache hit rate across the run.

Every response is verified: all requests must succeed and return the
serial engine's rows for that statement — a throughput number that
changes answers must fail loudly, not get recorded.

The report is stored under the ``"server"`` key of ``BENCH_speedup.json``
(other sections preserved, atomic write), so the serving layer's perf
trajectory rides the same stored-baseline regression report as the
executor benchmarks: a qps drop below ``REGRESSION_TOLERANCE`` of the
stored baseline prints loudly on stderr; ``--check`` additionally gates
correctness and the overhead factor.

Usage::

    PYTHONPATH=src python benchmarks/bench_server.py            # full run
    PYTHONPATH=src python benchmarks/bench_server.py --quick --check  # CI
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import sys
import time

from repro.bench.runner import write_json_atomic
from repro.core.config import AdaptiveConfig
from repro.dmv import four_table_workload, load_dmv
from repro.server import QueryServer, ServerConfig

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Stored-baseline qps may drift down by this factor before the
#: regression report fires (wall-clock noise allowance).
REGRESSION_TOLERANCE = 0.90

#: --check fails when the server path exceeds serial wall time by more
#: than this factor (protocol/scheduling overhead budget).
OVERHEAD_TOLERANCE = 2.0


def percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


async def drive(
    server: QueryServer,
    workload: list[tuple[str, list]],
    clients: int,
    requests_per_client: int,
) -> tuple[list[float], list[str]]:
    """Fire the workload from *clients* connections; verify every answer."""
    latencies: list[float] = []
    failures: list[str] = []

    async def one_client(index: int) -> None:
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port
        )
        try:
            for n in range(requests_per_client):
                sql, baseline = workload[(index + n) % len(workload)]
                started = time.perf_counter()
                writer.write(
                    (json.dumps({"op": "query", "id": n, "sql": sql}) + "\n")
                    .encode()
                )
                await writer.drain()
                line = await asyncio.wait_for(reader.readline(), timeout=60.0)
                latencies.append((time.perf_counter() - started) * 1e3)
                response = json.loads(line)
                if response.get("status") != "ok":
                    failures.append(
                        f"client {index} req {n}: {response.get('code')}"
                    )
                elif sorted(map(tuple, response["rows"])) != baseline:
                    failures.append(
                        f"client {index} req {n}: rows diverge on {sql[:50]}"
                    )
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    await asyncio.gather(*(one_client(i) for i in range(clients)))
    return latencies, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument(
        "--requests-per-client", type=int, default=40, metavar="N"
    )
    parser.add_argument("--max-concurrency", type=int, default=4)
    parser.add_argument(
        "--queries-per-template", type=int, default=3, metavar="N"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small scale and request count (CI smoke)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 on any failed/diverging response or overhead "
        f"> {OVERHEAD_TOLERANCE:.1f}x serial",
    )
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_speedup.json")
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.scale = min(args.scale, 0.01)
        args.requests_per_client = min(args.requests_per_client, 15)

    print(f"loading DMV at scale {args.scale} ...", file=sys.stderr)
    db, _ = load_dmv(scale=args.scale)
    statements = [
        q.sql
        for q in four_table_workload(
            queries_per_template=args.queries_per_template
        )
    ]

    # Serial baseline: rows for verification, wall time for the overhead
    # factor over the exact request mix the clients will fire.
    workload: list[tuple[str, list]] = []
    for sql in statements:
        result = db.execute(sql, AdaptiveConfig())
        workload.append((sql, sorted(result.rows)))
    total_requests = args.clients * args.requests_per_client
    serial_started = time.perf_counter()
    for n in range(total_requests):
        db.execute(workload[n % len(workload)][0], AdaptiveConfig())
    serial_wall = time.perf_counter() - serial_started

    config = ServerConfig(
        port=0,
        max_concurrency=args.max_concurrency,
        max_queue_depth=max(64, 4 * args.clients),
        max_queue_per_session=args.requests_per_client + 1,
    )

    async def run():
        server = QueryServer(db, config)
        await server.start()
        try:
            started = time.perf_counter()
            latencies, failures = await drive(
                server, workload, args.clients, args.requests_per_client
            )
            wall = time.perf_counter() - started
            stats = server.stats_payload()
            return latencies, failures, wall, stats
        finally:
            await server.shutdown(grace=2.0)

    latencies, failures, wall, stats = asyncio.run(run())
    db.close()

    cache = stats["plan_cache"]
    lookups = cache["hits"] + cache["misses"] + cache["single_flight_waits"]
    section = {
        "scale": args.scale,
        "clients": args.clients,
        "max_concurrency": args.max_concurrency,
        "requests": total_requests,
        "wall_seconds": wall,
        "qps": total_requests / wall,
        "latency_ms": {
            "p50": percentile(latencies, 0.50),
            "p95": percentile(latencies, 0.95),
            "p99": percentile(latencies, 0.99),
        },
        "serial_wall_seconds": serial_wall,
        "server_overhead_vs_serial": wall / max(serial_wall, 1e-9),
        "plan_cache_hit_rate": (
            (cache["hits"] + cache["single_flight_waits"]) / lookups
            if lookups
            else None
        ),
        "failures": len(failures),
    }

    print(f"requests:  {total_requests} from {args.clients} clients")
    print(f"wall:      {wall:.2f}s server vs {serial_wall:.2f}s serial "
          f"({section['server_overhead_vs_serial']:.2f}x)")
    print(f"qps:       {section['qps']:.1f}")
    print(f"latency:   p50 {section['latency_ms']['p50']:.1f} ms  "
          f"p95 {section['latency_ms']['p95']:.1f} ms  "
          f"p99 {section['latency_ms']['p99']:.1f} ms")
    if section["plan_cache_hit_rate"] is not None:
        print(f"cache:     {section['plan_cache_hit_rate']:.1%} hit rate")

    # Fold into the shared benchmark file, preserving other sections.
    path = pathlib.Path(args.output)
    payload: dict = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            payload = {}
    old = payload.get("server", {})
    regressions: list[str] = []
    old_qps = old.get("qps")
    # Only comparable runs gate each other: same shape, full (non-quick)
    # runs recorded at the same scale and client count.
    comparable = (
        old.get("scale") == section["scale"]
        and old.get("clients") == section["clients"]
        and old.get("requests") == section["requests"]
    )
    if comparable and old_qps and section["qps"] < old_qps * REGRESSION_TOLERANCE:
        regressions.append(
            f"REGRESSION: server qps {section['qps']:.1f} < stored "
            f"baseline {old_qps:.1f} * {REGRESSION_TOLERANCE}"
        )
    payload["server"] = section
    write_json_atomic(path, payload)
    print(f"wrote server section to {path}", file=sys.stderr)
    for line in regressions:
        print(line, file=sys.stderr)

    if failures:
        for failure in failures[:10]:
            print(f"FAILURE: {failure}", file=sys.stderr)
        return 1
    if args.check and section["server_overhead_vs_serial"] > OVERHEAD_TOLERANCE:
        print(
            f"CHECK FAILED: server overhead "
            f"{section['server_overhead_vs_serial']:.2f}x > "
            f"{OVERHEAD_TOLERANCE:.1f}x serial",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
