"""E9 — Sec 5.3 (closing paragraph): the "sophisticated statistics" ablation.

The paper re-ran the experiments after collecting distribution/frequent-
value statistics: the optimizer's plans improve, but adaptive reordering
still delivered "huge improvements ... with up to two-fold speedups",
because frequent-value statistics cannot capture cross-column correlation.

Shape to reproduce: with detailed statistics the adaptive win shrinks
relative to the basic-statistics setting, but remains positive with a
multi-x best case.
"""

from conftest import emit_report

from repro.bench import scatter_experiment


def test_sec53_frequent_value_stats(benchmark, dmv_db, dmv_detailed, workload):
    def run():
        basic = scatter_experiment(dmv_db, workload)
        detailed = scatter_experiment(dmv_detailed, workload)
        return basic, detailed

    basic, detailed = benchmark.pedantic(run, rounds=1, iterations=1)
    report = "\n\n".join(
        [
            basic.report("Sec 5.3 ablation — basic statistics (uniformity)"),
            detailed.report("Sec 5.3 ablation — frequent-value statistics"),
        ]
    )
    emit_report("sec53_stats_ablation", report)
    # Adaptive reordering still wins with detailed statistics...
    assert detailed.total_improvement > 0.0
    assert detailed.max_speedup > 1.3
    # ...but detailed statistics reduce how badly the static plans start out.
    assert detailed.max_speedup <= basic.max_speedup * 1.25
