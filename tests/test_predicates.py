"""Unit and property tests for repro.query.predicates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.query.predicates import (
    Between,
    Comparison,
    Disjunction,
    InList,
    Op,
    PositionalPredicate,
)
from repro.storage.cursor import ScanOrder
from repro.storage.index import SortedIndex
from repro.storage.schema import Column, TableSchema
from repro.storage.table import HeapTable
from repro.storage.types import ColumnType

SCHEMA = TableSchema(
    "t",
    [
        Column("a", ColumnType.INT),
        Column("b", ColumnType.STRING),
    ],
)


class TestComparison:
    @pytest.mark.parametrize(
        "op,value,row_value,expected",
        [
            (Op.EQ, 5, 5, True),
            (Op.EQ, 5, 6, False),
            (Op.NE, 5, 6, True),
            (Op.NE, 5, 5, False),
            (Op.LT, 5, 4, True),
            (Op.LT, 5, 5, False),
            (Op.LE, 5, 5, True),
            (Op.GT, 5, 6, True),
            (Op.GE, 5, 5, True),
            (Op.GE, 5, 4, False),
        ],
    )
    def test_operators(self, op, value, row_value, expected):
        test = Comparison("a", op, value).bind(SCHEMA)
        assert test((row_value, "x")) is expected

    @pytest.mark.parametrize("op", list(Op))
    def test_null_never_matches(self, op):
        test = Comparison("a", op, 5).bind(SCHEMA)
        assert test((None, "x")) is False

    def test_key_ranges_eq(self):
        (r,) = Comparison("a", Op.EQ, 5).key_ranges("a")
        assert r.is_equality() and r.low == 5

    def test_key_ranges_lt(self):
        (r,) = Comparison("a", Op.LT, 5).key_ranges("a")
        assert r.low is None and r.high == 5 and not r.high_inclusive

    def test_key_ranges_ge(self):
        (r,) = Comparison("a", Op.GE, 5).key_ranges("a")
        assert r.low == 5 and r.low_inclusive and r.high is None

    def test_key_ranges_ne_not_sargable(self):
        assert Comparison("a", Op.NE, 5).key_ranges("a") is None

    def test_key_ranges_other_column(self):
        assert Comparison("a", Op.EQ, 5).key_ranges("b") is None

    def test_columns(self):
        assert Comparison("a", Op.EQ, 5).columns() == ("a",)


class TestBetween:
    def test_inclusive(self):
        test = Between("a", 2, 4).bind(SCHEMA)
        assert test((2, "x")) and test((4, "x")) and not test((5, "x"))

    def test_null(self):
        assert Between("a", 2, 4).bind(SCHEMA)((None, "x")) is False

    def test_key_ranges(self):
        (r,) = Between("a", 2, 4).key_ranges("a")
        assert (r.low, r.high) == (2, 4)


class TestInList:
    def test_membership(self):
        test = InList("b", ["x", "y"]).bind(SCHEMA)
        assert test((1, "x")) and not test((1, "z"))

    def test_null_not_in_list(self):
        assert InList("b", ["x"]).bind(SCHEMA)((1, None)) is False

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            InList("b", [])

    def test_key_ranges_sorted_unique(self):
        ranges = InList("a", [3, 1, 3]).key_ranges("a")
        assert [r.low for r in ranges] == [1, 3]


class TestDisjunction:
    def test_or_semantics(self):
        pred = Disjunction(
            [Comparison("b", Op.EQ, "x"), Comparison("b", Op.EQ, "y")]
        )
        test = pred.bind(SCHEMA)
        assert test((1, "x")) and test((1, "y")) and not test((1, "z"))

    def test_flattens_nested(self):
        inner = Disjunction([Comparison("a", Op.EQ, 1), Comparison("a", Op.EQ, 2)])
        outer = Disjunction([inner, Comparison("a", Op.EQ, 3)])
        assert len(outer.terms) == 3

    def test_needs_two_terms(self):
        with pytest.raises(QueryError):
            Disjunction([Comparison("a", Op.EQ, 1)])

    def test_key_ranges_union(self):
        pred = Disjunction(
            [Comparison("a", Op.EQ, 1), Comparison("a", Op.EQ, 5)]
        )
        assert [r.low for r in pred.key_ranges("a")] == [1, 5]

    def test_key_ranges_none_if_any_term_unsargable(self):
        pred = Disjunction(
            [Comparison("a", Op.EQ, 1), Comparison("a", Op.NE, 5)]
        )
        assert pred.key_ranges("a") is None

    def test_columns_deduplicated(self):
        pred = Disjunction(
            [Comparison("a", Op.EQ, 1), Comparison("a", Op.EQ, 2)]
        )
        assert pred.columns() == ("a",)


class TestPositionalPredicate:
    def test_rid_order(self):
        table = HeapTable(SCHEMA)
        table.insert_many([(i, "x") for i in range(5)])
        pred = PositionalPredicate(order=ScanOrder(table), after=(2,))
        assert not pred.test(2, (2, "x"))
        assert pred.test(3, (3, "x"))

    def test_index_order_composite(self):
        table = HeapTable(SCHEMA)
        table.insert_many([(5, "x"), (5, "y"), (7, "z")])
        index = SortedIndex("ix", table, "a")
        pred = PositionalPredicate(order=ScanOrder(table, index), after=(5, 0))
        assert not pred.test(0, (5, "x"))     # at frozen position
        assert pred.test(1, (5, "y"))         # same key, later rid
        assert pred.test(2, (7, "z"))         # later key


@settings(max_examples=80, deadline=None)
@given(value=st.integers(min_value=-5, max_value=15))
def test_sargable_ranges_agree_with_evaluation(value):
    """Property: a value satisfies the predicate iff it falls in a range."""
    predicates = [
        Comparison("a", Op.EQ, 5),
        Comparison("a", Op.LT, 5),
        Comparison("a", Op.LE, 5),
        Comparison("a", Op.GT, 5),
        Comparison("a", Op.GE, 5),
        Between("a", 2, 8),
        InList("a", [1, 5, 9]),
        Disjunction([Comparison("a", Op.EQ, 0), Comparison("a", Op.GE, 10)]),
    ]
    for predicate in predicates:
        evaluated = predicate.bind(SCHEMA)((value, "x"))
        in_ranges = False
        for key_range in predicate.key_ranges("a"):
            low_ok = (
                key_range.low is None
                or value > key_range.low
                or (key_range.low_inclusive and value == key_range.low)
            )
            high_ok = (
                key_range.high is None
                or value < key_range.high
                or (key_range.high_inclusive and value == key_range.high)
            )
            if low_ok and high_ok:
                in_ranges = True
        assert evaluated == in_ranges, f"{predicate} at {value}"
