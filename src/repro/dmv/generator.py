"""Synthetic DMV data with the skew and correlations the paper relies on.

The paper's evaluation (Sec 5) depends on four data properties, each of
which is deliberately engineered here and documented where it is produced:

1. **Skewed value distributions** — country and make frequencies are
   Zipf-like, so the optimizer's uniformity assumption (1/ndv for equality
   predicates) is wrong by large factors in both directions.
2. **Cross-column correlation within a table** — ``model`` determines
   ``make`` (Example 2: Mazda/323), and ``city`` determines ``country``
   (Example 3: Augusta/US), so the independence assumption underestimates
   conjunctions by an order of magnitude.
3. **Cross-table correlation through joins** — an owner's (latent) wealth
   drives both the class of car they buy and their Demographics salary, so
   ``salary`` predicates are far more/less selective for luxury/standard
   cars than any single-table statistic can reveal.
4. **The Example 1 flip** — Chevrolets are mostly US-owned by
   modest-income owners while Mercedes are disproportionately German-owned
   by high earners. For ``make IN ('Chevrolet','Mercedes')`` scanned in key
   order (Chevrolet first), the best inner order of Owner vs Demographics
   *changes mid-query*, which only run-time reordering can exploit.

Everything is deterministic given (scale, seed). ``scale=1.0`` matches the
paper's 100K owners with Car/Accidents cardinalities near Table 1's ratios
(111,676 and 279,125).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.catalog.statistics import StatisticsLevel
from repro.db import Database
from repro.dmv.schema import create_dmv_schema

PAPER_OWNER_COUNT = 100_000
SECOND_CAR_PROBABILITY = 0.11676     # Table 1: 111,676 cars / 100,000 owners
MEAN_ACCIDENTS_PER_CAR = 2.4993      # Table 1: 279,125 / 111,676

# (country1, country3, weight, cities). Weights are Zipf-ish: 'United
# States' dominates, tail countries are rare — the paper's Example 3 notes
# almost one third of Owner matches country3 = 'US'.
COUNTRIES: list[tuple[str, str, int, list[str]]] = [
    ("United States", "US", 30, ["Augusta", "Springfield", "Portland", "Columbus", "Austin", "Phoenix"]),
    ("Germany", "DE", 14, ["Berlin", "Munich", "Hamburg", "Cologne", "Frankfurt"]),
    ("France", "FR", 9, ["Paris", "Lyon", "Marseille", "Toulouse"]),
    ("United Kingdom", "GB", 8, ["London", "Manchester", "Leeds", "Bristol"]),
    ("Japan", "JP", 7, ["Tokyo", "Osaka", "Nagoya", "Sapporo"]),
    ("Italy", "IT", 6, ["Rome", "Milan", "Naples", "Turin"]),
    ("Canada", "CA", 5, ["Toronto", "Montreal", "Calgary"]),
    ("Spain", "ES", 4, ["Madrid", "Barcelona", "Valencia"]),
    ("Brazil", "BR", 4, ["Sao Paulo", "Rio de Janeiro", "Salvador"]),
    ("Australia", "AU", 3, ["Sydney", "Melbourne", "Perth"]),
    ("Mexico", "MX", 3, ["Mexico City", "Guadalajara"]),
    ("Netherlands", "NL", 2, ["Amsterdam", "Rotterdam"]),
    ("Egypt", "EG", 2, ["Cairo", "Alexandria", "Giza"]),
    ("Sweden", "SE", 1, ["Stockholm", "Gothenburg"]),
    ("Poland", "PL", 1, ["Warsaw", "Krakow"]),
]

# (make, luxury?, weight, models). Models are unique to their make, so a
# model equality predicate implies the make (the Example 2 correlation).
MAKES: list[tuple[str, bool, int, list[str]]] = [
    ("Chevrolet", False, 13, ["Caprice", "Malibu", "Impala", "Cavalier"]),
    ("Ford", False, 12, ["F150", "Focus", "Taurus", "Escort"]),
    ("Toyota", False, 11, ["Corolla", "Camry", "RAV4", "Yaris"]),
    ("Honda", False, 9, ["Civic", "Accord", "CRV"]),
    ("Mazda", False, 7, ["323", "626", "Miata", "Protege"]),
    ("Nissan", False, 6, ["Sentra", "Altima", "Maxima"]),
    ("Volkswagen", False, 6, ["Golf", "Jetta", "Passat", "Beetle"]),
    ("Hyundai", False, 5, ["Elantra", "Sonata", "Accent"]),
    ("Subaru", False, 4, ["Outback", "Impreza", "Forester"]),
    ("Kia", False, 3, ["Sephia", "Sportage"]),
    ("Fiat", False, 3, ["Punto", "Panda", "Uno"]),
    ("Peugeot", False, 3, ["206", "306", "406"]),
    ("Renault", False, 2, ["Clio", "Megane", "Laguna"]),
    ("Volvo", False, 2, ["S40", "V70", "850"]),
    ("Mercedes", True, 3, ["C200", "E320", "S500", "SLK"]),
    ("BMW", True, 3, ["318i", "528i", "740i", "Z3"]),
    ("Audi", True, 2, ["A4", "A6", "A8"]),
    ("Lexus", True, 2, ["ES300", "RX300", "LS400"]),
    ("Porsche", True, 1, ["911", "Boxster"]),
    ("Jaguar", True, 1, ["XJ8", "XK8"]),
]

US_STATES = [
    "Maine", "Georgia", "Texas", "Ohio", "Oregon", "Arizona", "Illinois",
    "Florida", "New York", "California", "Nevada", "Colorado",
]

LOCATION_COUNT = 200
TIME_YEARS = (2002, 2006)  # inclusive


@dataclass(frozen=True)
class DmvSummary:
    """Row counts of a generated DMV database (the Table 1 analogue)."""

    owners: int
    cars: int
    demographics: int
    accidents: int
    locations: int = 0
    times: int = 0

    def as_rows(self) -> list[tuple[str, int]]:
        rows = [
            ("Owner", self.owners),
            ("Car", self.cars),
            ("Demographics", self.demographics),
            ("Accidents", self.accidents),
        ]
        if self.locations:
            rows.append(("Location", self.locations))
        if self.times:
            rows.append(("Time", self.times))
        return rows


def _weighted_choice(rng: random.Random, items: list, weights: list[int]):
    return rng.choices(items, weights=weights, k=1)[0]


class DmvGenerator:
    """Deterministic generator for the synthetic DMV data set."""

    def __init__(self, scale: float = 1.0, seed: int = 20070426) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale
        self.seed = seed
        self.owner_count = max(int(PAPER_OWNER_COUNT * scale), 200)

    # -- owner-level latent state ----------------------------------------
    def _wealth(self, rng: random.Random) -> int:
        """Latent wealth level 0..9, skewed toward the low end."""
        return int(rng.random() ** 2 * 10)

    def _pick_country(self, rng: random.Random) -> tuple[str, str, list[str]]:
        country1, country3, _, cities = _weighted_choice(
            rng, COUNTRIES, [c[2] for c in COUNTRIES]
        )
        return country1, country3, cities

    def _pick_make(
        self, rng: random.Random, wealth: int, country3: str
    ) -> tuple[str, bool, list[str]]:
        """Choose a make given owner wealth and country.

        Wealth drives the luxury probability (property 3); country biases
        the brand within each class (property 4: US -> Chevrolet/Ford,
        DE -> Mercedes/BMW/Volkswagen).
        """
        luxury_probability = 0.02 + 0.065 * wealth
        luxury = rng.random() < luxury_probability
        candidates = [m for m in MAKES if m[1] == luxury]
        weights = []
        for make, _, weight, _ in candidates:
            if country3 == "US" and make in ("Chevrolet", "Ford"):
                weight *= 3
            elif country3 == "DE" and make in ("Mercedes", "BMW", "Volkswagen"):
                weight *= 4
            elif country3 == "JP" and make in ("Toyota", "Honda", "Mazda", "Nissan"):
                weight *= 3
            elif country3 in ("FR", "IT", "ES") and make in ("Fiat", "Peugeot", "Renault"):
                weight *= 3
            weights.append(weight)
        make, is_luxury, _, models = _weighted_choice(rng, candidates, weights)
        return make, is_luxury, models

    # -- generation --------------------------------------------------------
    def populate(self, db: Database, extended: bool = False) -> DmvSummary:
        """Create schema, generate all rows, build indexes, collect stats."""
        create_dmv_schema(db, extended=extended)
        rng = random.Random(self.seed)

        owners: list[tuple] = []
        demographics: list[tuple] = []
        cars: list[tuple] = []
        accidents: list[tuple] = []

        location_rows, time_rows = self._build_dimension_rows(rng)

        car_id = 0
        accident_id = 0
        for owner_id in range(self.owner_count):
            wealth = self._wealth(rng)
            country1, country3, cities = self._pick_country(rng)
            city = rng.choice(cities)
            name = f"Owner{owner_id}"
            owners.append((owner_id, name, country1, country3, city))

            # Salary is driven by the same latent wealth as car class
            # (property 3): luxury-car owners rarely fall under 50,000.
            salary = 14_000 + wealth * 9_000 + rng.randrange(9_000)
            age = min(16 + int(rng.random() ** 1.3 * 64), 90)
            children = max(int(rng.gauss(1.4, 1.2)), 0)
            demographics.append((owner_id, salary, age, children))

            car_count = 1 + (1 if rng.random() < SECOND_CAR_PROBABILITY else 0)
            for _ in range(car_count):
                make, is_luxury, models = self._pick_make(rng, wealth, country3)
                model = _weighted_choice(
                    rng, models, list(range(len(models), 0, -1))
                )
                year = 1985 + int(rng.random() ** 0.7 * 22)
                cars.append((car_id, owner_id, make, model, year))

                for accident_row in self._accidents_for_car(
                    rng, accident_id, car_id, name, year, is_luxury,
                    len(location_rows), len(time_rows),
                ):
                    accidents.append(accident_row)
                    accident_id += 1
                car_id += 1

        db.insert("Owner", owners)
        db.insert("Car", cars)
        db.insert("Demographics", demographics)
        db.insert("Accidents", accidents)
        if extended:
            db.insert("Location", location_rows)
            db.insert("Time", time_rows)
        db.analyze()
        return DmvSummary(
            owners=len(owners),
            cars=len(cars),
            demographics=len(demographics),
            accidents=len(accidents),
            locations=len(location_rows) if extended else 0,
            times=len(time_rows) if extended else 0,
        )

    def _accidents_for_car(
        self,
        rng: random.Random,
        next_id: int,
        car_id: int,
        owner_name: str,
        car_year: int,
        is_luxury: bool,
        location_count: int,
        time_count: int,
    ):
        """Accident rows for one car; counts are skewed (property 1).

        Older cars and non-luxury cars have more accidents; the per-car
        count distribution is geometric-like, so a few cars account for a
        large share of the Accidents table.
        """
        # 1.23 calibrates for the floor() of the exponential draw, so the
        # realized mean lands at Table 1's ~2.5 accidents per car.
        mean = MEAN_ACCIDENTS_PER_CAR * 1.23
        mean *= 0.6 if is_luxury else 1.08
        mean *= 0.7 + (2006 - car_year) / 30.0
        count = min(int(rng.expovariate(1.0 / mean)), 15)
        rows = []
        for offset in range(count):
            driver = owner_name if rng.random() < 0.85 else f"Driver{rng.randrange(10_000)}"
            year = max(car_year, 1995) + rng.randrange(max(2006 - max(car_year, 1995), 1))
            damage = int(500 * (10 ** (rng.random() * 2)))  # 500..50000, skewed
            # Urban locations (low ids) attract most accidents.
            locationid = int(location_count * rng.random() ** 2.5)
            # Winter months are over-represented via the time id skew.
            timeid = rng.randrange(time_count)
            rows.append(
                (next_id + offset, car_id, driver, year, damage, locationid, timeid)
            )
        return rows

    def _build_dimension_rows(self, rng: random.Random):
        """Location and Time dimension rows (fixed size, scale-independent)."""
        location_rows = []
        for location_id in range(LOCATION_COUNT):
            state = US_STATES[location_id % len(US_STATES)]
            city = f"{state} City {location_id // len(US_STATES)}"
            urban = 1 if location_id < LOCATION_COUNT // 4 else 0
            location_rows.append((location_id, state, city, urban))
        time_rows = []
        time_id = 0
        for year in range(TIME_YEARS[0], TIME_YEARS[1] + 1):
            for month in range(1, 13):
                for day in range(1, 29):
                    weekday = (time_id + 3) % 7
                    time_rows.append((time_id, year, month, day, weekday))
                    time_id += 1
        return location_rows, time_rows


def load_dmv(
    scale: float = 1.0,
    seed: int = 20070426,
    extended: bool = False,
    stats: StatisticsLevel = StatisticsLevel.CARDINALITY,
    backend: str = "row",
) -> tuple[Database, DmvSummary]:
    """Build a fresh DMV database; the one-call entry point for experiments.

    *stats* selects the optimizer-statistics level. The default mirrors the
    paper's main setting (Sec 5: table sizes only, uniformity assumed);
    ``StatisticsLevel.DETAILED`` reproduces the Sec 5.3 "sophisticated
    statistics" ablation. *backend* selects the storage layout
    (``row`` | ``columnar``); identical data and RIDs either way.
    """
    db = Database(backend=backend)
    summary = DmvGenerator(scale=scale, seed=seed).populate(db, extended=extended)
    db.analyze(level=stats)
    return db, summary
