"""Observability for the adaptive executor: tracing, metrics, sampling.

The subsystem is **nullable by default**: the engine carries one optional
:class:`QueryObservability` reference and every instrumentation site costs
a single ``is None`` check when observability is off. Nothing in this
package ever charges the deterministic work meter — armed observability
changes wall-clock time only, never work units or query results.

Pieces (see each module's docstring for the full contract):

* :mod:`repro.obs.trace` — structured spans (parse/optimize/execute,
  leg opens, probe batches, reorder checks, adaptations) with JSONL and
  tree rendering;
* :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket histograms
  under Prometheus-style names;
* :mod:`repro.obs.timeseries` — periodic snapshots of the monitors'
  Eq (5-11) estimates for convergence analysis;
* :mod:`repro.obs.observer` — the engine-facing bundle of all three;
* :mod:`repro.obs.explain` — the EXPLAIN ANALYZE report renderer.
"""

from repro.obs.explain import render_explain_analyze
from repro.obs.metrics import (
    MATCH_BUCKETS,
    RATIO_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.observer import QueryObservability
from repro.obs.timeseries import EstimateSample, EstimateSampler
from repro.obs.trace import JSONL_KEYS, SPAN_KINDS, Span, Tracer

__all__ = [
    "Counter",
    "EstimateSample",
    "EstimateSampler",
    "Gauge",
    "Histogram",
    "JSONL_KEYS",
    "MATCH_BUCKETS",
    "MetricsRegistry",
    "QueryObservability",
    "RATIO_BUCKETS",
    "SPAN_KINDS",
    "Span",
    "Tracer",
    "render_explain_analyze",
]
